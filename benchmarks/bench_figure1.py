"""F1 — Figure 1: query-tree construction for the a/b running example.

Regenerates the paper's figure artifacts (adornments p1-p3, rules
s1-s6, the three-root forest) and times each phase of the algorithm.
"""

import pytest

from repro.core.adornments import compute_adornments
from repro.core.querytree import build_query_tree
from repro.core.rewrite import optimize
from repro.workloads.programs import ab_transitive_closure


@pytest.fixture(scope="module")
def workload():
    return ab_transitive_closure()


def test_bottom_up_phase(benchmark, workload):
    program, constraints = workload
    result = benchmark(compute_adornments, program, constraints)
    assert len(result.adornments["p"]) == 3
    assert len(result.adorned_rules) == 6
    benchmark.extra_info["adornments"] = len(result.adornments["p"])
    benchmark.extra_info["adorned_rules"] = len(result.adorned_rules)


def test_top_down_phase(benchmark, workload):
    program, constraints = workload
    result = compute_adornments(program, constraints)
    tree = benchmark(build_query_tree, result)
    assert len(tree.roots) == 3
    benchmark.extra_info["expanded_nodes"] = len(tree.expanded)


def test_full_pipeline(benchmark, workload):
    program, constraints = workload
    report = benchmark(optimize, program, constraints)
    assert report.satisfiable and report.complete
    assert report.program is not None
    benchmark.extra_info["rewritten_rules"] = len(report.program.rules)


def experiment():
    from common import Experiment, md_table

    def build():
        program, constraints = ab_transitive_closure()
        result = compute_adornments(program, constraints)
        tree = build_query_tree(result)
        report = optimize(program, constraints)
        assert report.satisfiable and report.complete and report.program is not None
        rows = [
            ["adornments of p (paper: p1, p2, p3)", len(result.adornments["p"])],
            ["adorned rules (paper: s1 .. s6)", len(result.adorned_rules)],
            ["query-tree roots (Figure 1 forest)", len(tree.roots)],
            ["expanded equivalence classes", len(tree.expanded)],
            ["rewritten rules", len(report.program.rules)],
        ]
        return md_table(["artifact", "count"], rows)

    return Experiment(
        key="F01",
        title="Figure 1: the final query tree (running example, Section 4)",
        narrative=(
            "*Paper:* the a/b closure under \"an a-edge is never followed by a "
            "b-edge\" specializes `p` into three adorned predicates and a "
            "three-root forest.  *Measured:* the construction reproduces the "
            "figure's structure exactly, and the full rewrite is complete "
            "(every constraint incorporated into the tree)."
        ),
        build=build,
    )
