"""F1 — Figure 1: query-tree construction for the a/b running example.

Regenerates the paper's figure artifacts (adornments p1-p3, rules
s1-s6, the three-root forest) and times each phase of the algorithm.
"""

import pytest

from repro.core.adornments import compute_adornments
from repro.core.querytree import build_query_tree
from repro.core.rewrite import optimize
from repro.workloads.programs import ab_transitive_closure


@pytest.fixture(scope="module")
def workload():
    return ab_transitive_closure()


def test_bottom_up_phase(benchmark, workload):
    program, constraints = workload
    result = benchmark(compute_adornments, program, constraints)
    assert len(result.adornments["p"]) == 3
    assert len(result.adorned_rules) == 6
    benchmark.extra_info["adornments"] = len(result.adornments["p"])
    benchmark.extra_info["adorned_rules"] = len(result.adorned_rules)


def test_top_down_phase(benchmark, workload):
    program, constraints = workload
    result = compute_adornments(program, constraints)
    tree = benchmark(build_query_tree, result)
    assert len(tree.roots) == 3
    benchmark.extra_info["expanded_nodes"] = len(tree.expanded)


def test_full_pipeline(benchmark, workload):
    program, constraints = workload
    report = benchmark(optimize, program, constraints)
    assert report.satisfiable and report.complete
    assert report.program is not None
    benchmark.extra_info["rewritten_rules"] = len(report.program.rules)
