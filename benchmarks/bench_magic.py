"""E11 — magic sets and the semantic+magic pipeline on bound queries.

The semantic rewrite prunes constraint-violating derivations; magic
sets prune derivations the (bound) query atom never demands.  This
bench compares ``EvaluationStats`` across the pipeline orderings on
bound-argument query workloads: the headline number is
``facts_derived``, which magic reduces wherever demand is selective
(goodPath chains, the a/b closure, same-generation), while
``semantic-first`` composes both prunings.
"""

import pytest
from common import Experiment, magic_workloads, work_ratio_table

from repro.datalog.evaluation import evaluate
from repro.magic import check_equivalence, run_pipeline

ORDERS = ("magic-only", "semantic-first", "magic-first", "semantic-only")

WORKLOADS = {name: (prog, ics, db, atom) for name, prog, ics, db, atom in magic_workloads()}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_original_baseline(benchmark, name):
    program, _, database, _ = WORKLOADS[name]
    result = benchmark(evaluate, program, database)
    benchmark.extra_info.update(result.stats.as_dict())


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("order", ORDERS)
def test_pipeline_order(benchmark, name, order):
    program, ics, database, atom = WORKLOADS[name]
    report = run_pipeline(program, ics, atom, order=order)
    assert report.program is not None
    baseline = evaluate(program, database)
    result = benchmark(evaluate, report.program, database)
    benchmark.extra_info.update(result.stats.as_dict())
    benchmark.extra_info["work_ratio_vs_original"] = baseline.stats.compare(
        result.stats
    )


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_answers_identical_all_orders(name):
    """Every ordering answers the bound query atom exactly like P."""
    program, ics, database, atom = WORKLOADS[name]
    for order in ORDERS:
        report = run_pipeline(program, ics, atom, order=order)
        check = check_equivalence(program, report, atom, database)
        assert check.equivalent, (name, order, check.missing, check.extra)


def test_magic_reduces_facts_derived():
    """The acceptance claim: bound queries derive strictly fewer facts."""
    for name in ("ab", "goodPath", "sg"):
        program, ics, database, atom = WORKLOADS[name]
        baseline = evaluate(program, database)
        for order in ("magic-only", "semantic-first"):
            report = run_pipeline(program, ics, atom, order=order)
            check = check_equivalence(program, report, atom, database)
            assert check.equivalent
            assert (
                check.transformed_stats.facts_derived
                < baseline.stats.facts_derived
            ), (name, order)


def experiment() -> Experiment:
    def build() -> str:
        parts = []
        for name in sorted(WORKLOADS):
            program, ics, database, atom = WORKLOADS[name]
            variants = [("original", evaluate(program, database).stats.as_dict())]
            for order in ORDERS:
                report = run_pipeline(program, ics, atom, order=order)
                check = check_equivalence(program, report, atom, database)
                assert check.equivalent, (name, order)
                variants.append((order, check.transformed_stats.as_dict()))
            parts.append(f"**{name}** — query atom `{atom}`:")
            parts.append(work_ratio_table(variants, baseline="original"))
        return "\n\n".join(parts)

    return Experiment(
        key="E11",
        title="magic sets and the semantic+magic pipeline on bound queries",
        narrative=(
            "*Paper:* the semantic rewrite prunes constraint-violating "
            "derivations; magic sets prune derivations a bound query atom "
            "never demands, and the two compose.  *Measured:* every pipeline "
            "ordering answers each bound query exactly like the original "
            "program, while `facts_derived` drops wherever demand is "
            "selective; `semantic-first` composes both prunings."
        ),
        build=build,
    )
