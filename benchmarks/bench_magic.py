"""E11 — magic sets and the semantic+magic pipeline on bound queries.

The semantic rewrite prunes constraint-violating derivations; magic
sets prune derivations the (bound) query atom never demands.  This
bench compares ``EvaluationStats`` across the pipeline orderings on
bound-argument query workloads: the headline number is
``facts_derived``, which magic reduces wherever demand is selective
(goodPath chains, the a/b closure, same-generation), while
``semantic-first`` composes both prunings.
"""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.evaluation import evaluate
from repro.datalog.terms import Constant, Variable
from repro.magic import check_equivalence, run_pipeline
from repro.workloads.generators import (
    ab_database,
    good_path_database,
    same_generation_database,
)
from repro.workloads.programs import (
    ab_transitive_closure,
    good_path_order_constraints,
    same_generation,
)

ORDERS = ("magic-only", "semantic-first", "magic-first", "semantic-only")


def _bound_atom(predicate, constant, arity=2):
    args = (Constant(constant),) + tuple(Variable(f"V{i}") for i in range(arity - 1))
    return Atom(predicate, args)


def _workloads():
    program, ics = ab_transitive_closure()
    db = ab_database(num_b=40, num_a=40, branching=2, seed=0)
    yield "ab", program, ics, db, _bound_atom("p", 0)

    program, ics = good_path_order_constraints()
    db = good_path_database(num_chains=4, chain_length=20, seed=0)
    start = min(row[0] for row in db.relation("startPoint", 1))
    yield "goodPath", program, ics, db, _bound_atom("goodPath", start)

    program, ics = same_generation()
    db = same_generation_database(depth=5, fanout=2, seed=0)
    yield "sg", program, ics, db, _bound_atom("query", 2)


WORKLOADS = {name: (prog, ics, db, atom) for name, prog, ics, db, atom in _workloads()}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_original_baseline(benchmark, name):
    program, _, database, _ = WORKLOADS[name]
    result = benchmark(evaluate, program, database)
    benchmark.extra_info.update(result.stats.as_dict())


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("order", ORDERS)
def test_pipeline_order(benchmark, name, order):
    program, ics, database, atom = WORKLOADS[name]
    report = run_pipeline(program, ics, atom, order=order)
    assert report.program is not None
    baseline = evaluate(program, database)
    result = benchmark(evaluate, report.program, database)
    benchmark.extra_info.update(result.stats.as_dict())
    benchmark.extra_info["work_ratio_vs_original"] = baseline.stats.compare(
        result.stats
    )


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_answers_identical_all_orders(name):
    """Every ordering answers the bound query atom exactly like P."""
    program, ics, database, atom = WORKLOADS[name]
    for order in ORDERS:
        report = run_pipeline(program, ics, atom, order=order)
        check = check_equivalence(program, report, atom, database)
        assert check.equivalent, (name, order, check.missing, check.extra)


def test_magic_reduces_facts_derived():
    """The acceptance claim: bound queries derive strictly fewer facts."""
    for name in ("ab", "goodPath", "sg"):
        program, ics, database, atom = WORKLOADS[name]
        baseline = evaluate(program, database)
        for order in ("magic-only", "semantic-first"):
            report = run_pipeline(program, ics, atom, order=order)
            check = check_equivalence(program, report, atom, database)
            assert check.equivalent
            assert (
                check.transformed_stats.facts_derived
                < baseline.stats.facts_derived
            ), (name, order)
