"""E6 — Proposition 5.1: program-in-UCQ containment via satisfiability.

Times the containment decision for the transitive-closure family and
the reduction construction itself.
"""

import pytest

from repro.core.containment import (
    containment_as_satisfiability,
    program_contained_in_ucq,
)
from repro.cq.conjunctive import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.parser import parse_program, parse_rule


def cq(source):
    return ConjunctiveQuery.from_rule(parse_rule(source))


TC = parse_program(
    """
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, Z), t(Z, Y).
    """,
    query="t",
)

CONTAINED = UnionOfConjunctiveQueries((cq("t(X, Y) :- e(X, Z)."),))
NOT_CONTAINED = UnionOfConjunctiveQueries((cq("t(X, Y) :- e(X, Y)."),))


def test_containment_positive(benchmark):
    assert benchmark(program_contained_in_ucq, TC, CONTAINED)


def test_containment_negative(benchmark):
    assert not benchmark(program_contained_in_ucq, TC, NOT_CONTAINED)


def test_reduction_construction(benchmark):
    marked, ics = benchmark(containment_as_satisfiability, TC, CONTAINED)
    assert marked.query == "__ans__"
    assert len(ics) == 1


@pytest.mark.parametrize("members", [1, 2, 3])
def test_containment_union_size(benchmark, members):
    """Containment cost as the union grows."""
    queries = [
        cq("t(X, Y) :- e(X, Z)."),
        cq("t(X, Y) :- e(Z, Y)."),
        cq("t(X, Y) :- e(X, Z), e(Z, W)."),
    ][:members]
    union = UnionOfConjunctiveQueries(tuple(queries))
    result = benchmark(program_contained_in_ucq, TC, union)
    assert result  # every prefix includes the covering first member


def experiment():
    from common import Experiment, md_table

    def build():
        marked, ics = containment_as_satisfiability(TC, CONTAINED)
        rows = [
            ["t ⊑ {t(X,Y) :- e(X,Z)}", str(program_contained_in_ucq(TC, CONTAINED))],
            ["t ⊑ {t(X,Y) :- e(X,Y)}", str(program_contained_in_ucq(TC, NOT_CONTAINED))],
            ["reduction: marked-program query", marked.query],
            ["reduction: generated ic's", len(ics)],
        ]
        return md_table(["decision / artifact", "value"], rows)

    return Experiment(
        key="E06",
        title="Proposition 5.1: satisfiability ↔ containment",
        narrative=(
            "*Paper:* a program is contained in a union of CQs iff a marked "
            "variant is unsatisfiable under ic's built from the union.  "
            "*Measured:* the reduction decides the transitive-closure family "
            "correctly in both directions, with one ic per union member."
        ),
        build=build,
    )
