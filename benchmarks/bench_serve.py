"""E12 — serving: per-request magic specialization and the artifact cache.

The daemon compiles one pipeline artifact per *adornment shape* — the
bound/free pattern of the goal — never per constant: the semantic
rewrite, adornment and magic transform run once, and each request only
swaps the magic seed fact (Levy & Sagiv's binding passing is constant-
independent by construction).  This bench drives the in-process
:class:`~repro.serve.app.ServeApp` through a fixed request sequence
and records, per request, whether the artifact cache hit and the
evaluation work counters; the acceptance claims are (a) goals that
differ only in their constants share one artifact, and (b) served
answers are byte-identical to the single-process pipeline's.
"""

import asyncio

from common import Experiment, md_table

from repro.bench import _serve_workloads
from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_atom, parse_facts, parse_program
from repro.magic import run_pipeline
from repro.magic.transform import match_query_atom
from repro.serve.app import ServeApp
from repro.serve.wire import rows_payload


def _drive(workloads: dict, passes: int = 2) -> list[dict]:
    """Register every workload, then run ``passes`` goal sweeps."""
    app = ServeApp()

    async def run() -> list[dict]:
        responses: list[dict] = []
        for name, spec in workloads.items():
            status, _ = await app.handle(
                "PUT",
                f"/programs/{name}",
                {
                    "program": spec["program"],
                    "facts": spec["facts"],
                    "query": spec["query"],
                },
            )
            assert status == 200, name
        for sweep in range(1, passes + 1):
            for name, spec in workloads.items():
                for goal in spec["goals"]:
                    status, payload = await app.handle(
                        "POST", f"/programs/{name}/query", {"goal": goal}
                    )
                    assert status == 200, (name, goal)
                    responses.append(
                        {"sweep": sweep, "tenant": name, "goal": goal, **payload}
                    )
        return responses

    return asyncio.run(run())


def _expected_answers(spec: dict, goal_text: str) -> list[list]:
    """The single-process pipeline's answers for one goal."""
    program = parse_program(spec["program"], query=spec["query"])
    database = Database(parse_facts(spec["facts"]))
    goal = parse_atom(goal_text)
    report = run_pipeline(program, (), goal, order="semantic-first")
    assert report.program is not None
    result = evaluate(report.program, database, engine="slots", plan_order="cost")
    return rows_payload(
        frozenset(row for row in result.query_rows() if match_query_atom(row, goal))
    )


def test_cache_hits_are_constant_independent():
    """Goals differing only in constants share one compiled artifact."""
    workloads = _serve_workloads(True)
    responses = _drive(workloads, passes=2)
    first_sweep = [r for r in responses if r["sweep"] == 1]
    # Per tenant: one bound-free shape (three goals) and one bound-bound
    # shape — only the first goal of each shape compiles.
    assert sum(1 for r in first_sweep if not r["cache_hit"]) == 2 * len(workloads)
    assert all(r["cache_hit"] for r in responses if r["sweep"] == 2)


def test_served_answers_match_pipeline():
    """Every served response equals the single-process pipeline."""
    workloads = _serve_workloads(True)
    for response in _drive(workloads, passes=1):
        spec = workloads[response["tenant"]]
        assert response["answers"] == _expected_answers(spec, response["goal"])


def experiment() -> Experiment:
    def build() -> str:
        workloads = _serve_workloads(False)
        responses = _drive(workloads, passes=2)
        rows = []
        mismatches = 0
        for response in responses:
            spec = workloads[response["tenant"]]
            if response["answers"] != _expected_answers(spec, response["goal"]):
                mismatches += 1
            stats = response["stats"]
            rows.append(
                [
                    response["sweep"],
                    response["tenant"],
                    f"`{response['goal']}`",
                    "hit" if response["cache_hit"] else "miss",
                    len(response["answers"]),
                    stats["facts_derived"],
                    stats["rows_scanned"],
                ]
            )
        hits = sum(1 for r in responses if r["cache_hit"])
        table = md_table(
            [
                "sweep",
                "tenant",
                "goal",
                "artifact cache",
                "answers",
                "facts derived",
                "rows scanned",
            ],
            rows,
        )
        summary = (
            f"\n\n{len(responses)} requests compiled {len(responses) - hits} "
            f"artifacts ({hits} cache hits); goals that differ only in their "
            "constants hit the artifact compiled for their adornment shape "
            "(sweep 1 rows 2–3 of each tenant), and every served answer set "
            + (
                "equals the single-process pipeline's, byte for byte."
                if mismatches == 0
                else f"MISMATCHES: {mismatches} responses differ."
            )
        )
        return table + summary

    return Experiment(
        key="E12",
        title="Serving: per-request specialization and the artifact cache",
        narrative=(
            "*Paper:* the magic templates produced by binding passing depend "
            "only on the query's adornment (its bound/free pattern), never on "
            "the bound constants — the constants enter through a single seed "
            "fact.  *Measured:* the serving daemon caches one compiled "
            "pipeline artifact per (workload digest, order, sips, predicate, "
            "adornment) key and re-seeds it per request; in a fixed two-sweep "
            "request sequence over two tenants, only the first goal of each "
            "adornment shape compiles (4 misses), every other request hits, "
            "and served answers are byte-identical to the single-process "
            "pipeline — caching changes work, never answers."
        ),
        build=build,
    )
