"""E8 — Theorem 5.4: the two-counter-machine reduction, executably.

Times (a) building the reduction artifacts, (b) checking the encoded
halting run against all generated ic's, and (c) deriving halt() — for
machines whose run lengths grow.
"""

import pytest

from repro.constraints.integrity import database_satisfies
from repro.datalog.evaluation import evaluate
from repro.machines.reduction import build_reduction, consistent_database_for
from repro.machines.two_counter import busy_machine, counting_machine

MACHINES = {
    "count3": counting_machine(3),
    "count8": counting_machine(8),
    "busy3": busy_machine(3),
}


@pytest.mark.parametrize("name", sorted(MACHINES))
def test_build_reduction(benchmark, name):
    artifacts = benchmark(build_reduction, MACHINES[name])
    assert len(artifacts.program.rules) == 3
    benchmark.extra_info["constraints"] = len(artifacts.constraints)


@pytest.mark.parametrize("name", sorted(MACHINES))
def test_consistency_check(benchmark, name):
    machine = MACHINES[name]
    trace = machine.trace_if_halts(500)
    artifacts = build_reduction(machine)
    database = consistent_database_for(machine, trace)
    assert benchmark(database_satisfies, artifacts.constraints, database)
    benchmark.extra_info["edb_facts"] = database.size()


@pytest.mark.parametrize("name", sorted(MACHINES))
def test_halt_derivation(benchmark, name):
    machine = MACHINES[name]
    trace = machine.trace_if_halts(500)
    artifacts = build_reduction(machine)
    database = consistent_database_for(machine, trace)
    result = benchmark(evaluate, artifacts.program, database)
    assert len(result.relation("halt")) > 0


@pytest.mark.parametrize("name", sorted(MACHINES))
def test_theta_variant_consistency(benchmark, name):
    """Theorem 5.3 shape ({!=}-ic's): far cheaper — no eq/neq closure."""
    from repro.machines.reduction_theta import build_reduction_theta, theta_database_for

    machine = MACHINES[name]
    trace = machine.trace_if_halts(500)
    artifacts = build_reduction_theta(machine)
    database = theta_database_for(machine, trace)
    assert benchmark(database_satisfies, artifacts.constraints, database)
    benchmark.extra_info["edb_facts"] = database.size()
    benchmark.extra_info["constraints"] = len(artifacts.constraints)


def experiment():
    from common import Experiment, md_table

    def build():
        rows = []
        for name in sorted(MACHINES):
            machine = MACHINES[name]
            trace = machine.trace_if_halts(500)
            artifacts = build_reduction(machine)
            database = consistent_database_for(machine, trace)
            assert database_satisfies(artifacts.constraints, database)
            result = evaluate(artifacts.program, database)
            halts = len(result.relation("halt"))
            assert halts > 0
            rows.append(
                [
                    name,
                    len(trace),
                    len(artifacts.program.rules),
                    len(artifacts.constraints),
                    database.size(),
                    halts,
                ]
            )
        return md_table(
            ["machine", "run length", "rules", "ic's", "EDB facts", "halt() rows"],
            rows,
        )

    return Experiment(
        key="E08",
        title="Theorems 5.3/5.4 + appendix: undecidability via 2-counter machines",
        narrative=(
            "*Paper:* satisfiability with general ic's is undecidable, by "
            "encoding two-counter machines.  *Measured:* the reduction is "
            "executable — for each halting machine the generated database "
            "satisfies every ic and the 3-rule program derives `halt()` "
            "bottom-up from the encoded run."
        ),
        build=build,
    )
