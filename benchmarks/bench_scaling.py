"""E9 — Theorem 5.1: growth of the adornment space.

Satisfiability (and hence complete semantic optimization) has doubly
exponential lower and upper bounds.  This bench measures how the
bottom-up phase scales as the number of constraints and the number of
mutually-recursive edge colors grow — the knob that drives the triplet
combinatorics.
"""

import pytest
from common import Experiment, colored_closure, md_table

from repro.core.adornments import compute_adornments
from repro.core.rewrite import optimize

_colored_closure = colored_closure


@pytest.mark.parametrize("colors", [2, 3, 4])
def test_adornment_growth(benchmark, colors):
    program, constraints = _colored_closure(colors)
    result = benchmark(compute_adornments, program, constraints)
    benchmark.extra_info["adornments"] = len(result.adornments["p"])
    benchmark.extra_info["adorned_rules"] = len(result.adorned_rules)


@pytest.mark.parametrize("colors", [2, 3])
def test_full_pipeline_growth(benchmark, colors):
    program, constraints = _colored_closure(colors)
    report = benchmark(optimize, program, constraints)
    assert report.satisfiable
    benchmark.extra_info["rewritten_rules"] = (
        0 if report.program is None else len(report.program.rules)
    )


def test_adornment_counts_grow_monotonically():
    """The structural claim behind the bound: more interacting
    constraints -> strictly more adorned predicates."""
    counts = []
    for colors in (2, 3, 4):
        program, constraints = _colored_closure(colors)
        result = compute_adornments(program, constraints)
        counts.append(len(result.adornments["p"]))
    assert counts == sorted(counts) and counts[0] < counts[-1]


def experiment() -> Experiment:
    def build() -> str:
        rows = []
        for colors in (2, 3, 4):
            program, constraints = colored_closure(colors)
            result = compute_adornments(program, constraints)
            report = optimize(program, constraints)
            rows.append(
                [
                    colors,
                    len(program.rules),
                    len(constraints),
                    len(result.adornments["p"]),
                    len(result.adorned_rules),
                    0 if report.program is None else len(report.program.rules),
                ]
            )
        return md_table(
            ["colors", "rules", "ic's", "adornments of p", "adorned rules", "rewritten rules"],
            rows,
        )

    return Experiment(
        key="E09",
        title="Theorem 5.1: growth of the adornment space",
        narrative=(
            "*Paper:* satisfiability (and complete semantic optimization) has "
            "doubly exponential lower and upper bounds; the adornment space is "
            "the mechanism.  *Measured:* the colored-closure family "
            "(`common.colored_closure`) with chained forbidden-successor "
            "constraints — each added edge color grows the adornment count of "
            "`p` and the adorned/rewritten rule sets strictly and "
            "super-linearly."
        ),
        build=build,
    )
