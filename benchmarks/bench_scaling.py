"""E9 — Theorem 5.1: growth of the adornment space.

Satisfiability (and hence complete semantic optimization) has doubly
exponential lower and upper bounds.  This bench measures how the
bottom-up phase scales as the number of constraints and the number of
mutually-recursive edge colors grow — the knob that drives the triplet
combinatorics.
"""

import pytest

from repro.core.adornments import compute_adornments
from repro.core.rewrite import optimize
from repro.datalog.parser import parse_constraints, parse_program


def _colored_closure(colors: int):
    """Transitive closure over `colors` edge predicates with chained
    forbidden-successor constraints e0-after-e1, e1-after-e2, ..."""
    names = [f"e{i}" for i in range(colors)]
    rules = []
    for name in names:
        rules.append(f"p(X, Y) :- {name}(X, Y).")
        rules.append(f"p(X, Y) :- {name}(X, Z), p(Z, Y).")
    program = parse_program("\n".join(rules), query="p")
    ic_lines = []
    for first, second in zip(names, names[1:]):
        ic_lines.append(f":- {first}(X, Y), {second}(Y, Z).")
    constraints = parse_constraints("\n".join(ic_lines)) if ic_lines else []
    return program, constraints


@pytest.mark.parametrize("colors", [2, 3, 4])
def test_adornment_growth(benchmark, colors):
    program, constraints = _colored_closure(colors)
    result = benchmark(compute_adornments, program, constraints)
    benchmark.extra_info["adornments"] = len(result.adornments["p"])
    benchmark.extra_info["adorned_rules"] = len(result.adorned_rules)


@pytest.mark.parametrize("colors", [2, 3])
def test_full_pipeline_growth(benchmark, colors):
    program, constraints = _colored_closure(colors)
    report = benchmark(optimize, program, constraints)
    assert report.satisfiable
    benchmark.extra_info["rewritten_rules"] = (
        0 if report.program is None else len(report.program.rules)
    )


def test_adornment_counts_grow_monotonically():
    """The structural claim behind the bound: more interacting
    constraints -> strictly more adorned predicates."""
    counts = []
    for colors in (2, 3, 4):
        program, constraints = _colored_closure(colors)
        result = compute_adornments(program, constraints)
        counts.append(len(result.adornments["p"]))
    assert counts == sorted(counts) and counts[0] < counts[-1]
