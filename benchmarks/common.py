"""Shared harness for the benchmark suite.

Two consumers:

* the ``pytest-benchmark`` timing tests in ``bench_*.py`` (wall-clock
  shapes; run with ``pytest benchmarks/ --benchmark-only``), and
* each module's ``experiment()`` — the deterministic section of the
  regenerated ``EXPERIMENTS.md`` (``python -m repro report
  --regenerate``), built from seeded work counters only.

Workload builders that used to live inside individual bench modules
(the colored-closure family, the bound-query magic workloads) live here
so both consumers and the docs reference one definition.
"""

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_constraints, parse_program
from repro.datalog.terms import Constant, Variable
from repro.observability import Experiment, md_table, work_ratio_table
from repro.workloads.generators import (
    ab_database,
    good_path_database,
    same_generation_database,
)
from repro.workloads.programs import (
    ab_transitive_closure,
    good_path_order_constraints,
    same_generation,
)

__all__ = [
    "Experiment",
    "md_table",
    "work_ratio_table",
    "bound_atom",
    "colored_closure",
    "magic_workloads",
    "stats_variants",
]


def bound_atom(predicate: str, constant, arity: int = 2) -> Atom:
    """``p(c, V1, ..)``: first argument bound, the rest free."""
    args = (Constant(constant),) + tuple(Variable(f"V{i}") for i in range(arity - 1))
    return Atom(predicate, args)


def colored_closure(colors: int):
    """Transitive closure over ``colors`` edge predicates with chained
    forbidden-successor constraints e0-after-e1, e1-after-e2, ...

    The knob behind Theorem 5.1's doubly exponential bound: each extra
    color multiplies the triplet combinatorics of the bottom-up phase.
    """
    names = [f"e{i}" for i in range(colors)]
    rules = []
    for name in names:
        rules.append(f"p(X, Y) :- {name}(X, Y).")
        rules.append(f"p(X, Y) :- {name}(X, Z), p(Z, Y).")
    program = parse_program("\n".join(rules), query="p")
    ic_lines = []
    for first, second in zip(names, names[1:]):
        ic_lines.append(f":- {first}(X, Y), {second}(Y, Z).")
    constraints = parse_constraints("\n".join(ic_lines)) if ic_lines else []
    return program, constraints


def magic_workloads():
    """The three bound-query workloads of E11, seeded and ordered.

    Yields ``(name, program, constraints, database, query_atom)``.
    """
    program, ics = ab_transitive_closure()
    db = ab_database(num_b=40, num_a=40, branching=2, seed=0)
    yield "ab", program, ics, db, bound_atom("p", 0)

    program, ics = good_path_order_constraints()
    db = good_path_database(num_chains=4, chain_length=20, seed=0)
    start = min(row[0] for row in db.relation("startPoint", 1))
    yield "goodPath", program, ics, db, bound_atom("goodPath", start)

    program, ics = same_generation()
    db = same_generation_database(depth=5, fanout=2, seed=0)
    yield "sg", program, ics, db, bound_atom("query", 2)


def stats_variants(rows):
    """``[(label, EvaluationResult)] -> work_ratio_table`` input."""
    return [(label, result.stats.as_dict()) for label, result in rows]
