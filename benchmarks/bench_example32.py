"""E2 — Section 3 (ic's (1)+(2)): the X >= 100 pushdown.

Sweep over the number of decoy (below-threshold) chains: the original
program materializes every path in the decoy region, the rewritten one
never touches it.  The paper's prediction — the gap grows linearly with
the decoy mass while the optimized cost stays flat — is the shape this
bench exhibits.
"""

import pytest

from repro.core.rewrite import optimize
from repro.datalog.evaluation import evaluate
from repro.workloads.generators import good_path_database
from repro.workloads.programs import good_path_order_constraints

DECOYS = [0, 4, 16]


@pytest.fixture(scope="module")
def workload():
    program, constraints = good_path_order_constraints()
    report = optimize(program, constraints)
    assert report.program is not None
    return program, report


def _database(decoys):
    return good_path_database(
        num_chains=4, chain_length=40, below_threshold_chains=decoys, seed=0
    )


@pytest.mark.parametrize("decoys", DECOYS)
def test_original(benchmark, workload, decoys):
    program, _ = workload
    database = _database(decoys)
    result = benchmark(evaluate, program, database)
    benchmark.extra_info["facts_derived"] = result.stats.facts_derived
    benchmark.extra_info["rows_scanned"] = result.stats.rows_scanned


@pytest.mark.parametrize("decoys", DECOYS)
def test_semantically_optimized(benchmark, workload, decoys):
    program, report = workload
    database = _database(decoys)
    expected = evaluate(program, database).query_rows()
    result = benchmark(evaluate, report.program, database)
    assert result.query_rows() == expected
    benchmark.extra_info["facts_derived"] = result.stats.facts_derived
    benchmark.extra_info["rows_scanned"] = result.stats.rows_scanned


def test_optimized_cost_flat_in_decoys(workload):
    """The headline shape: decoy chains cost the original program linearly
    and the rewritten program (almost) nothing."""
    program, report = workload
    baseline = evaluate(report.program, _database(0)).stats.facts_derived
    loaded = evaluate(report.program, _database(16)).stats.facts_derived
    assert loaded <= baseline * 1.05
    original_baseline = evaluate(program, _database(0)).stats.facts_derived
    original_loaded = evaluate(program, _database(16)).stats.facts_derived
    assert original_loaded > original_baseline * 3


def experiment():
    from common import Experiment, md_table

    def build():
        program, constraints = good_path_order_constraints()
        report = optimize(program, constraints)
        assert report.program is not None
        rows = []
        for decoys in DECOYS:
            database = _database(decoys)
            original = evaluate(program, database)
            rewritten = evaluate(report.program, database)
            assert rewritten.query_rows() == original.query_rows()
            rows.append(
                [
                    decoys,
                    original.stats.facts_derived,
                    rewritten.stats.facts_derived,
                    original.stats.rows_scanned,
                    rewritten.stats.rows_scanned,
                ]
            )
        return md_table(
            [
                "decoy chains",
                "facts (original)",
                "facts (rewritten)",
                "rows scanned (original)",
                "rows scanned (rewritten)",
            ],
            rows,
        )

    return Experiment(
        key="E02",
        title="Section 3, ic's (1)+(2): pushing `X >= 100` into the recursion",
        narrative=(
            "*Paper:* with the start-point threshold constraints, the rewritten "
            "recursive rules carry `X >= 100` and never explore the "
            "below-threshold region.  *Measured:* decoy (below-threshold) "
            "chains cost the original program linearly while the rewritten "
            "program's work stays flat."
        ),
        build=build,
    )
