"""E7 — Proposition 5.2: emptiness via initialization rules.

The proposition's practical payoff: emptiness of a *recursive* program
costs only the initialization-rule checks, while deciding
satisfiability of the query predicate runs the full query-tree
pipeline.  The bench reports both on the same inputs, plus the cost of
the four Theorem 5.2 rule-class cases.
"""

import pytest

from repro.core.emptiness import is_empty_program, rule_satisfiable_wrt
from repro.core.reachability import is_satisfiable
from repro.datalog.parser import parse_constraints, parse_program, parse_rule


def _chain_program(depth: int):
    """p0 .. p<depth> chained; the initialization rule violates the ic."""
    lines = ["p0(X, Y) :- a(X, Y), b(Y, X)."]
    for i in range(1, depth + 1):
        lines.append(f"p{i}(X, Y) :- p{i - 1}(X, Z), a(Z, Y).")
    program = parse_program("\n".join(lines), query=f"p{depth}")
    constraints = parse_constraints(":- a(X, Y), b(Y, Z).")
    return program, constraints


@pytest.mark.parametrize("depth", [2, 6, 12])
def test_emptiness_via_initialization_rules(benchmark, depth):
    program, constraints = _chain_program(depth)
    assert benchmark(is_empty_program, program, constraints)


@pytest.mark.parametrize("depth", [2, 6, 12])
def test_satisfiability_full_pipeline(benchmark, depth):
    program, constraints = _chain_program(depth)
    assert not benchmark(is_satisfiable, program, constraints)


RULE_CASES = {
    "plain": (
        "q(X) :- a(X, Y), b(Y, X).",
        ":- a(X, Y), b(Y, Z).",
    ),
    "theta_ics": (
        "q(X) :- step(X, Y).",
        ":- step(X, Y), X >= Y. :- step(X, Y), X < Y.",
    ),
    "negated_ics": (
        "q(X) :- member(X), not vetted(X).",
        ":- member(X), not registered(X). :- registered(X), not vetted(X).",
    ),
    "theta_negated_ics": (
        "q(X) :- v(X), not w(X), X > 5.",
        ":- v(X), not w(X), X > 3.",
    ),
}


@pytest.mark.parametrize("case", sorted(RULE_CASES))
def test_rule_satisfiability_classes(benchmark, case):
    """The four complexity classes of Theorem 5.2 on one rule each
    (all four examples are unsatisfiable)."""
    rule_src, ics_src = RULE_CASES[case]
    rule = parse_rule(rule_src)
    constraints = parse_constraints(ics_src)
    assert not benchmark(rule_satisfiable_wrt, rule, constraints)


def experiment():
    from common import Experiment, md_table
    from repro.core.emptiness import unsatisfiable_initialization_rules

    def build():
        rows = []
        for depth in (2, 6, 12):
            program, constraints = _chain_program(depth)
            empty = is_empty_program(program, constraints)
            bad_inits = len(unsatisfiable_initialization_rules(program, constraints))
            satisfiable = is_satisfiable(program, constraints)
            assert empty and not satisfiable
            rows.append([depth, len(program.rules), str(empty), bad_inits, str(satisfiable)])
        return md_table(
            ["chain depth", "rules", "empty?", "unsat. init rules", "query satisfiable?"],
            rows,
        )

    return Experiment(
        key="E07",
        title="Proposition 5.2 / Theorem 5.2: emptiness",
        narrative=(
            "*Paper:* a recursive program is empty iff its initialization "
            "rules are all unsatisfiable — so emptiness costs only per-rule "
            "checks while satisfiability runs the full query-tree pipeline.  "
            "*Measured:* on recursion chains of growing depth both deciders "
            "agree (empty and unsatisfiable), with exactly one unsatisfiable "
            "initialization rule each."
        ),
        build=build,
    )
