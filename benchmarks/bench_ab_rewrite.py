"""E3 — the a/b running example end-to-end.

The rewritten program "will not attempt to create paths in which arcs
of a are followed by arcs of b (thereby saving the effort involved in
performing joins that are guaranteed to be empty)".  The saving shows
in the number of index probes; the specialized predicates recompute the
b-closure twice (p2 and p3), so rows scanned stay comparable — both
effects are reported.
"""

import pytest

from repro.core.rewrite import optimize
from repro.datalog.evaluation import evaluate
from repro.workloads.generators import ab_database
from repro.workloads.programs import ab_transitive_closure

SIZES = [20, 40, 80]


@pytest.fixture(scope="module")
def workload():
    program, constraints = ab_transitive_closure()
    report = optimize(program, constraints)
    assert report.program is not None
    return program, report


def _database(size):
    return ab_database(num_b=size, num_a=size, branching=2, seed=0)


@pytest.mark.parametrize("size", SIZES)
def test_original(benchmark, workload, size):
    program, _ = workload
    database = _database(size)
    result = benchmark(evaluate, program, database)
    benchmark.extra_info["probes"] = result.stats.probes
    benchmark.extra_info["rows_scanned"] = result.stats.rows_scanned
    benchmark.extra_info["answers"] = len(result.query_rows())


@pytest.mark.parametrize("size", SIZES)
def test_rewritten(benchmark, workload, size):
    program, report = workload
    database = _database(size)
    expected = evaluate(program, database).query_rows()
    result = benchmark(evaluate, report.program, database)
    assert result.query_rows() == expected
    benchmark.extra_info["probes"] = result.stats.probes
    benchmark.extra_info["rows_scanned"] = result.stats.rows_scanned


def test_probe_savings_hold(workload):
    """Cross-size check: the rewriting consistently probes less."""
    program, report = workload
    for size in SIZES:
        database = _database(size)
        original = evaluate(program, database)
        rewritten = evaluate(report.program, database)
        assert rewritten.stats.probes < original.stats.probes


def experiment():
    from common import Experiment, work_ratio_table

    def build():
        program, constraints = ab_transitive_closure()
        report = optimize(program, constraints)
        assert report.program is not None
        parts = []
        for size in SIZES:
            database = _database(size)
            original = evaluate(program, database)
            rewritten = evaluate(report.program, database)
            assert rewritten.query_rows() == original.query_rows()
            assert rewritten.stats.probes < original.stats.probes
            parts.append(f"{size} a-edges + {size} b-edges:")
            parts.append(
                work_ratio_table(
                    [
                        ("original", original.stats.as_dict()),
                        ("rewritten (p1/p2/p3)", rewritten.stats.as_dict()),
                    ]
                )
            )
        return "\n\n".join(parts)

    return Experiment(
        key="E03",
        title="the a/b running example end-to-end",
        narrative=(
            "*Paper:* the rewritten program \"will not attempt to create paths "
            "in which arcs of a are followed by arcs of b\".  *Measured:* "
            "probes drop at every size; rows scanned stay comparable because "
            "the specialized predicates recompute the b-closure twice (p2 and "
            "p3) — both effects below."
        ),
        build=build,
    )
