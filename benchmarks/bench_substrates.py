"""Substrate benchmarks: the engine, the dense-order solver, and
homomorphism search — the components whose costs every experiment above
is built from.
"""

import random

import pytest

from repro.constraints.dense_order import OrderConstraintSet
from repro.cq.homomorphism import all_homomorphisms
from repro.datalog.atoms import Atom, OrderAtom
from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant, Variable

TC = parse_program(
    """
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, Z), t(Z, Y).
    """,
    query="t",
)


def _chain_db(n):
    return Database.from_rows({"e": [(i, i + 1) for i in range(n)]})


def _random_db(n, m, seed=0):
    rng = random.Random(seed)
    return Database.from_rows(
        {"e": {(rng.randrange(n), rng.randrange(n)) for _ in range(m)}}
    )


@pytest.mark.parametrize("n", [50, 100, 200])
def test_engine_seminaive_chain(benchmark, n):
    result = benchmark(evaluate, TC, _chain_db(n))
    assert len(result.rows("t")) == n * (n + 1) // 2


@pytest.mark.parametrize("n", [50, 100])
def test_engine_naive_chain(benchmark, n):
    result = benchmark(lambda: evaluate(TC, _chain_db(n), strategy="naive"))
    assert len(result.rows("t")) == n * (n + 1) // 2


@pytest.mark.parametrize("m", [100, 400])
def test_engine_random_graph(benchmark, m):
    database = _random_db(60, m)
    result = benchmark(evaluate, TC, database)
    assert result.stats.facts_derived == len(result.rows("t"))


def _random_order_atoms(count, seed=0):
    rng = random.Random(seed)
    terms = [Variable(f"V{i}") for i in range(8)] + [Constant(i) for i in range(4)]
    ops = ["<", "<=", ">", ">=", "=", "!="]
    return [
        OrderAtom(rng.choice(terms), rng.choice(ops), rng.choice(terms))
        for _ in range(count)
    ]


@pytest.mark.parametrize("count", [8, 32, 128])
def test_dense_order_satisfiability(benchmark, count):
    atoms = _random_order_atoms(count)

    def run():
        return OrderConstraintSet(atoms).is_satisfiable()

    benchmark(run)


@pytest.mark.parametrize("count", [8, 32])
def test_dense_order_projection(benchmark, count):
    atoms = [a for a in _random_order_atoms(count, seed=3)]
    constraints = OrderConstraintSet(atoms)
    if not constraints.is_satisfiable():
        pytest.skip("sampled set unsatisfiable")
    terms = [Variable(f"V{i}") for i in range(4)]
    benchmark(constraints.project, terms)


@pytest.mark.parametrize("size", [20, 60])
def test_homomorphism_search(benchmark, size):
    rng = random.Random(1)
    target = [
        Atom("e", (Constant(rng.randrange(12)), Constant(rng.randrange(12))))
        for _ in range(size)
    ]
    X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
    source = [Atom("e", (X, Y)), Atom("e", (Y, Z)), Atom("e", (Z, X))]
    result = benchmark(all_homomorphisms, source, target)
    assert isinstance(result, list)


def experiment():
    from common import Experiment, work_ratio_table

    def build():
        parts = []
        for n in (50, 100):
            database = _chain_db(n)
            seminaive = evaluate(TC, database)
            naive = evaluate(TC, database, strategy="naive")
            assert len(seminaive.rows("t")) == n * (n + 1) // 2
            assert seminaive.rows("t") == naive.rows("t")
            parts.append(f"transitive closure of an {n}-edge chain:")
            parts.append(
                work_ratio_table(
                    [
                        ("naive", naive.stats.as_dict()),
                        ("semi-naive", seminaive.stats.as_dict()),
                    ],
                    baseline="naive",
                )
            )
        return "\n\n".join(parts)

    return Experiment(
        key="S01",
        title="substrate: naive vs. semi-naive evaluation",
        narrative=(
            "*Context:* every experiment above rides on the bottom-up engine; "
            "this section pins its baseline behavior.  *Measured:* on chain "
            "transitive closure both strategies derive the same relation, and "
            "semi-naive (delta) iteration re-derives far fewer facts — the "
            "work every optimization in this report is measured against."
        ),
        build=build,
    )
