"""E10 — ablations over the optimizer's design choices.

DESIGN.md calls out three separable mechanisms; each is toggled here on
the Section 3 workload:

* residue injection (CGM88 single-literal negations),
* order propagation (LMSS93-style preprocessing + post-specialization
  pass),
* the query tree itself (vs. the CGM88-only per-rule optimizer).
"""

import pytest

from repro.core.residues import constrain_program
from repro.core.rewrite import optimize
from repro.datalog.evaluation import evaluate
from repro.workloads.generators import good_path_database
from repro.workloads.programs import good_path_order_constraints


@pytest.fixture(scope="module")
def database():
    return good_path_database(
        num_chains=4, chain_length=40, below_threshold_chains=8, seed=0
    )


@pytest.fixture(scope="module")
def workload():
    return good_path_order_constraints()


def _verify(program, variant, database, expected):
    result = evaluate(variant, database)
    assert result.query_rows() == expected
    return result


def test_baseline_original(benchmark, workload, database):
    program, _ = workload
    result = benchmark(evaluate, program, database)
    benchmark.extra_info["facts_derived"] = result.stats.facts_derived


def test_cgm88_only(benchmark, workload, database):
    """Per-rule residues without the query tree: misses the cross-rule
    X >= 100 interaction entirely (the paper's Section 3 point)."""
    program, constraints = workload
    variant = constrain_program(program, constraints)
    expected = evaluate(program, database).query_rows()
    result = benchmark(evaluate, variant, database)
    assert result.query_rows() == expected
    benchmark.extra_info["facts_derived"] = result.stats.facts_derived


def test_full_without_residue_injection(benchmark, workload, database):
    program, constraints = workload
    report = optimize(program, constraints, inject_residues=False)
    expected = evaluate(program, database).query_rows()
    result = benchmark(evaluate, report.program, database)
    assert result.query_rows() == expected
    benchmark.extra_info["facts_derived"] = result.stats.facts_derived


def test_full_without_order_propagation(benchmark, workload, database):
    program, constraints = workload
    report = optimize(program, constraints, propagate_orders=False)
    expected = evaluate(program, database).query_rows()
    result = benchmark(evaluate, report.program, database)
    assert result.query_rows() == expected
    benchmark.extra_info["facts_derived"] = result.stats.facts_derived


def test_full_pipeline(benchmark, workload, database):
    program, constraints = workload
    report = optimize(program, constraints)
    expected = evaluate(program, database).query_rows()
    result = benchmark(evaluate, report.program, database)
    assert result.query_rows() == expected
    benchmark.extra_info["facts_derived"] = result.stats.facts_derived


def test_ablation_ordering(workload, database):
    """The structural claim: CGM88-only cannot prune the decoy region,
    the full pipeline can."""
    program, constraints = workload
    cgm = evaluate(constrain_program(program, constraints), database)
    full = evaluate(optimize(program, constraints).program, database)
    assert full.stats.facts_derived < cgm.stats.facts_derived


def experiment():
    from common import Experiment, md_table

    def build():
        program, constraints = good_path_order_constraints()
        database = good_path_database(
            num_chains=4, chain_length=40, below_threshold_chains=8, seed=0
        )
        expected = evaluate(program, database).query_rows()
        variants = [
            ("original (no optimization)", program),
            ("CGM88 residues only", constrain_program(program, constraints)),
            (
                "query tree, no residue injection",
                optimize(program, constraints, inject_residues=False).program,
            ),
            (
                "query tree, no order propagation",
                optimize(program, constraints, propagate_orders=False).program,
            ),
            ("full pipeline", optimize(program, constraints).program),
        ]
        rows = []
        for label, variant in variants:
            result = evaluate(variant, database)
            assert result.query_rows() == expected, label
            rows.append([label, result.stats.facts_derived, result.stats.rows_scanned])
        return md_table(["variant", "facts derived", "rows scanned"], rows)

    return Experiment(
        key="E10",
        title="ablations (design choices called out in DESIGN.md)",
        narrative=(
            "*Paper/DESIGN.md:* residue injection, order propagation and the "
            "query tree are separable mechanisms.  *Measured:* on the Section "
            "3 workload with 8 decoy chains, per-rule residues alone (CGM88) "
            "cannot prune the decoy region; the query tree can, and the full "
            "pipeline does the least work.  All variants answer identically."
        ),
        build=build,
    )
