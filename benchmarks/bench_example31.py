"""E1 — Example 3.1: the residue selection ``Y > X``.

Compares evaluation of the original goodPath program against the
CGM88-constrained one on growing consistent databases.  The paper's
claim: "by applying the selection Y > X to path(X, Y) we can reduce the
cost of evaluating rule r3".  The win shows up in the rows scanned by
the final join and in wall time once the path relation is large.
"""

import pytest

from repro.core.residues import constrain_program
from repro.datalog.evaluation import evaluate
from repro.workloads.generators import good_path_bidirectional_database
from repro.workloads.programs import good_path

SIZES = [10, 40, 80]


@pytest.fixture(scope="module")
def workload():
    program, constraints = good_path()
    optimized = constrain_program(program, constraints)
    return program, optimized


def _database(chain_length):
    return good_path_bidirectional_database(
        num_chains=4, chain_length=chain_length, seed=0
    )


@pytest.mark.parametrize("chain_length", SIZES)
def test_original(benchmark, workload, chain_length):
    program, _ = workload
    database = _database(chain_length)
    result = benchmark(evaluate, program, database)
    benchmark.extra_info["probes"] = result.stats.probes
    benchmark.extra_info["rows_scanned"] = result.stats.rows_scanned
    benchmark.extra_info["answers"] = len(result.query_rows())


@pytest.mark.parametrize("chain_length", SIZES)
def test_residue_optimized(benchmark, workload, chain_length):
    program, optimized = workload
    database = _database(chain_length)
    expected = evaluate(program, database).query_rows()
    result = benchmark(evaluate, optimized, database)
    assert result.query_rows() == expected
    benchmark.extra_info["probes"] = result.stats.probes
    benchmark.extra_info["rows_scanned"] = result.stats.rows_scanned


def test_selection_prunes_end_point_probes(workload):
    """The residue Y > X skips the endPoint probe for every descending
    path emanating from a start point."""
    program, optimized = workload
    database = _database(40)
    original = evaluate(program, database)
    constrained = evaluate(optimized, database)
    assert constrained.stats.probes < original.stats.probes


def experiment():
    from common import Experiment, work_ratio_table

    def build():
        program, constraints = good_path()
        optimized = constrain_program(program, constraints)
        parts = []
        for chain_length in SIZES:
            database = _database(chain_length)
            original = evaluate(program, database)
            constrained = evaluate(optimized, database)
            assert constrained.query_rows() == original.query_rows()
            parts.append(f"chain length {chain_length}:")
            parts.append(
                work_ratio_table(
                    [
                        ("original", original.stats.as_dict()),
                        ("with residue Y > X", constrained.stats.as_dict()),
                    ]
                )
            )
        return "\n\n".join(parts)

    return Experiment(
        key="E01",
        title="Example 3.1: the residue selection `Y > X`",
        narrative=(
            "*Paper:* \"by applying the selection Y > X to path(X, Y) we can "
            "reduce the cost of evaluating rule r3\".  *Measured:* the CGM88 "
            "residue-constrained program answers identically on consistent "
            "bidirectional-chain databases while issuing fewer index probes "
            "in the final join; the saving grows with the chain length."
        ),
        build=build,
    )
