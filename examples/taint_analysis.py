#!/usr/bin/env python3
"""Semantic query optimization for static taint analysis.

Datalog is the workhorse of declarative program analysis; this example
shows the paper's machinery applying there.  Taint propagates from
sources along flow edges; an alarm fires when taint reaches a sink.
Two facts about the program model become integrity constraints:

* no variable is both a source and a sink,
* sanitizers have no outgoing flow edges.

The optimizer then proves that the *zero-step* alarm derivation (a
variable tainted directly at its source being itself a sink) is
impossible, specializes ``taint`` into "just-sourced" and
"flowed-at-least-once" variants, keeps only the latter under ``alarm``,
and injects the ``not sanitizer(W)`` residue into the propagation rule.

Run:  python examples/taint_analysis.py
"""

from repro import evaluate, optimize
from repro.constraints import database_satisfies
from repro.core import querytree_dot
from repro.workloads import taint_analysis, taint_database


def main() -> None:
    program, constraints = taint_analysis()
    print("== Analysis rules ==")
    print(program)
    print("\n== Program-model constraints ==")
    for ic in constraints:
        print(ic)

    report = optimize(program, constraints)
    print("\n== Rewritten analysis ==")
    print(report.program)
    print()
    print(report.summary())

    database = taint_database(variables=60, flows=150, sources=6, sinks=6, seed=7)
    assert database_satisfies(constraints, database)
    original = evaluate(program, database)
    rewritten = report.evaluation(database)
    assert original.query_rows() == rewritten.query_rows()
    print("\n== Alarms ==")
    print(sorted(v for (v,) in original.query_rows()))
    print(
        f"work: {original.stats.rows_scanned} -> "
        f"{rewritten.stats.rows_scanned} rows scanned"
    )

    print("\n== Query tree as DOT (render with `dot -Tpng`) ==")
    print(querytree_dot(report.tree)[:400] + "\n  ...")


if __name__ == "__main__":
    main()
