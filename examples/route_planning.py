#!/usr/bin/env python3
"""Section 3's second example: pushing order constraints into recursion.

Two ic's — "steps emanate from start points only at values >= 100" and
"steps strictly increase" — jointly imply that no path relevant to the
query ever visits a point below 100.  Discovering this requires looking
across derivation trees (no single rule violates anything); the
query-tree algorithm pushes ``X >= 100`` into the recursive path rules,
so the below-threshold decoy region of the database is never explored.

Run:  python examples/route_planning.py
"""

from repro import evaluate, optimize
from repro.workloads import good_path_database, good_path_order_constraints


def main() -> None:
    program, constraints = good_path_order_constraints()
    print("== Program ==")
    print(program)
    print("\n== Integrity constraints ==")
    for ic in constraints:
        print(ic)

    report = optimize(program, constraints)
    print("\n== Rewritten program (the paper's r1', r2', r3') ==")
    print(report.program)
    print()
    print(report.summary())

    for decoys in (0, 4, 16):
        database = good_path_database(
            num_chains=4,
            chain_length=40,
            below_threshold_chains=decoys,
            seed=0,
        )
        original = evaluate(program, database)
        rewritten = report.evaluation(database)
        assert original.query_rows() == rewritten.query_rows()
        print(
            f"decoy chains={decoys:3d}  "
            f"facts derived: {original.stats.facts_derived:6d} -> "
            f"{rewritten.stats.facts_derived:6d}   "
            f"rows scanned: {original.stats.rows_scanned:7d} -> "
            f"{rewritten.stats.rows_scanned:7d}"
        )


if __name__ == "__main__":
    main()
