#!/usr/bin/env python3
"""The paper's running example (Section 4, Figure 1).

The transitive closure of ``a``- and ``b``-edges under the constraint
that an ``a``-edge is never followed by a ``b``-edge.  The query tree
specializes ``p`` into three adorned predicates:

* ``p1`` — pure ``a``-closure,
* ``p2`` — pure ``b``-closure,
* ``p3`` — ``b``-edges followed by ``a``-paths,

and the rewritten program never attempts the joins that the constraint
guarantees to be empty.  This script prints the bottom-up adornments,
the query tree of Figure 1, and the rewritten program, then measures
the join work saved on a synthetic consistent database.

Run:  python examples/ab_paths.py
"""

from repro import evaluate, optimize
from repro.core.adornments import compute_adornments
from repro.core.querytree import build_query_tree
from repro.workloads import ab_database, ab_transitive_closure


def main() -> None:
    program, constraints = ab_transitive_closure()
    print("== Program P ==")
    print(program)
    print("\n== Integrity constraint ==")
    print(constraints[0])

    result = compute_adornments(program, constraints)
    print("\n== Bottom-up phase: adornments of p (cf. p1, p2, p3) ==")
    for adornment in result.adornments["p"]:
        name = result.adorned_name("p", adornment)
        residues = sorted(
            triplet.render(result.constraints)
            for triplet in adornment
            if not triplet.is_trivial()
        )
        print(f"{name}: {residues}")

    print("\n== Adorned program P1 (the paper's s1 .. s6) ==")
    for adorned in result.adorned_rules:
        head = result.adorned_name("p", adorned.head_adornment)
        body = []
        for literal, sub in zip(
            adorned.rule.positive_literals, adorned.subgoal_adornments
        ):
            if sub is None:
                body.append(repr(literal.atom))
            else:
                args = ", ".join(str(a) for a in literal.args)
                body.append(f"{result.adorned_name(literal.predicate, sub)}({args})")
        head_args = ", ".join(str(a) for a in adorned.rule.head.args)
        print(f"{head}({head_args}) :- {', '.join(body)}.")

    tree = build_query_tree(result)
    print("\n== Query tree (Figure 1) ==")
    print(tree.render())

    report = optimize(program, constraints)
    print("\n== Rewritten program P' ==")
    print(report.program)

    database = ab_database(num_b=60, num_a=60, branching=3, seed=0)
    original = evaluate(program, database)
    rewritten = report.evaluation(database)
    assert original.query_rows() == rewritten.query_rows()
    print("\n== Join work on a consistent database ==")
    print(f"answers          : {len(original.query_rows())}")
    print(f"original probes  : {original.stats.probes}")
    print(f"rewritten probes : {rewritten.stats.probes}")
    print(f"original scanned : {original.stats.rows_scanned}")
    print(f"rewritten scanned: {rewritten.stats.rows_scanned}")


if __name__ == "__main__":
    main()
