#!/usr/bin/env python3
"""Data dependencies as integrity constraints (paper, Section 1).

"Using ic's it is possible to express a variety of constraints, such as
data dependencies (functional dependencies, multivalued dependencies
and inclusion dependencies) as well as constraints involving
comparisons."  This example builds each kind with
:mod:`repro.constraints.dependencies`, checks a small employee database
against them, and shows Theorem 5.5's fine print in action: fd's carry
a non-local ``!=`` atom, so the optimizer exploits them through residue
injection and reports the incorporation as incomplete.

Run:  python examples/dependencies.py
"""

from repro import Database, optimize, parse_program
from repro.constraints import (
    database_satisfies,
    domain_constraint,
    functional_dependency,
    inclusion_dependency,
    violations,
)

# emp(Id, Dept, Salary); dept(Name); mgr(Dept, EmpId)
CONSTRAINTS = (
    [functional_dependency("emp", 3, [0], 1)]            # Id -> Dept
    + [functional_dependency("emp", 3, [0], 2)]          # Id -> Salary
    + [inclusion_dependency("mgr", 2, [0], "dept", 1, [0])]  # mgr dept exists
    + domain_constraint("emp", 3, 2, lower=0)            # salaries nonneg
)

GOOD = Database.from_rows(
    {
        "emp": [(1, "sales", 50), (2, "dev", 70), (3, "dev", 65)],
        "dept": [("sales",), ("dev",)],
        "mgr": [("sales", 1), ("dev", 2)],
    }
)

BAD = Database.from_rows(
    {
        "emp": [(1, "sales", 50), (1, "dev", 50), (4, "ops", -10)],
        "dept": [("sales",)],
        "mgr": [("dev", 1)],
    }
)


def main() -> None:
    print("== Constraints ==")
    for ic in CONSTRAINTS:
        print(ic)

    print("\n== Consistent database ==")
    print("satisfies all:", database_satisfies(CONSTRAINTS, GOOD))

    print("\n== Broken database ==")
    for ic in CONSTRAINTS:
        count = violations(ic, BAD)
        if count:
            print(f"{count} violation(s): {ic}")

    # Theorem 5.5 territory: the fd's != is non-local, so the query-tree
    # machinery cannot (and provably could not, in general) incorporate
    # it; residue injection still applies it soundly.
    program = parse_program(
        "sameDept(X, Y) :- emp(X, D, S1), emp(Y, D, S2).", query="sameDept"
    )
    report = optimize(program, CONSTRAINTS)
    print("\n== Optimizing with fd's (Theorem 5.5 fine print) ==")
    print(report.summary())


if __name__ == "__main__":
    main()
