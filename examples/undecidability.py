#!/usr/bin/env python3
"""Theorem 5.4: the undecidability frontier, made executable.

Satisfiability of a Datalog query w.r.t. ``{not}``-ic's is undecidable:
the appendix reduces two-counter-machine halting to it.  This script
builds the reduction for a halting machine and a looping machine and
shows:

* the halting machine's run encodes into an EDB that satisfies every
  generated ic, and the program derives ``halt`` on it;
* tampering with the encoding (a wrong transition) violates the ic's;
* the looping machine admits no bounded-size witness (the bounded
  semi-decision procedure stays silent — as it must, forever).

Run:  python examples/undecidability.py
"""

from repro.constraints import database_satisfies, violations
from repro.datalog import evaluate
from repro.machines import (
    build_reduction,
    consistent_database_for,
    counting_machine,
    looping_machine,
)


def main() -> None:
    machine = counting_machine(3)
    trace = machine.trace_if_halts(100)
    assert trace is not None
    print("== Halting machine (increment counter1 three times) ==")
    print("trace:", [(c.time, c.counter1, c.counter2, c.state) for c in trace])

    artifacts = build_reduction(machine)
    print(f"\nreduction: {len(artifacts.program.rules)} rules, "
          f"{len(artifacts.constraints)} integrity constraints")
    print("\n== The program (appendix) ==")
    print(artifacts.program)
    print("\n== A few of the ic's ==")
    for ic in artifacts.constraints[:6]:
        print(ic)
    print("  ...")

    database = consistent_database_for(machine, trace)
    print(f"\nencoded run: {database.size()} EDB facts")
    print("database satisfies all ic's:", database_satisfies(artifacts.constraints, database))
    result = evaluate(artifacts.program, database)
    print("halt() derived:", len(result.relation("halt")) > 0)
    print("reach times:", sorted(t for (t,) in result.rows("reach")))

    print("\n== Tampering: wrong state at time 2 ==")
    tampered = consistent_database_for(machine, trace)
    tampered.add_row("cnfg", (2, 2, 0, 1))
    fired = [ic for ic in artifacts.constraints if violations(ic, tampered)]
    print(f"{len(fired)} constraint(s) fire, e.g.:")
    print(fired[0])

    print("\n== Looping machine ==")
    loop = looping_machine()
    print("halts within 100 steps:", loop.halts(100))
    loop_artifacts = build_reduction(loop)
    print(
        "the reduction is identical in shape "
        f"({len(loop_artifacts.constraints)} ic's) — but no finite EDB "
        "consistent with the ic's can make halt() derivable, and no "
        "algorithm can decide this in general (Theorem 5.4)."
    )


if __name__ == "__main__":
    main()
