#!/usr/bin/env python3
"""Quickstart: semantic query optimization on Example 3.1 of the paper.

The program computes paths between start and end points; the integrity
constraint says an end point always dominates every start point.  The
optimizer discovers the residue ``Y <= X`` and adds the selection
``Y > X`` to the goodPath rule — on databases satisfying the constraint
the answers are identical, but the evaluation does less work.

Run:  python examples/quickstart.py
"""

from repro import Database, evaluate, optimize, parse_constraints, parse_facts, parse_program
from repro.constraints import database_satisfies

PROGRAM = parse_program(
    """
    path(X, Y) :- step(X, Y).
    path(X, Y) :- step(X, Z), path(Z, Y).
    goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
    """,
    query="goodPath",
)

CONSTRAINTS = parse_constraints(":- startPoint(X), endPoint(Y), Y <= X.")

# Every end point must exceed every start point, or the database would
# violate the constraint (Theorem 4.1 speaks only of consistent ones).
DATABASE = Database(
    parse_facts(
        """
        step(1, 2). step(2, 3). step(3, 4). step(4, 5). step(3, 6).
        startPoint(1). startPoint(3).
        endPoint(5).   endPoint(6).
        """
    )
)


def main() -> None:
    print("== Original program ==")
    print(PROGRAM)
    print("\n== Integrity constraints ==")
    for ic in CONSTRAINTS:
        print(ic)

    assert database_satisfies(CONSTRAINTS, DATABASE)

    report = optimize(PROGRAM, CONSTRAINTS)
    print("\n== Rewritten program (note the added selection Y > X) ==")
    print(report.program)

    original = evaluate(PROGRAM, DATABASE)
    rewritten = report.evaluation(DATABASE)
    print("\n== Answers ==")
    print("original :", sorted(original.query_rows()))
    print("rewritten:", sorted(rewritten.query_rows()))
    assert original.query_rows() == rewritten.query_rows()

    print("\n== Work (join rows scanned) ==")
    print(f"original : {original.stats.rows_scanned}")
    print(f"rewritten: {rewritten.stats.rows_scanned}")


if __name__ == "__main__":
    main()
