#!/usr/bin/env python3
"""Semantic optimization for data integration (the paper's motivation).

The paper highlights applications "that require integrating multiple
heterogeneous sources of data" [CGMH+94, LSK95].  Here two airline
feeds (``segment_a``, ``segment_b``) are unioned into legs and composed
into routes; the source-level constraints — budget airline ``b`` never
departs a hub right after an ``a`` leg lands there, and fares are
positive — let the optimizer specialize the route predicate and prune
composition orders the sources can never produce.

Run:  python examples/data_integration.py
"""

from repro import evaluate, optimize
from repro.constraints import database_satisfies
from repro.workloads import flight_database, flight_routes


def main() -> None:
    program, constraints = flight_routes()
    print("== Mediator program ==")
    print(program)
    print("\n== Source constraints ==")
    for ic in constraints:
        print(ic)

    report = optimize(program, constraints)
    print("\n== Optimization summary ==")
    print(report.summary())
    print("\n== Rewritten program ==")
    print(report.program)

    database = flight_database(cities=30, segments=120, hubs=(0, 1, 2), seed=4)
    assert database_satisfies(constraints, database)
    original = evaluate(program, database)
    rewritten = report.evaluation(database)
    assert original.query_rows() == rewritten.query_rows()
    print("\n== Results ==")
    print(f"trips found      : {sorted(original.query_rows())}")
    print(f"original scanned : {original.stats.rows_scanned}")
    print(f"rewritten scanned: {rewritten.stats.rows_scanned}")
    print(
        "\nNote: when constraints prune little, specialization can add "
        "work — semantic optimization is a planning decision, not a free "
        "lunch (see EXPERIMENTS.md, E3/E10)."
    )


if __name__ == "__main__":
    main()
