"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP-517 editable installs (``pip install -e .``) cannot build a wheel.
``python setup.py develop`` installs an egg-link editable package with
plain setuptools instead.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
