"""Two-counter (Minsky) machines: the undecidability substrate.

The appendix of the paper reduces the halting problem of two-counter
machines to satisfiability of a Datalog query w.r.t. ``{not}``-ic's
(Theorem 5.4).  This module provides the machine model and a simulator;
:mod:`repro.machines.reduction` builds the paper's construction on top.

A machine has states ``0 .. num_states-1`` with a distinguished halting
state, two counters starting at zero, and a deterministic transition
function keyed by (state, counter1 == 0, counter2 == 0).  Each
transition names a successor state and one operation per counter
(increment, decrement or leave).  Two-counter machines are Turing
complete, hence halting is undecidable — which is exactly the lever of
Theorems 5.3-5.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = [
    "Op",
    "Transition",
    "TwoCounterMachine",
    "Configuration",
    "counting_machine",
    "looping_machine",
    "busy_machine",
]

#: Counter operations.
INC, DEC, NOP = "inc", "dec", "nop"
Op = str


@dataclass(frozen=True)
class Transition:
    """One transition: successor state and per-counter operations."""

    next_state: int
    op1: Op
    op2: Op

    def __post_init__(self) -> None:
        for op in (self.op1, self.op2):
            if op not in (INC, DEC, NOP):
                raise ValueError(f"unknown counter operation {op!r}")


@dataclass(frozen=True)
class Configuration:
    """A machine configuration: time step, counters, state."""

    time: int
    counter1: int
    counter2: int
    state: int


@dataclass(frozen=True)
class TwoCounterMachine:
    """A deterministic two-counter machine.

    ``transitions`` maps ``(state, c1_is_zero, c2_is_zero)`` to a
    :class:`Transition`.  Missing keys mean the machine is *stuck* (it
    does not halt).  ``halt_state`` has no outgoing transitions.
    """

    num_states: int
    halt_state: int
    transitions: Mapping[tuple[int, bool, bool], Transition]

    def __post_init__(self) -> None:
        if not 0 <= self.halt_state < self.num_states:
            raise ValueError("halt state out of range")
        for (state, _, _), transition in self.transitions.items():
            if state == self.halt_state:
                raise ValueError("the halting state must have no transitions")
            if not 0 <= state < self.num_states:
                raise ValueError(f"state {state} out of range")
            if not 0 <= transition.next_state < self.num_states:
                raise ValueError(f"state {transition.next_state} out of range")

    def step(self, config: Configuration) -> Configuration | None:
        """One deterministic step; None when stuck or halted."""
        if config.state == self.halt_state:
            return None
        key = (config.state, config.counter1 == 0, config.counter2 == 0)
        transition = self.transitions.get(key)
        if transition is None:
            return None
        counter1 = _apply(config.counter1, transition.op1)
        counter2 = _apply(config.counter2, transition.op2)
        if counter1 < 0 or counter2 < 0:
            return None  # decrement of zero: stuck
        return Configuration(config.time + 1, counter1, counter2, transition.next_state)

    def run(self, max_steps: int) -> list[Configuration]:
        """The trace from the initial configuration, up to ``max_steps``."""
        trace = [Configuration(0, 0, 0, 0)]
        while len(trace) <= max_steps:
            nxt = self.step(trace[-1])
            if nxt is None:
                break
            trace.append(nxt)
        return trace

    def halts(self, max_steps: int) -> bool | None:
        """True/False when decided within the budget, None when unknown."""
        trace = self.run(max_steps)
        if trace[-1].state == self.halt_state:
            return True
        if self.step(trace[-1]) is None:
            return False  # stuck without halting
        return None  # budget exhausted

    def trace_if_halts(self, max_steps: int) -> list[Configuration] | None:
        trace = self.run(max_steps)
        return trace if trace[-1].state == self.halt_state else None


def _apply(value: int, op: Op) -> int:
    if op == INC:
        return value + 1
    if op == DEC:
        return value - 1
    return value


# ----------------------------------------------------------------------
# Canonical example machines
# ----------------------------------------------------------------------
def counting_machine(target: int = 3) -> TwoCounterMachine:
    """Increment counter 1 ``target`` times, then halt.

    States: ``0 .. target`` count progress; ``target + 1`` is the halt
    state, entered as soon as state ``target`` is reached.
    """
    transitions: dict[tuple[int, bool, bool], Transition] = {}
    halt = target + 1
    for state in range(target):
        for c1_zero in (True, False):
            for c2_zero in (True, False):
                transitions[(state, c1_zero, c2_zero)] = Transition(state + 1, INC, NOP)
    for c1_zero in (True, False):
        for c2_zero in (True, False):
            transitions[(target, c1_zero, c2_zero)] = Transition(halt, NOP, NOP)
    return TwoCounterMachine(halt + 1, halt, transitions)


def looping_machine() -> TwoCounterMachine:
    """Increment counter 1 forever — never halts."""
    transitions = {
        (0, True, True): Transition(0, INC, NOP),
        (0, False, True): Transition(0, INC, NOP),
        (0, True, False): Transition(0, INC, NOP),
        (0, False, False): Transition(0, INC, NOP),
    }
    return TwoCounterMachine(2, 1, transitions)


def busy_machine(rounds: int = 2) -> TwoCounterMachine:
    """Transfer counter 1 to counter 2 and back, ``rounds`` times, then halt.

    Exercises increments, decrements and zero tests together; the run
    length grows with ``rounds``.
    """
    # State 0: pump counter1 up to `rounds`.
    # State 1: move counter1 into counter2 (dec c1 / inc c2).
    # State 2: move counter2 back into counter1.
    # State 3: halt.
    transitions: dict[tuple[int, bool, bool], Transition] = {}
    pump = rounds
    # Use counter2 as the pump budget tracker via states instead: simpler —
    # states 0..rounds-1 pump, then hand over to the transfer loop.
    machine_states = rounds + 3
    halt = machine_states - 1
    transfer_a = rounds  # dec c1 / inc c2 until c1 == 0
    transfer_b = rounds + 1  # dec c2 / inc c1 until c2 == 0
    for state in range(rounds):
        for c1_zero in (True, False):
            for c2_zero in (True, False):
                transitions[(state, c1_zero, c2_zero)] = Transition(state + 1, INC, NOP)
    for c2_zero in (True, False):
        transitions[(transfer_a, False, c2_zero)] = Transition(transfer_a, DEC, INC)
        transitions[(transfer_a, True, c2_zero)] = Transition(transfer_b, NOP, NOP)
    for c1_zero in (True, False):
        transitions[(transfer_b, c1_zero, False)] = Transition(transfer_b, INC, DEC)
        transitions[(transfer_b, c1_zero, True)] = Transition(halt, NOP, NOP)
    return TwoCounterMachine(machine_states, halt, transitions)
