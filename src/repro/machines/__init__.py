"""Two-counter machines and the Theorem 5.4 undecidability reduction."""

from .reduction import ReductionArtifacts, build_reduction, consistent_database_for
from .reduction_theta import build_reduction_theta, theta_database_for
from .two_counter import (
    Configuration,
    Transition,
    TwoCounterMachine,
    busy_machine,
    counting_machine,
    looping_machine,
)

__all__ = [
    "ReductionArtifacts",
    "build_reduction",
    "consistent_database_for",
    "build_reduction_theta",
    "theta_database_for",
    "Configuration",
    "Transition",
    "TwoCounterMachine",
    "busy_machine",
    "counting_machine",
    "looping_machine",
]
