"""The Theorem 5.3 shape: 2-counter halting with ``{!=}``-ic's.

Theorem 5.3 (via [LMSS93, vdM92b]) states that satisfiability is
already undecidable when the ic's may use ``!=`` — no negated EDB atoms
needed.  This module builds that variant of the appendix construction:
the ``dom``/``eq``/``neq`` apparatus of Theorem 5.4 (which exists to
*simulate* disequality with negated EDB atoms) collapses back into
plain ``!=`` order atoms:

* ``succ`` is forced functional and injective with ``!=``;
* ``zero`` is forced unique;
* configurations are unique per time and transition-correct, with
  "wrong value" expressed as ``!=`` against the forced value.

As in Theorem 5.4, the honest encoding of a halting run satisfies every
ic and derives ``halt()``; tampered encodings are rejected.  The ``!=``
atoms relate variables of different body atoms, i.e. they are
*non-local* — exactly the frontier where Theorem 5.3 places
undecidability.
"""

from __future__ import annotations

from typing import Sequence

from ..constraints.integrity import IntegrityConstraint
from ..datalog.atoms import Atom, Literal, OrderAtom
from ..datalog.database import Database
from ..datalog.parser import parse_constraints
from ..datalog.terms import Variable
from .reduction import ReductionArtifacts, _reachability_program, _state_chain
from .two_counter import DEC, INC, NOP, Configuration, TwoCounterMachine

__all__ = ["build_reduction_theta", "theta_database_for"]


def _structural_theta_constraints() -> list[IntegrityConstraint]:
    return parse_constraints(
        """
        % succ is a partial injection (sound successor representation)
        :- succ(X, Y), succ(X, Z), Y != Z.
        :- succ(Y, X), succ(Z, X), Y != Z.
        :- succ(X, X).

        % zero is unique and has no predecessor
        :- zero(X), zero(Y), X != Y.
        :- succ(X, Y), zero(Y).

        % at most one configuration per time instant
        :- cnfg(T, C1, C2, S), cnfg(T, D1, D2, S1), C1 != D1.
        :- cnfg(T, C1, C2, S), cnfg(T, D1, D2, S1), C2 != D2.
        :- cnfg(T, C1, C2, S), cnfg(T, D1, D2, S1), S != S1.

        % the configuration at time zero is all zeros
        :- cnfg(T, C1, C2, S), zero(T), zero(Z), C1 != Z.
        :- cnfg(T, C1, C2, S), zero(T), zero(Z), C2 != Z.
        :- cnfg(T, C1, C2, S), zero(T), zero(Z), S != Z.
        """
    )


def _transition_theta_constraints(
    machine: TwoCounterMachine,
) -> list[IntegrityConstraint]:
    T, T1 = Variable("T"), Variable("T1")
    C1, C2, S = Variable("C1"), Variable("C2"), Variable("S")
    D1, D2, S1 = Variable("D1"), Variable("D2"), Variable("S1")
    Z = Variable("Z")
    constraints: list[IntegrityConstraint] = []
    for (state, c1_zero, c2_zero), transition in sorted(machine.transitions.items()):
        preconditions: list = [
            Literal(Atom("cnfg", (T, C1, C2, S))),
            Literal(Atom("cnfg", (T1, D1, D2, S1))),
            Literal(Atom("succ", (T, T1))),
        ]
        preconditions += _state_chain(state, S, "s")
        # Counter sign tests, via != against the unique zero.
        preconditions.append(Literal(Atom("zero", (Z,))))
        if c1_zero:
            preconditions.append(OrderAtom(C1, "=", Z))
        else:
            preconditions.append(OrderAtom(C1, "!=", Z))
        if c2_zero:
            preconditions.append(OrderAtom(C2, "=", Z))
        else:
            preconditions.append(OrderAtom(C2, "!=", Z))
        # Wrong successor state.
        S2 = Variable("S2")
        constraints.append(
            IntegrityConstraint(
                tuple(preconditions)
                + tuple(_state_chain(transition.next_state, S2, "t"))
                + (OrderAtom(S1, "!=", S2),)
            )
        )
        # Wrong counter updates, via a succ witness and !=.
        for counter, counter_next, op, tag in (
            (C1, D1, transition.op1, "u"),
            (C2, D2, transition.op2, "v"),
        ):
            witness = Variable(f"{tag}W")
            if op == INC:
                extra = (
                    Literal(Atom("succ", (counter, witness))),
                    OrderAtom(counter_next, "!=", witness),
                )
            elif op == DEC:
                extra = (
                    Literal(Atom("succ", (witness, counter))),
                    OrderAtom(counter_next, "!=", witness),
                )
            else:
                extra = (OrderAtom(counter, "!=", counter_next),)
            constraints.append(IntegrityConstraint(tuple(preconditions) + extra))
    return constraints


def build_reduction_theta(machine: TwoCounterMachine) -> ReductionArtifacts:
    """Build the Theorem 5.3 (``{!=}``-ic) artifacts for a machine.

    The program is the same ``reach``/``halt`` program as Theorem 5.4's;
    only the ic's differ (order atoms instead of negated EDB atoms).
    """
    constraints = tuple(
        _structural_theta_constraints() + _transition_theta_constraints(machine)
    )
    return ReductionArtifacts(machine, _reachability_program(machine), constraints)


def theta_database_for(
    machine: TwoCounterMachine, trace: Sequence[Configuration]
) -> Database:
    """Encode a halting run for the ``{!=}`` variant (no eq/neq/dom)."""
    largest = machine.num_states - 1
    for config in trace:
        largest = max(largest, config.time, config.counter1, config.counter2, config.state)
    rows = {
        "zero": [(0,)],
        "succ": [(i, i + 1) for i in range(largest)],
        "cnfg": [(c.time, c.counter1, c.counter2, c.state) for c in trace],
    }
    return Database.from_rows(rows)
