"""The Theorem 5.4 construction: 2-counter halting as satisfiability.

Given a two-counter machine, build the Datalog program and the set of
``{not}``-ic's from the paper's appendix, such that the query predicate
``halt`` is satisfiable w.r.t. the ic's iff the machine halts.

EDB predicates:

* ``succ(X, Y)``, ``zero(X)`` — a (sound, not necessarily complete)
  representation of the non-negative integers;
* ``cnfg(T, C1, C2, S)`` — machine configurations: time, counters, state;
* ``dom(X)`` — the active domain;
* ``eq(X, Y)`` / ``neq(X, Y)`` — an EDB rendering of equality and of
  "separated by at least one successor step", replacing the ``!=`` of
  the Theorem 5.3 proof with negated-EDB machinery.

The ic's are transcribed from the appendix; counter updates use negated
``succ`` atoms directly (e.g. incrementing is checked with
``not succ(C1, C1')``), the natural encoding in the ``{not}`` setting.
The transition ic's are generated per machine transition, with states
encoded as chains ``zero(Z), succ(Z, V1), ..., succ(V_{j-1}, S)``.

These ic's contain *non-local* negated atoms (e.g. the closure of
``cnfg`` under ``eq``), which is exactly why this fragment is
undecidable: the query-tree algorithm does not apply, and no algorithm
can (Theorem 5.4).  The executable evidence is
:func:`consistent_database_for`, which encodes a halting run as an EDB
that satisfies every ic and makes the program derive ``halt``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..constraints.integrity import IntegrityConstraint
from ..datalog.atoms import Atom, Literal, OrderAtom
from ..datalog.database import Database
from ..datalog.parser import parse_constraints
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable
from .two_counter import DEC, INC, NOP, Configuration, TwoCounterMachine

__all__ = ["ReductionArtifacts", "build_reduction", "consistent_database_for"]


@dataclass(frozen=True)
class ReductionArtifacts:
    """The program and ic's produced by the Theorem 5.4 construction."""

    machine: TwoCounterMachine
    program: Program
    constraints: tuple[IntegrityConstraint, ...]


def _state_chain(state: int, terminal: Variable, prefix: str) -> list[Literal]:
    """The ``S = j`` shorthand: zero(Z), succ(Z, V1), ..., succ(., S)."""
    if state == 0:
        return [Literal(Atom("zero", (terminal,)))]
    items: list[Literal] = []
    previous = Variable(f"{prefix}Z")
    items.append(Literal(Atom("zero", (previous,))))
    for step in range(1, state + 1):
        current = terminal if step == state else Variable(f"{prefix}V{step}")
        items.append(Literal(Atom("succ", (previous, current))))
        previous = current
    return items


def _structural_constraints() -> list[IntegrityConstraint]:
    """The machine-independent ic's of the appendix."""
    return parse_constraints(
        """
        % the domain covers every constant used by succ, zero and cnfg
        :- succ(X, Y), not dom(X).
        :- succ(X, Y), not dom(Y).
        :- zero(X), not dom(X).
        :- cnfg(T, C1, C2, S), not dom(T).
        :- cnfg(T, C1, C2, S), not dom(C1).
        :- cnfg(T, C1, C2, S), not dom(C2).
        :- cnfg(T, C1, C2, S), not dom(S).

        % eq is reflexive on dom, symmetric and transitively closed
        :- dom(X), not eq(X, X).
        :- eq(X, Y), not eq(Y, X).
        :- eq(X, Z), eq(Z, Y), not eq(X, Y).

        % all zeros are equal; nothing equal to a zero is a non-zero
        :- zero(X), zero(Y), not eq(X, Y).
        :- zero(X), eq(X, Y), not zero(Y).

        % neq contains (eq ; succ ; eq) and is transitively closed
        :- eq(X, X1), succ(X1, Y1), eq(Y1, Y), not neq(X, Y).
        :- eq(X, X1), neq(X1, Z), eq(Z, Z1), neq(Z1, Y1), eq(Y1, Y), not neq(X, Y).

        % every two domain elements are equal or not equal, never both.
        % neq is kept *directed* (the strict successor order): the paper's
        % symmetric reading is unsatisfiable on two or more ordered
        % elements, because neq(a,b), neq(b,a) would compose under the
        % transitivity ic to the forbidden neq(a,a).  Totality therefore
        % accepts either orientation.
        :- eq(X, Y), neq(X, Y).
        :- dom(X), dom(Y), not eq(X, Y), not neq(X, Y), not neq(Y, X).

        % successors and predecessors of equal elements are equal
        % (checked in both neq orientations)
        :- succ(X, Y), succ(X1, Z), eq(X, X1), neq(Y, Z).
        :- succ(X, Y), succ(X1, Z), eq(X, X1), neq(Z, Y).
        :- succ(Y, X), succ(Z, X1), eq(X, X1), neq(Y, Z).
        :- succ(Y, X), succ(Z, X1), eq(X, X1), neq(Z, Y).

        % a zero has no predecessor
        :- succ(X, Y), zero(Y).

        % configurations at time zero have zeros everywhere
        :- cnfg(T, C1, C2, S), zero(T), not zero(C1).
        :- cnfg(T, C1, C2, S), zero(T), not zero(C2).
        :- cnfg(T, C1, C2, S), zero(T), not zero(S).

        % cnfg is closed under equality
        :- cnfg(T, C1, C2, S), eq(T, T1), eq(C1, D1), eq(C2, D2), eq(S, S1),
           not cnfg(T1, D1, D2, S1).
        """
    )


def _transition_constraints(machine: TwoCounterMachine) -> list[IntegrityConstraint]:
    """Per-transition ic's: state and counter updates must be correct."""
    T, T1 = Variable("T"), Variable("T1")
    C1, C2, S = Variable("C1"), Variable("C2"), Variable("S")
    D1, D2, S1 = Variable("D1"), Variable("D2"), Variable("S1")
    constraints: list[IntegrityConstraint] = []
    for (state, c1_zero, c2_zero), transition in sorted(machine.transitions.items()):
        preconditions: list = [
            Literal(Atom("cnfg", (T, C1, C2, S))),
            Literal(Atom("cnfg", (T1, D1, D2, S1))),
            Literal(Atom("succ", (T, T1))),
        ]
        preconditions += _state_chain(state, S, "s")
        preconditions.append(
            Literal(Atom("zero", (C1,)), positive=c1_zero)
        )
        preconditions.append(
            Literal(Atom("zero", (C2,)), positive=c2_zero)
        )
        # Wrong successor state: S1 differs from the encoding of next_state.
        # neq is directed, so both orientations are checked.
        S2 = Variable("S2")
        state_check = _state_chain(transition.next_state, S2, "t")
        for left, right in ((S1, S2), (S2, S1)):
            constraints.append(
                IntegrityConstraint(
                    tuple(preconditions)
                    + tuple(state_check)
                    + (Literal(Atom("neq", (left, right))),)
                )
            )
        # Wrong counter updates.
        for counter, counter_next, op in ((C1, D1, transition.op1), (C2, D2, transition.op2)):
            if op == INC:
                violations = [Literal(Atom("succ", (counter, counter_next)), positive=False)]
            elif op == DEC:
                violations = [Literal(Atom("succ", (counter_next, counter)), positive=False)]
            else:
                violations = [
                    Literal(Atom("neq", (counter, counter_next))),
                    Literal(Atom("neq", (counter_next, counter))),
                ]
            for violation in violations:
                constraints.append(
                    IntegrityConstraint(tuple(preconditions) + (violation,))
                )
    return constraints


def _reachability_program(machine: TwoCounterMachine) -> Program:
    """The appendix's program: reach/1 plus the halt query."""
    T, T1 = Variable("T"), Variable("T1")
    C1, C2, S = Variable("C1"), Variable("C2"), Variable("S")
    D1, D2, S1 = Variable("D1"), Variable("D2"), Variable("S1")
    rules = [
        Rule(
            Atom("reach", (T,)),
            (Literal(Atom("cnfg", (T, C1, C2, S))), Literal(Atom("zero", (T,)))),
        ),
        Rule(
            Atom("reach", (T1,)),
            (
                Literal(Atom("reach", (T,))),
                Literal(Atom("succ", (T, T1))),
                Literal(Atom("cnfg", (T1, D1, D2, S1))),
            ),
        ),
        Rule(
            Atom("halt", ()),
            tuple(
                [Literal(Atom("reach", (T,))), Literal(Atom("cnfg", (T, C1, C2, S)))]
                + _state_chain(machine.halt_state, S, "h")
            ),
        ),
    ]
    return Program(rules, "halt")


def build_reduction(machine: TwoCounterMachine) -> ReductionArtifacts:
    """Build the Theorem 5.4 artifacts for a machine."""
    constraints = tuple(_structural_constraints() + _transition_constraints(machine))
    return ReductionArtifacts(machine, _reachability_program(machine), constraints)


def consistent_database_for(
    machine: TwoCounterMachine, trace: Sequence[Configuration]
) -> Database:
    """Encode a halting run as an EDB satisfying all ic's.

    The domain is ``0 .. N`` for the largest value occurring in the
    trace (times, counters, states); ``succ`` is the true successor chain,
    ``eq`` the identity, ``neq`` every ordered pair of distinct values.
    """
    largest = machine.num_states - 1
    for config in trace:
        largest = max(largest, config.time, config.counter1, config.counter2, config.state)
    rows: dict[str, list[tuple]] = {
        "zero": [(0,)],
        "dom": [(i,) for i in range(largest + 1)],
        "succ": [(i, i + 1) for i in range(largest)],
        "eq": [(i, i) for i in range(largest + 1)],
        "neq": [
            (i, j)
            for i in range(largest + 1)
            for j in range(largest + 1)
            if i < j
        ],
        "cnfg": [
            (c.time, c.counter1, c.counter2, c.state) for c in trace
        ],
    }
    return Database.from_rows(rows)
