"""Bottom-up evaluation: naive and semi-naive, with order atoms and negation.

The engine evaluates a :class:`~repro.datalog.program.Program` over a
:class:`~repro.datalog.database.Database` of EDB facts:

* IDB predicates are computed SCC by SCC in topological order of the
  dependency graph; within a recursive SCC, semi-naive (delta) iteration
  is used.
* Each rule is evaluated by a backtracking join.  The join order is
  chosen greedily: filters (order atoms, negated EDB literals) run as
  soon as their variables are bound; positive literals are chosen by the
  number of bound argument positions.  Probes go through the lazily
  indexed :meth:`Relation.probe`.
* :class:`EvaluationStats` counts rule firings, index probes, rows
  scanned and derived facts — the "join work" measure the benchmarks
  report when comparing a program against its semantically optimized
  rewriting.
* The engine is instrumented with the tracer of
  :mod:`repro.observability.trace`: an ``evaluate`` span wraps the run,
  each SCC gets an ``scc`` span, each semi-naive round an ``iteration``
  event, and every rule execution a ``rule`` span carrying its wall
  time plus the per-rule deltas of the work counters (from which the
  profiler derives index-probe hit rates).  With the default disabled
  tracer none of this fires — the hot path pays one boolean check.
* With ``provenance=True`` the engine records, for each derived fact,
  the first rule instantiation that produced it; :func:`derivation_tree`
  then reconstructs a ground derivation tree in the paper's sense (goal
  nodes alternating with rule nodes, EDB literals at the leaves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..observability.trace import Tracer, get_tracer
from .atoms import Atom, Literal, OrderAtom, evaluate_comparison
from .database import Database, Relation, Row
from .program import Program
from .rules import Rule
from .terms import Constant, Variable

__all__ = [
    "EvaluationStats",
    "EvaluationResult",
    "DerivationNode",
    "evaluate",
    "evaluate_query",
    "derivation_tree",
]


@dataclass
class EvaluationStats:
    """Work counters accumulated during one evaluation."""

    rule_firings: int = 0
    probes: int = 0
    rows_scanned: int = 0
    facts_derived: int = 0
    iterations: int = 0

    def merge(self, other: "EvaluationStats") -> None:
        self.rule_firings += other.rule_firings
        self.probes += other.probes
        self.rows_scanned += other.rows_scanned
        self.facts_derived += other.facts_derived
        self.iterations += other.iterations

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (benchmark ``extra_info`` payloads)."""
        return {
            "rule_firings": self.rule_firings,
            "probes": self.probes,
            "rows_scanned": self.rows_scanned,
            "facts_derived": self.facts_derived,
            "iterations": self.iterations,
        }

    def compare(self, other: "EvaluationStats") -> dict[str, float]:
        """Per-counter ratios ``other / self`` (1.0 when both are zero).

        The benchmarks report these as work ratios of a transformed
        program against its baseline: a ratio below 1.0 on
        ``facts_derived`` means the transformation derived fewer facts.
        """
        ratios: dict[str, float] = {}
        mine = self.as_dict()
        theirs = other.as_dict()
        for key, value in mine.items():
            if value == 0:
                ratios[key] = 1.0 if theirs[key] == 0 else float("inf")
            else:
                ratios[key] = theirs[key] / value
        return ratios


#: A ground fact key: (predicate, row of values).
Fact = tuple[str, Row]


@dataclass
class EvaluationResult:
    """The computed IDB plus statistics and (optionally) provenance."""

    idb: dict[str, Relation]
    stats: EvaluationStats
    program: Program
    database: Database
    provenance: dict[Fact, tuple[Rule, tuple[Fact, ...]]] | None = None

    def relation(self, predicate: str) -> Relation:
        """The computed relation for an IDB predicate (empty if none derived)."""
        rel = self.idb.get(predicate)
        if rel is not None:
            return rel
        try:
            return Relation(self.program.arity_of(predicate))
        except KeyError:
            raise KeyError(f"unknown IDB predicate {predicate}") from None

    def rows(self, predicate: str) -> frozenset[Row]:
        return self.relation(predicate).rows()

    def query_rows(self) -> frozenset[Row]:
        if self.program.query is None:
            raise ValueError("program has no query predicate")
        return self.rows(self.program.query)


class _RuleJoin:
    """A compiled join plan for one rule with an optional delta subgoal."""

    def __init__(self, rule: Rule, delta_index: int | None):
        self.rule = rule
        self.delta_index = delta_index
        self.plan = self._order_body(rule, delta_index)

    @staticmethod
    def _order_body(rule: Rule, delta_index: int | None) -> list[tuple[object, bool]]:
        """Greedy static join ordering.

        Returns a list of (body item, is_delta) pairs.  The delta literal
        (when present) is placed first; after every positive literal, all
        newly evaluable filters are placed immediately.
        """
        positives = []
        for idx, item in enumerate(rule.body):
            if isinstance(item, Literal) and item.positive:
                positives.append((idx, item))
        filters = [
            item
            for item in rule.body
            if isinstance(item, OrderAtom) or (isinstance(item, Literal) and not item.positive)
        ]
        plan: list[tuple[object, bool]] = []
        bound: set[Variable] = set()
        remaining_pos = positives[:]
        remaining_filters = filters[:]

        def flush_filters() -> None:
            progressing = True
            while progressing:
                progressing = False
                for item in list(remaining_filters):
                    if item.variables() <= bound:
                        plan.append((item, False))
                        remaining_filters.remove(item)
                        progressing = True

        if delta_index is not None:
            for pair in remaining_pos:
                if pair[0] == delta_index:
                    remaining_pos.remove(pair)
                    plan.append((pair[1], True))
                    bound |= pair[1].variables()
                    break
        flush_filters()
        while remaining_pos:
            best = max(
                remaining_pos,
                key=lambda pair: (
                    sum(
                        1
                        for arg in pair[1].args
                        if isinstance(arg, Constant) or arg in bound
                    ),
                    -len(pair[1].variables() - bound),
                ),
            )
            remaining_pos.remove(best)
            plan.append((best[1], False))
            bound |= best[1].variables()
            flush_filters()
        flush_filters()
        if remaining_filters:
            # Safety guarantees this never happens for safe rules.
            raise ValueError(f"rule {rule} has filters with unbound variables")
        return plan


def _probe_literal(
    literal: Literal,
    env: dict[Variable, object],
    relation: Relation,
    stats: EvaluationStats,
) -> Iterable[dict[Variable, object]]:
    """Yield extended environments matching ``literal`` against ``relation``."""
    bound_positions: list[int] = []
    key_values: list[object] = []
    for i, arg in enumerate(literal.args):
        if isinstance(arg, Constant):
            bound_positions.append(i)
            key_values.append(arg.value)
        elif arg in env:
            bound_positions.append(i)
            key_values.append(env[arg])
    stats.probes += 1
    rows = relation.probe(tuple(bound_positions), tuple(key_values))
    for row in rows:
        stats.rows_scanned += 1
        extended = dict(env)
        consistent = True
        for i, arg in enumerate(literal.args):
            if isinstance(arg, Constant):
                continue
            current = extended.get(arg)
            if current is None:
                extended[arg] = row[i]
            elif current != row[i]:
                consistent = False
                break
        if consistent:
            yield extended


def _check_filter(item: object, env: Mapping[Variable, object], edb_lookup) -> bool:
    """Evaluate a fully bound order atom or negated literal."""
    if isinstance(item, OrderAtom):
        left = item.left.value if isinstance(item.left, Constant) else env[item.left]
        right = item.right.value if isinstance(item.right, Constant) else env[item.right]
        return evaluate_comparison(left, right, item.op)
    assert isinstance(item, Literal) and not item.positive
    row = tuple(
        arg.value if isinstance(arg, Constant) else env[arg] for arg in item.args
    )
    return not edb_lookup(item.predicate, row, len(row))


def _run_join(
    join: _RuleJoin,
    env: dict[Variable, object],
    step: int,
    relation_of,
    delta_relation: Relation | None,
    edb_lookup,
    stats: EvaluationStats,
    out: list[dict[Variable, object]],
) -> None:
    """Depth-first execution of the compiled plan, appending result envs."""
    if step == len(join.plan):
        out.append(env)
        return
    item, is_delta = join.plan[step]
    if isinstance(item, Literal) and item.positive:
        relation = delta_relation if is_delta else relation_of(item.predicate, item.atom.arity)
        for extended in _probe_literal(item, env, relation, stats):
            _run_join(join, extended, step + 1, relation_of, delta_relation, edb_lookup, stats, out)
    else:
        if _check_filter(item, env, edb_lookup):
            _run_join(join, env, step + 1, relation_of, delta_relation, edb_lookup, stats, out)


def _sccs(graph: Mapping[str, set[str]]) -> list[list[str]]:
    """Tarjan's strongly connected components, returned in topological order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    components: list[list[str]] = []

    def strongconnect(node: str) -> None:
        work = [(node, iter(sorted(graph.get(node, ()))))]
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[current] = min(low[current], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[current])
            if low[current] == index[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                components.append(component)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return components


def evaluate(
    program: Program,
    database: Database,
    *,
    provenance: bool = False,
    max_iterations: int | None = None,
    strategy: str = "seminaive",
    tracer: Tracer | None = None,
) -> EvaluationResult:
    """Evaluate ``program`` bottom-up over ``database``.

    Returns an :class:`EvaluationResult` with the full IDB.  With
    ``provenance=True`` each derived fact remembers the first rule
    instantiation that produced it (for :func:`derivation_tree`).
    ``max_iterations`` bounds semi-naive rounds per SCC (used by tests
    exploring non-terminating hypotheticals; normal evaluation always
    terminates).

    ``strategy`` selects ``"seminaive"`` (default, delta-driven) or
    ``"naive"`` (re-evaluate every rule against the full relations each
    round) — the naive mode exists as a correctness oracle and as the
    baseline in the engine benchmarks.

    ``tracer`` overrides the globally installed tracer (see
    :func:`repro.observability.trace.tracing`); the default disabled
    tracer makes instrumentation free.
    """
    if tracer is None:
        tracer = get_tracer()
    if strategy == "naive":
        return _evaluate_naive(program, database, provenance=provenance, tracer=tracer)
    if strategy != "seminaive":
        raise ValueError(f"unknown strategy {strategy!r}")
    trace_on = tracer.enabled
    stats = EvaluationStats()
    idb: dict[str, Relation] = {
        pred: Relation(program.arity_of(pred)) for pred in program.idb_predicates
    }
    prov: dict[Fact, tuple[Rule, tuple[Fact, ...]]] | None = {} if provenance else None
    idb_preds = program.idb_predicates

    def relation_of(predicate: str, arity: int) -> Relation:
        if predicate in idb_preds:
            return idb[predicate]
        return database.relation(predicate, arity)

    def edb_lookup(predicate: str, row: Row, arity: int) -> bool:
        return row in database.relation(predicate, arity)

    def record(rule: Rule, env: dict[Variable, object]) -> bool:
        head_row = tuple(
            arg.value if isinstance(arg, Constant) else env[arg]
            for arg in rule.head.args
        )
        relation = idb[rule.head.predicate]
        if head_row in relation:
            return False
        relation.add(head_row)
        stats.facts_derived += 1
        if prov is not None:
            supports: list[Fact] = []
            for lit in rule.positive_literals:
                row = tuple(
                    arg.value if isinstance(arg, Constant) else env[arg]
                    for arg in lit.args
                )
                supports.append((lit.predicate, row))
            prov[(rule.head.predicate, head_row)] = (rule, tuple(supports))
        return True

    def fire_rule(
        rule: Rule,
        join: _RuleJoin,
        delta_relation: Relation | None,
        sink_delta: dict[str, Relation] | None,
        scc_index: int,
        iteration: int | None,
    ) -> None:
        """Run one rule's join, record the results (into ``sink_delta``
        too, when given) and — when tracing — emit a ``rule`` span with
        the per-rule work deltas."""
        results: list[dict[Variable, object]] = []

        def run() -> None:
            _run_join(join, {}, 0, relation_of, delta_relation, edb_lookup, stats, results)
            stats.rule_firings += len(results)
            for env in results:
                if record(rule, env) and sink_delta is not None:
                    head_row = tuple(
                        arg.value if isinstance(arg, Constant) else env[arg]
                        for arg in rule.head.args
                    )
                    sink_delta[rule.head.predicate].add(head_row)

        if not trace_on:
            run()
            return
        before = (stats.probes, stats.rows_scanned, stats.facts_derived)
        with tracer.span(
            "rule",
            predicate=rule.head.predicate,
            rule=repr(rule),
            scc=scc_index,
            iteration=iteration,
            delta=delta_relation is not None,
        ) as span:
            run()
            span.set(
                firings=len(results),
                probes=stats.probes - before[0],
                rows_scanned=stats.rows_scanned - before[1],
                facts_derived=stats.facts_derived - before[2],
            )

    with tracer.span("evaluate", strategy="seminaive", rules=len(program.rules)) as root:
        graph = program.dependency_graph()
        for scc_index, component in enumerate(_sccs(graph)):
            members = set(component)
            recursive = len(component) > 1 or any(
                head in graph.get(head, set()) for head in component
            )
            rules = [r for r in program.rules if r.head.predicate in members]
            with tracer.span(
                "scc",
                index=scc_index,
                members=",".join(sorted(members)),
                recursive=recursive,
            ):
                if not recursive:
                    for rule in rules:
                        fire_rule(rule, _RuleJoin(rule, None), None, None, scc_index, None)
                    continue
                # Semi-naive iteration inside a recursive SCC.
                exit_rules = []
                delta_joins: list[tuple[Rule, _RuleJoin]] = []
                for rule in rules:
                    recursive_positions = [
                        i
                        for i, item in enumerate(rule.body)
                        if isinstance(item, Literal) and item.positive and item.predicate in members
                    ]
                    if not recursive_positions:
                        exit_rules.append(rule)
                    else:
                        for pos in recursive_positions:
                            delta_joins.append((rule, _RuleJoin(rule, pos)))
                delta: dict[str, Relation] = {
                    pred: Relation(program.arity_of(pred)) for pred in members
                }
                for rule in exit_rules:
                    fire_rule(rule, _RuleJoin(rule, None), None, delta, scc_index, None)
                iterations = 0
                while any(len(d) for d in delta.values()):
                    iterations += 1
                    if max_iterations is not None and iterations > max_iterations:
                        break
                    stats.iterations += 1
                    if trace_on:
                        tracer.event(
                            "iteration",
                            scc=scc_index,
                            index=iterations,
                            delta_in=sum(len(d) for d in delta.values()),
                        )
                    new_delta: dict[str, Relation] = {
                        pred: Relation(program.arity_of(pred)) for pred in members
                    }
                    for rule, join in delta_joins:
                        delta_item = join.plan[0][0]
                        assert isinstance(delta_item, Literal)
                        delta_rel = delta[delta_item.predicate]
                        if not len(delta_rel):
                            continue
                        fire_rule(rule, join, delta_rel, new_delta, scc_index, iterations)
                    delta = new_delta
        if trace_on:
            root.set(**stats.as_dict())
    return EvaluationResult(idb=idb, stats=stats, program=program, database=database, provenance=prov)


def _evaluate_naive(
    program: Program,
    database: Database,
    *,
    provenance: bool = False,
    tracer: Tracer | None = None,
) -> EvaluationResult:
    """Naive bottom-up evaluation: full re-evaluation until fixpoint."""
    if tracer is None:
        tracer = get_tracer()
    trace_on = tracer.enabled
    stats = EvaluationStats()
    idb: dict[str, Relation] = {
        pred: Relation(program.arity_of(pred)) for pred in program.idb_predicates
    }
    prov: dict[Fact, tuple[Rule, tuple[Fact, ...]]] | None = {} if provenance else None
    idb_preds = program.idb_predicates

    def relation_of(predicate: str, arity: int) -> Relation:
        if predicate in idb_preds:
            return idb[predicate]
        return database.relation(predicate, arity)

    def edb_lookup(predicate: str, row: Row, arity: int) -> bool:
        return row in database.relation(predicate, arity)

    joins = [(rule, _RuleJoin(rule, None)) for rule in program.rules]

    def fire_rule(rule: Rule, join: _RuleJoin) -> bool:
        changed = False
        results: list[dict[Variable, object]] = []
        _run_join(join, {}, 0, relation_of, None, edb_lookup, stats, results)
        stats.rule_firings += len(results)
        for env in results:
            head_row = tuple(
                arg.value if isinstance(arg, Constant) else env[arg]
                for arg in rule.head.args
            )
            relation = idb[rule.head.predicate]
            if head_row in relation:
                continue
            relation.add(head_row)
            stats.facts_derived += 1
            changed = True
            if prov is not None:
                supports = tuple(
                    (
                        lit.predicate,
                        tuple(
                            arg.value if isinstance(arg, Constant) else env[arg]
                            for arg in lit.args
                        ),
                    )
                    for lit in rule.positive_literals
                )
                prov[(rule.head.predicate, head_row)] = (rule, supports)
        return changed

    with tracer.span("evaluate", strategy="naive", rules=len(program.rules)) as root:
        changed = True
        while changed:
            changed = False
            stats.iterations += 1
            if trace_on:
                tracer.event("iteration", index=stats.iterations, delta_in=None)
            for rule, join in joins:
                if not trace_on:
                    changed |= fire_rule(rule, join)
                    continue
                before = (
                    stats.probes,
                    stats.rows_scanned,
                    stats.facts_derived,
                    stats.rule_firings,
                )
                with tracer.span(
                    "rule",
                    predicate=rule.head.predicate,
                    rule=repr(rule),
                    iteration=stats.iterations,
                ) as span:
                    changed |= fire_rule(rule, join)
                    span.set(
                        firings=stats.rule_firings - before[3],
                        probes=stats.probes - before[0],
                        rows_scanned=stats.rows_scanned - before[1],
                        facts_derived=stats.facts_derived - before[2],
                    )
        if trace_on:
            root.set(**stats.as_dict())
    return EvaluationResult(
        idb=idb, stats=stats, program=program, database=database, provenance=prov
    )


def evaluate_query(program: Program, database: Database) -> frozenset[Row]:
    """Convenience wrapper: evaluate and return the query relation's rows."""
    return evaluate(program, database).query_rows()


@dataclass
class DerivationNode:
    """A node of a ground derivation tree (paper, Section 2).

    Goal nodes carry a fact; the ``rule`` of an IDB goal node is the rule
    node below it, with ``children`` being the goal nodes of the rule's
    positive subgoals.  EDB goal nodes are leaves (``rule is None``).
    """

    predicate: str
    row: Row
    rule: Rule | None = None
    children: list["DerivationNode"] = field(default_factory=list)

    def leaves(self) -> list["DerivationNode"]:
        if self.rule is None:
            return [self]
        result: list[DerivationNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def goal_nodes(self) -> list["DerivationNode"]:
        """All goal nodes of the tree (this node included)."""
        result = [self]
        for child in self.children:
            result.extend(child.goal_nodes())
        return result

    def render(self, indent: str = "") -> str:
        label = f"{self.predicate}({', '.join(map(repr, self.row))})"
        lines = [f"{indent}{label}" + ("" if self.rule is None else f"   [{self.rule!r}]")]
        for child in self.children:
            lines.append(child.render(indent + "  "))
        return "\n".join(lines)


def derivation_tree(result: EvaluationResult, predicate: str, row: Sequence[object]) -> DerivationNode:
    """Reconstruct a derivation tree for a derived fact.

    Requires the evaluation to have been run with ``provenance=True``.
    The provenance records first derivations, so the reconstruction is
    well-founded (no cycles).
    """
    if result.provenance is None:
        raise ValueError("evaluation was run without provenance=True")
    row = tuple(row)
    idb_preds = result.program.idb_predicates

    def build(fact: Fact) -> DerivationNode:
        pred, fact_row = fact
        if pred not in idb_preds:
            return DerivationNode(pred, fact_row)
        entry = result.provenance.get(fact)
        if entry is None:
            raise KeyError(f"fact {pred}{fact_row} was not derived")
        rule, supports = entry
        node = DerivationNode(pred, fact_row, rule=rule)
        node.children = [build(s) for s in supports]
        return node

    return build((predicate, row))
