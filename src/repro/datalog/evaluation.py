"""Bottom-up evaluation: naive and semi-naive, with order atoms and negation.

The engine evaluates a :class:`~repro.datalog.program.Program` over a
:class:`~repro.datalog.database.Database` of EDB facts:

* IDB predicates are computed SCC by SCC in topological order of the
  dependency graph; within a recursive SCC, semi-naive (delta) iteration
  is used.
* Each rule's join runs on one of two engines.  The default
  ``engine="slots"`` is the **compiled slot-based engine** of
  :mod:`repro.datalog.plan`: each rule is compiled once per (rule,
  delta-position) into a plan over integer variable slots — the
  environment is a fixed-size list overwritten in place (no per-row
  ``dict`` copies), probe keys and head/filter projections are
  precomputed position tuples, fully bound subgoals become zero-scan
  existence checks, and hash indexes are fetched once per rule
  execution.  ``plan_order`` selects **cost-based body reordering**
  (``"cost"``, the default: literals ordered by estimated selectivity,
  relation size × bound-position count) or the seed interpreter's
  greedy bound-count order (``"greedy"``).  ``engine="interpreted"``
  keeps the original tuple-at-a-time interpreter as a measurable
  baseline (see ``repro bench``).
* :class:`EvaluationStats` counts rule firings, index probes, rows
  scanned, facts derived, index builds and environment allocations —
  plus per-rule ``rows_scanned`` — the "join work" measures the
  benchmarks report when comparing engines and transformed programs.
* The engine is instrumented with the tracer of
  :mod:`repro.observability.trace`: an ``evaluate`` span wraps the run,
  each SCC gets an ``scc`` span, each semi-naive round an ``iteration``
  event, every compiled plan a ``plan`` event (with the chosen join
  order), every lazily built hash index an ``index_build`` event, and
  every rule execution a ``rule`` span carrying its wall time plus the
  per-rule deltas of the work counters.  With the default disabled
  tracer none of this fires — the hot path pays one boolean check.
* With ``provenance=True`` the engine records, for each derived fact,
  the first rule instantiation that produced it; :func:`derivation_tree`
  then reconstructs a ground derivation tree in the paper's sense (goal
  nodes alternating with rule nodes, EDB literals at the leaves).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..observability.trace import Tracer, get_tracer
from ..robustness.budget import Budget, CancellationToken, FallbackStep, Governor
from ..robustness.errors import EvaluationAborted
from .atoms import Atom, Literal, OrderAtom, evaluate_comparison
from .database import STORAGES, Database, Relation, Row
from .plan import (
    DEFAULT_IDB_ESTIMATE,
    RulePlan,
    _GovernedList,
    compile_rule,
    order_body_greedy,
)
from .program import Program
from .rules import Rule
from .terms import Constant, Variable

__all__ = [
    "ENGINES",
    "PLAN_ORDERS",
    "STORAGES",
    "EvaluationStats",
    "EvaluationResult",
    "EvaluationSnapshot",
    "DerivationNode",
    "evaluate",
    "evaluate_query",
    "derivation_tree",
]

#: Valid ``engine`` arguments of :func:`evaluate`.
ENGINES = ("slots", "interpreted")

#: Valid ``plan_order`` arguments of :func:`evaluate`.
PLAN_ORDERS = ("cost", "greedy")

# STORAGES (valid ``storage`` arguments) is defined next to the storage
# backends in :mod:`repro.datalog.database` and re-exported here.


@dataclass
class EvaluationStats:
    """Work counters accumulated during one evaluation.

    The scalar counters measure join work; ``rows_scanned_by_rule``
    attributes ``rows_scanned`` to the rule (by its ``repr``) that
    scanned them, so benchmarks can prove a plan change scans fewer
    rows per rule without enabling the tracer.
    """

    rule_firings: int = 0
    probes: int = 0
    rows_scanned: int = 0
    facts_derived: int = 0
    iterations: int = 0
    index_builds: int = 0
    env_allocations: int = 0
    intern_hits: int = 0
    block_probes: int = 0
    budget_trips: int = 0
    worker_restarts: int = 0
    shards_redispatched: int = 0
    degradations: int = 0
    wall_time_seconds: float = 0.0
    rows_scanned_by_rule: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "EvaluationStats") -> None:
        # getattr with a default, not attribute access: ``other`` may be
        # a stats object deserialized from an older checkpoint that
        # predates newer counters (see :meth:`from_dict`).
        self.rule_firings += getattr(other, "rule_firings", 0)
        self.probes += getattr(other, "probes", 0)
        self.rows_scanned += getattr(other, "rows_scanned", 0)
        self.facts_derived += getattr(other, "facts_derived", 0)
        self.iterations += getattr(other, "iterations", 0)
        self.index_builds += getattr(other, "index_builds", 0)
        self.env_allocations += getattr(other, "env_allocations", 0)
        self.intern_hits += getattr(other, "intern_hits", 0)
        self.block_probes += getattr(other, "block_probes", 0)
        self.budget_trips += getattr(other, "budget_trips", 0)
        self.worker_restarts += getattr(other, "worker_restarts", 0)
        self.shards_redispatched += getattr(other, "shards_redispatched", 0)
        self.degradations += getattr(other, "degradations", 0)
        # Wall-clock merges in integer nanoseconds: float ``+=`` is
        # commutative but not associative, so shard stats merged in
        # different orders could disagree in the last bits.  Integer
        # addition is exact, so any merge order yields the same float.
        self.wall_time_seconds = (
            round(self.wall_time_seconds * 1e9)
            + round(getattr(other, "wall_time_seconds", 0.0) * 1e9)
        ) / 1e9
        merged = self.rows_scanned_by_rule
        for key, value in getattr(other, "rows_scanned_by_rule", {}).items():
            merged[key] = merged.get(key, 0) + value
        # Keep the per-rule attribution sorted by rule key so the dict's
        # insertion order — and every JSON rendering of it — is
        # independent of the order shard stats arrived in.
        self.rows_scanned_by_rule = dict(sorted(merged.items()))

    def as_dict(self) -> dict[str, object]:
        """The counters as a plain dict (benchmark ``extra_info`` payloads)."""
        return {
            "rule_firings": self.rule_firings,
            "probes": self.probes,
            "rows_scanned": self.rows_scanned,
            "facts_derived": self.facts_derived,
            "iterations": self.iterations,
            "index_builds": self.index_builds,
            "env_allocations": self.env_allocations,
            "intern_hits": self.intern_hits,
            "block_probes": self.block_probes,
            "budget_trips": self.budget_trips,
            "worker_restarts": self.worker_restarts,
            "shards_redispatched": self.shards_redispatched,
            "degradations": self.degradations,
            "wall_time_seconds": self.wall_time_seconds,
            "rows_scanned_by_rule": dict(sorted(self.rows_scanned_by_rule.items())),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EvaluationStats":
        """Rebuild stats from an :meth:`as_dict` payload, tolerantly.

        Checkpoints written by older versions predate newer counters
        (``budget_trips`` and ``wall_time_seconds`` arrived in PR 4, for
        instance): missing fields default to zero instead of raising
        ``KeyError``, and unknown fields written by *newer* versions are
        ignored, so stats survive both directions of a version skew.
        """
        stats = cls()
        for key in (
            "rule_firings",
            "probes",
            "rows_scanned",
            "facts_derived",
            "iterations",
            "index_builds",
            "env_allocations",
            "intern_hits",
            "block_probes",
            "budget_trips",
            "worker_restarts",
            "shards_redispatched",
            "degradations",
        ):
            setattr(stats, key, int(payload.get(key, 0)))  # type: ignore[call-overload]
        stats.wall_time_seconds = float(payload.get("wall_time_seconds", 0.0))  # type: ignore[arg-type]
        by_rule = payload.get("rows_scanned_by_rule", {})
        stats.rows_scanned_by_rule = {
            str(rule): int(count) for rule, count in by_rule.items()  # type: ignore[union-attr]
        }
        return stats

    def copy(self) -> "EvaluationStats":
        """An independent copy (checkpoints must not alias live counters)."""
        fresh = EvaluationStats()
        fresh.merge(self)
        return fresh

    def compare(self, other: "EvaluationStats") -> dict[str, float]:
        """Per-scalar-counter ratios ``other / self`` (1.0 when both are zero).

        The benchmarks report these as work ratios of a transformed
        program against its baseline: a ratio below 1.0 on
        ``facts_derived`` means the transformation derived fewer facts.
        Only the integer counters are compared: the per-rule breakdown
        is not a ratio and ``wall_time_seconds`` (a float) is too noisy
        to be a meaningful work ratio, so both are skipped.
        """
        ratios: dict[str, float] = {}
        mine = self.as_dict()
        theirs = other.as_dict()
        for key, value in mine.items():
            if not isinstance(value, int):
                continue
            # .get, not [] — ``other`` may have been loaded from an older
            # checkpoint whose as_dict lacked newer counters.
            other_value = theirs.get(key, 0)
            if value == 0:
                ratios[key] = 1.0 if other_value == 0 else float("inf")
            else:
                ratios[key] = other_value / value
        return ratios


#: A ground fact key: (predicate, row of values).
Fact = tuple[str, Row]


@dataclass
class EvaluationResult:
    """The computed IDB plus statistics and (optionally) provenance."""

    idb: dict[str, Relation]
    stats: EvaluationStats
    program: Program
    database: Database
    provenance: dict[Fact, tuple[Rule, tuple[Fact, ...]]] | None = None
    #: Sharded-evaluation report (``evaluate(..., workers=N)`` only):
    #: per-worker task/CPU totals plus the modeled critical path — see
    #: :func:`repro.parallel.engine.evaluate_sharded`.
    shards: dict | None = None
    #: Degradation-ladder rungs taken on the way to this result
    #: (``evaluate(..., workers=N)`` only): one
    #: :class:`~repro.robustness.budget.FallbackStep` per abandoned
    #: fleet configuration when worker recovery exhausted its retry
    #: budget.  Empty on clean runs.
    fallbacks: tuple = ()

    def relation(self, predicate: str) -> Relation:
        """The computed relation for an IDB predicate (empty if none derived)."""
        rel = self.idb.get(predicate)
        if rel is not None:
            return rel
        try:
            return Relation(self.program.arity_of(predicate))
        except KeyError:
            raise KeyError(f"unknown IDB predicate {predicate}") from None

    def rows(self, predicate: str) -> frozenset[Row]:
        return self.relation(predicate).rows()

    def query_rows(self) -> frozenset[Row]:
        if self.program.query is None:
            raise ValueError("program has no query predicate")
        return self.rows(self.program.query)


@dataclass(frozen=True)
class EvaluationSnapshot:
    """A resumable point-in-time capture of one evaluation.

    Emitted by :func:`evaluate` through its ``checkpoint_sink`` at
    semi-naive round boundaries, and accepted back via ``resume_from``
    to restart the fixpoint from the saved frontier instead of from
    scratch.  The snapshot is deliberately **engine-agnostic** — it
    captures only rows, the SCC/iteration cursor and cumulative stats,
    never compiled plans or indexes — so a snapshot taken under the
    compiled slot engine resumes correctly under the interpreter (and
    vice versa).  It is also plain data: the persistence layer
    (:mod:`repro.persist`) serializes it to the on-disk checkpoint
    format without reaching into engine internals.

    ``completed_sccs`` counts the SCCs (in the deterministic Tarjan
    topological order of :func:`_sccs`) whose fixpoints are fully
    contained in ``idb``; ``scc_index``/``iteration`` locate the
    in-progress SCC and the rounds already run inside it; ``delta`` is
    the semi-naive frontier feeding its next round (``None`` for naive
    snapshots and for completed evaluations).  ``stats`` are cumulative
    from the very first run, so resumed statistics stay monotone.

    ``interner`` is the columnar backend's value table in code order
    (``None`` under rows storage): rows in the snapshot are always
    decoded values, so the snapshot stays engine- **and**
    storage-agnostic, but carrying the table lets a columnar resume
    reproduce the exact code assignment of the checkpointed run.

    ``edb`` is the extensional database at snapshot time, carried only
    on *complete* snapshots written by the persistence layer: ingested
    facts live nowhere else once the write-ahead journal compacts, so a
    complete checkpoint must be self-contained — restore = EDB + IDB
    from the checkpoint, then replay the journal suffix.  ``None`` on
    engine-emitted mid-evaluation snapshots (resume re-uses the live
    session database) and on checkpoints written before the journal.
    """

    strategy: str
    completed_sccs: int
    scc_index: int | None
    iteration: int
    idb: Mapping[str, frozenset]
    delta: Mapping[str, frozenset] | None
    stats: EvaluationStats
    complete: bool = False
    interner: "tuple | None" = None
    edb: "Mapping[str, frozenset] | None" = None


def _check_resume(
    resume_from: "EvaluationSnapshot | None", strategy: str, provenance: bool
) -> None:
    if resume_from is None:
        return
    if provenance:
        raise ValueError(
            "provenance=True cannot resume from a snapshot: provenance "
            "for pre-checkpoint facts was not captured"
        )
    if resume_from.strategy != strategy:
        # A naive snapshot has no frontier, so semi-naive resumption
        # would treat its facts as exhausted deltas and under-derive;
        # refuse both directions rather than silently recompute.
        raise ValueError(
            f"snapshot was taken under strategy {resume_from.strategy!r}; "
            f"cannot resume with strategy {strategy!r}"
        )


# ----------------------------------------------------------------------
# The interpreted engine (the seed's tuple-at-a-time baseline)
# ----------------------------------------------------------------------
#: Sentinel distinguishing "variable unbound" from a legitimate ``None``
#: value stored in a database row.
_UNSET = object()


class _RuleJoin:
    """An interpreted join plan for one rule with an optional delta subgoal."""

    def __init__(self, rule: Rule, delta_index: int | None):
        self.rule = rule
        self.rule_key = repr(rule)
        self.delta_index = delta_index
        self.plan = order_body_greedy(rule, delta_index)
        self.delta_predicate: str | None = None
        if delta_index is not None:
            item = rule.body[delta_index]
            assert isinstance(item, Literal)
            self.delta_predicate = item.predicate

    def head_row(self, env: Mapping[Variable, object]) -> Row:
        return tuple(
            arg.value if isinstance(arg, Constant) else env[arg]
            for arg in self.rule.head.args
        )

    def support_rows(self, env: Mapping[Variable, object]) -> list[Fact]:
        return [
            (
                lit.predicate,
                tuple(
                    arg.value if isinstance(arg, Constant) else env[arg]
                    for arg in lit.args
                ),
            )
            for lit in self.rule.positive_literals
        ]

    def describe(self) -> str:
        return "; ".join(
            f"{'scan* ' if is_delta else ''}{item!r}" for item, is_delta in self.plan
        )


def _probe_literal(
    literal: Literal,
    env: dict[Variable, object],
    relation: Relation,
    stats: EvaluationStats,
) -> Iterable[dict[Variable, object]]:
    """Yield extended environments matching ``literal`` against ``relation``."""
    bound_positions: list[int] = []
    key_values: list[object] = []
    for i, arg in enumerate(literal.args):
        if isinstance(arg, Constant):
            bound_positions.append(i)
            key_values.append(arg.value)
        elif arg in env:
            bound_positions.append(i)
            key_values.append(env[arg])
    stats.probes += 1
    rows = relation.probe(tuple(bound_positions), tuple(key_values))
    for row in rows:
        stats.rows_scanned += 1
        extended = dict(env)
        stats.env_allocations += 1
        consistent = True
        for i, arg in enumerate(literal.args):
            if isinstance(arg, Constant):
                continue
            # _UNSET (not None) marks unbound: a row value of None must
            # still join consistently against an earlier binding.
            current = extended.get(arg, _UNSET)
            if current is _UNSET:
                extended[arg] = row[i]
            elif current != row[i]:
                consistent = False
                break
        if consistent:
            yield extended


def _check_filter(item: object, env: Mapping[Variable, object], edb_lookup) -> bool:
    """Evaluate a fully bound order atom or negated literal."""
    if isinstance(item, OrderAtom):
        left = item.left.value if isinstance(item.left, Constant) else env[item.left]
        right = item.right.value if isinstance(item.right, Constant) else env[item.right]
        return evaluate_comparison(left, right, item.op)
    assert isinstance(item, Literal) and not item.positive
    row = tuple(
        arg.value if isinstance(arg, Constant) else env[arg] for arg in item.args
    )
    return not edb_lookup(item.predicate, row, len(row))


def _run_join(
    join: _RuleJoin,
    env: dict[Variable, object],
    step: int,
    relation_of,
    delta_relation: Relation | None,
    edb_lookup,
    stats: EvaluationStats,
    out: list[dict[Variable, object]],
) -> None:
    """Depth-first execution of the interpreted plan, appending result envs."""
    if step == len(join.plan):
        out.append(env)
        return
    item, is_delta = join.plan[step]
    if isinstance(item, Literal) and item.positive:
        relation = delta_relation if is_delta else relation_of(item.predicate, item.atom.arity)
        for extended in _probe_literal(item, env, relation, stats):
            _run_join(join, extended, step + 1, relation_of, delta_relation, edb_lookup, stats, out)
    else:
        if _check_filter(item, env, edb_lookup):
            _run_join(join, env, step + 1, relation_of, delta_relation, edb_lookup, stats, out)


# ----------------------------------------------------------------------
# Engine adapters: one driver, two join engines (x two storage backends)
# ----------------------------------------------------------------------
class _EngineBase:
    """Driver-facing helpers shared by every engine adapter.

    ``run`` returns an engine-specific result batch; :meth:`result_count`
    sizes it (for ``rule_firings``) and :meth:`derive` inserts the head
    rows — plus provenance and the semi-naive sink delta — returning the
    number of *new* facts.  The drivers never reach into batch internals,
    so a batch can be a list of environments (per-row engines) or a
    column block (the columnar engine) without driver changes.
    """

    def result_count(self, results) -> int:
        return len(results)

    def derive(self, plan, results, head_relation, sink_delta, prov, stats) -> int:
        rule = plan.rule
        head_pred = rule.head.predicate
        new = 0
        for env in results:
            head_row = self.head_row(plan, env)
            if head_row in head_relation:
                continue
            head_relation.add(head_row)
            new += 1
            if prov is not None:
                prov[(head_pred, head_row)] = (
                    rule,
                    tuple(self.support_rows(plan, env)),
                )
            if sink_delta is not None:
                sink_delta[head_pred].add(head_row)
        stats.facts_derived += new
        return new


class _SlotEngine(_EngineBase):
    """The compiled slot-based engine (:mod:`repro.datalog.plan`)."""

    name = "slots"

    def __init__(self, program: Program, database: Database, idb, plan_order: str, tracer: Tracer):
        self.database = database
        self.idb = idb
        self.plan_order = plan_order
        self.tracer = tracer
        self.trace_on = tracer.enabled

    def _size_of(self, literal: Literal) -> float:
        """Estimated relation size at plan-compile time.

        EDB sizes are exact; IDB relations still empty when the plan is
        compiled (recursive predicates) get a default guess."""
        rel = self.idb.get(literal.predicate)
        if rel is not None:
            return float(len(rel)) or float(DEFAULT_IDB_ESTIMATE)
        return float(len(self.database.relation(literal.predicate, literal.atom.arity)))

    def make_plan(self, rule: Rule, delta_index: int | None) -> RulePlan:
        plan = compile_rule(
            rule, delta_index, order=self.plan_order, size_of=self._size_of
        )
        if self.trace_on:
            self.tracer.event(
                "plan",
                predicate=rule.head.predicate,
                rule=plan.rule_key,
                order=plan.order,
                delta=plan.delta_predicate or "",
                steps=plan.describe(),
            )
        return plan

    def run(self, plan: RulePlan, relation_of, delta_relation, stats, governor=None):
        return plan.run(
            relation_of,
            delta_relation,
            stats,
            tracer=self.tracer if self.trace_on else None,
            governor=governor,
        )

    @staticmethod
    def head_row(plan: RulePlan, env) -> Row:
        return plan.head_row(env)

    @staticmethod
    def support_rows(plan: RulePlan, env) -> list[Fact]:
        return plan.support_rows(env)


class _ColumnarSlotEngine(_SlotEngine):
    """The slot engine over columnar storage: batched block kernels.

    Reuses the slot engine's plan compilation unchanged (the step
    layouts are storage-agnostic) but executes through
    :meth:`~repro.datalog.plan.RulePlan.run_blocks`, whose result batch
    is ``(n, code columns)`` rather than per-row environments; head
    insertion happens at the code level (one dedup set lookup plus one
    ``add_codes`` per new fact) and decodes only for provenance.
    """

    name = "slots"

    def __init__(self, program: Program, database: Database, idb, plan_order: str, tracer: Tracer):
        super().__init__(program, database, idb, plan_order, tracer)
        self.interner = database.interner

    def run(self, plan: RulePlan, relation_of, delta_relation, stats, governor=None):
        return plan.run_blocks(
            relation_of,
            delta_relation,
            self.interner,
            stats,
            tracer=self.tracer if self.trace_on else None,
            governor=governor,
        )

    def result_count(self, results) -> int:
        return results[0]

    def derive(self, plan, results, head_relation, sink_delta, prov, stats) -> int:
        n, cols = results
        if not n:
            return 0
        rule = plan.rule
        head_pred = rule.head.predicate
        intern = self.interner.intern
        head_cols = [
            cols[p] if s else [intern(p)] * n for s, p in plan.head_layout
        ]
        keys = zip(*head_cols) if head_cols else iter([()] * n)
        live = head_relation.code_rows()
        add_codes = head_relation.add_codes
        sink = None if sink_delta is None else sink_delta[head_pred].add_codes
        values = self.interner.values
        new = 0
        for i, codes in enumerate(keys):
            if codes in live:
                continue
            add_codes(codes)
            new += 1
            if sink is not None:
                sink(codes)
            if prov is not None:
                env = [
                    None if col is None else values[col[i]] for col in cols
                ]
                head_row = tuple(values[c] for c in codes)
                prov[(head_pred, head_row)] = (
                    rule,
                    tuple(plan.support_rows(env)),
                )
        stats.facts_derived += new
        return new


class _InterpEngine(_EngineBase):
    """The seed tuple-at-a-time interpreter, kept as the perf baseline."""

    name = "interpreted"

    def __init__(self, program: Program, database: Database, idb, plan_order: str, tracer: Tracer):
        self.database = database
        self.tracer = tracer
        self.trace_on = tracer.enabled

    def _edb_lookup(self, predicate: str, row: Row, arity: int) -> bool:
        return row in self.database.relation(predicate, arity)

    def make_plan(self, rule: Rule, delta_index: int | None) -> _RuleJoin:
        join = _RuleJoin(rule, delta_index)
        if self.trace_on:
            self.tracer.event(
                "plan",
                predicate=rule.head.predicate,
                rule=join.rule_key,
                order="greedy",
                delta=join.delta_predicate or "",
                steps=join.describe(),
            )
        return join

    def run(self, join: _RuleJoin, relation_of, delta_relation, stats, governor=None):
        # The governed buffer makes the recursive interpreter cancellable
        # mid-rule at each emitted environment, mirroring the compiled
        # engine's per-row ticks.
        results: list[dict[Variable, object]] = (
            [] if governor is None else _GovernedList(governor)
        )
        _run_join(
            join, {}, 0, relation_of, delta_relation, self._edb_lookup, stats, results
        )
        return results

    @staticmethod
    def head_row(join: _RuleJoin, env) -> Row:
        return join.head_row(env)

    @staticmethod
    def support_rows(join: _RuleJoin, env) -> list[Fact]:
        return join.support_rows(env)


def _make_engine(engine: str, program, database, idb, plan_order: str, tracer: Tracer):
    if engine == "slots":
        # The storage backend picks the executor: same compiled plans,
        # block kernels on columnar databases, closure chains on rows.
        if database.storage == "columnar":
            return _ColumnarSlotEngine(program, database, idb, plan_order, tracer)
        return _SlotEngine(program, database, idb, plan_order, tracer)
    if engine == "interpreted":
        # The interpreter runs unchanged on either backend through the
        # value-level Relation API (columnar relations decode lazily).
        return _InterpEngine(program, database, idb, plan_order, tracer)
    raise ValueError(f"unknown engine {engine!r} (valid: {', '.join(ENGINES)})")


def _check_plan_order(plan_order: str) -> None:
    if plan_order not in PLAN_ORDERS:
        raise ValueError(
            f"unknown plan order {plan_order!r} (valid: {', '.join(PLAN_ORDERS)})"
        )


def _resolve_storage(database: Database, storage: str | None) -> Database:
    """Validate ``storage`` and convert ``database`` to it when asked."""
    if storage is None:
        return database
    if storage not in STORAGES:
        raise ValueError(
            f"unknown storage {storage!r} (valid: {', '.join(STORAGES)})"
        )
    return database.to_storage(storage)


def _sccs(graph: Mapping[str, set[str]]) -> list[list[str]]:
    """Tarjan's strongly connected components, returned in topological order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    components: list[list[str]] = []

    def strongconnect(node: str) -> None:
        work = [(node, iter(sorted(graph.get(node, ()))))]
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[current] = min(low[current], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[current])
            if low[current] == index[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                components.append(component)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return components


def evaluate(
    program: Program,
    database: Database,
    *,
    provenance: bool = False,
    max_iterations: int | None = None,
    strategy: str = "seminaive",
    tracer: Tracer | None = None,
    engine: str = "slots",
    plan_order: str = "cost",
    storage: str | None = None,
    workers: int | None = None,
    supervision: "object | None" = None,
    budget: "Budget | Governor | None" = None,
    cancellation: CancellationToken | None = None,
    checkpoint_every: int = 0,
    checkpoint_sink: "Callable[[EvaluationSnapshot], None] | None" = None,
    resume_from: EvaluationSnapshot | None = None,
) -> EvaluationResult:
    """Evaluate ``program`` bottom-up over ``database``.

    Returns an :class:`EvaluationResult` with the full IDB.  With
    ``provenance=True`` each derived fact remembers the first rule
    instantiation that produced it (for :func:`derivation_tree`).
    ``max_iterations`` bounds semi-naive rounds per SCC (used by tests
    exploring non-terminating hypotheticals; normal evaluation always
    terminates) and *truncates silently* — for an error-raising bound
    use ``budget`` instead.

    ``strategy`` selects ``"seminaive"`` (default, delta-driven) or
    ``"naive"`` (re-evaluate every rule against the full relations each
    round) — the naive mode exists as a correctness oracle and as a
    baseline in the engine benchmarks.

    ``engine`` selects the join engine: ``"slots"`` (default, the
    compiled slot-based engine) or ``"interpreted"`` (the seed
    tuple-at-a-time interpreter).  ``plan_order`` selects the compiled
    engine's static body ordering: ``"cost"`` (default, cost-based
    reordering by estimated selectivity) or ``"greedy"`` (the seed
    interpreter's bound-count order); the interpreted engine always
    uses the greedy order.

    ``storage`` selects the storage backend: ``None`` (default)
    evaluates in the database's own backend, ``"rows"`` / ``"columnar"``
    convert first (see :meth:`~repro.datalog.database.Database.to_storage`).
    On columnar storage the slot engine runs the batched block kernels
    of :meth:`~repro.datalog.plan.RulePlan.run_blocks`; results and
    fixpoint digests are byte-identical across backends.

    ``workers=N`` shards the evaluation across ``N`` forked worker
    processes (:mod:`repro.parallel`): each semi-naive delta is
    hash-partitioned by code row, workers run the columnar block
    kernels over their shard, and frontiers merge at round boundaries.
    Requires ``engine="slots"`` and ``strategy="seminaive"``;
    ``provenance`` is unsupported.  Fixpoints, digests, iteration
    counts and ``rows_scanned`` are byte-identical to the sequential
    engines; see ``docs/parallel.md``.  Worker deaths are recovered by
    the supervision layer (respawn + shard re-dispatch under a bounded
    retry budget); when recovery is exhausted the run *degrades* —
    half the workers, then sequential columnar — recording each rung
    as a :class:`~repro.robustness.budget.FallbackStep` in
    ``result.fallbacks`` instead of raising.  ``supervision`` accepts
    a :class:`~repro.parallel.supervisor.SupervisionPolicy` overriding
    the default retry/straggler settings.

    ``tracer`` overrides the globally installed tracer (see
    :func:`repro.observability.trace.tracing`); the default disabled
    tracer makes instrumentation free.

    ``budget`` (a :class:`~repro.robustness.budget.Budget`, or an
    already-running :class:`~repro.robustness.budget.Governor` shared
    with earlier phases) and ``cancellation`` make the run governed:
    limits are checked at SCC, round and rule boundaries (plus strided
    per-row ticks inside the join engines), and a violated limit raises
    :class:`~repro.robustness.errors.BudgetExceededError` (or
    :class:`~repro.robustness.errors.Cancelled`) carrying the partial
    fixpoint computed so far in ``exc.partial``.  Because negation is
    restricted to EDB predicates the program is monotone in its IDB, so
    the partial fixpoint is always a subset of the full one.

    ``checkpoint_every`` + ``checkpoint_sink`` make the run durable:
    after every ``checkpoint_every``-th semi-naive round (counted
    cumulatively in ``stats.iterations``) the sink receives an
    :class:`EvaluationSnapshot` of the IDB, the delta frontier and the
    SCC/iteration cursor; a final ``complete=True`` snapshot is always
    emitted when a sink is given.  ``resume_from`` restarts evaluation
    from such a snapshot: completed SCCs are skipped, the in-progress
    SCC continues from its saved frontier, and statistics continue
    cumulatively (budget limits therefore account for pre-checkpoint
    work too).  The snapshot must match ``strategy`` and is
    engine-independent; ``provenance=True`` cannot resume.
    """
    if tracer is None:
        tracer = get_tracer()
    if workers is not None:
        # The multiprocess sharded evaluator (docs/parallel.md): the
        # compiled columnar engine, hash-partitioned across N forked
        # workers.  Imported lazily — repro.parallel imports this
        # module at its own top level.
        if engine != "slots":
            raise ValueError(
                "workers=N requires the compiled slot engine "
                f"(engine='slots'), got engine={engine!r}"
            )
        from ..parallel.engine import WorkerFailure, evaluate_sharded

        # The fleet degradation ladder: a sharded run whose supervisor
        # exhausted its recovery budget (or whose pool could not warm
        # up) is *retried* at half the worker count, down to one, then
        # sequentially on the columnar engine — a recoverable fault
        # costs rungs and time, never the answer and never exit 2.
        # Budget trips and cancellation are not recoverable faults:
        # they propagate as usual (exit 1).
        rungs = []
        count = workers
        while count >= 1:
            rungs.append(count)
            count //= 2
        steps: list[FallbackStep] = []
        carried_restarts = 0
        carried_redispatched = 0
        result = None
        for rung, count in enumerate(rungs):
            try:
                result = evaluate_sharded(
                    program,
                    database,
                    workers=count,
                    provenance=provenance,
                    max_iterations=max_iterations,
                    strategy=strategy,
                    tracer=tracer,
                    plan_order=plan_order,
                    storage=storage,
                    budget=budget,
                    cancellation=cancellation,
                    checkpoint_every=checkpoint_every,
                    checkpoint_sink=checkpoint_sink,
                    resume_from=resume_from,
                    supervision=supervision,
                )
                break
            except WorkerFailure as exc:
                recovery = getattr(exc, "recovery", None) or {}
                carried_restarts += recovery.get("worker_restarts", 0)
                carried_redispatched += recovery.get("shards_redispatched", 0)
                fell_back_to = (
                    f"sharded-w{rungs[rung + 1]}"
                    if rung + 1 < len(rungs)
                    else "sequential-columnar"
                )
                step = FallbackStep(
                    stage=f"sharded-w{count}",
                    fell_back_to=fell_back_to,
                    reason=str(exc),
                )
                steps.append(step)
                if tracer.enabled:
                    tracer.event(
                        "shard.degrade",
                        stage=step.stage,
                        fell_back_to=step.fell_back_to,
                        reason=step.reason,
                    )
        if result is None:
            # Every sharded rung failed: the sequential columnar engine
            # is the ladder's floor (no fleet, nothing left to crash).
            result = evaluate(
                program,
                database,
                provenance=provenance,
                max_iterations=max_iterations,
                strategy=strategy,
                tracer=tracer,
                engine="slots",
                plan_order=plan_order,
                storage="columnar",
                budget=budget,
                cancellation=cancellation,
                checkpoint_every=checkpoint_every,
                checkpoint_sink=checkpoint_sink,
                resume_from=resume_from,
            )
        if steps:
            result.stats.degradations += len(steps)
            result.stats.worker_restarts += carried_restarts
            result.stats.shards_redispatched += carried_redispatched
            result.fallbacks = tuple(steps) + tuple(result.fallbacks)
        return result
    _check_plan_order(plan_order)
    governor = Governor.of(budget, cancellation)
    _check_resume(resume_from, strategy, provenance)
    database = _resolve_storage(database, storage)
    if strategy == "naive":
        return _evaluate_naive(
            program,
            database,
            provenance=provenance,
            tracer=tracer,
            engine=engine,
            plan_order=plan_order,
            budget=governor,
            checkpoint_every=checkpoint_every,
            checkpoint_sink=checkpoint_sink,
            resume_from=resume_from,
        )
    if strategy != "seminaive":
        raise ValueError(f"unknown strategy {strategy!r}")
    trace_on = tracer.enabled
    started = time.perf_counter()
    stats = EvaluationStats()
    base_wall = 0.0
    interner = database.interner
    idb: dict[str, Relation] = {
        pred: database.new_relation(program.arity_of(pred))
        for pred in program.idb_predicates
    }
    if resume_from is not None:
        stats.merge(resume_from.stats)
        base_wall = stats.wall_time_seconds
        if interner is not None and resume_from.interner is not None:
            # Replay the checkpointed value table first so this run
            # assigns the same codes the checkpointed run did.
            for value in resume_from.interner:
                interner.intern(value)
        for pred, rows in resume_from.idb.items():
            if pred in idb:
                for row in rows:
                    idb[pred].add(row)
    # intern_hits reports this run's dictionary re-use: the delta of the
    # interner's hit counter, on top of any resumed base (the hits spent
    # re-seeding the snapshot rows above are checkpointed work, already
    # counted by the run that produced the snapshot).
    base_intern = stats.intern_hits
    hits0 = 0 if interner is None else interner.hits

    def sync_intern_hits() -> None:
        if interner is not None:
            stats.intern_hits = base_intern + interner.hits - hits0

    prov: dict[Fact, tuple[Rule, tuple[Fact, ...]]] | None = {} if provenance else None
    idb_preds = program.idb_predicates
    eng = _make_engine(engine, program, database, idb, plan_order, tracer)
    checkpointing = checkpoint_sink is not None and checkpoint_every > 0

    def make_snapshot(
        completed: int,
        scc_index: int | None,
        iteration: int,
        delta: "dict[str, Relation] | None",
        complete: bool = False,
    ) -> EvaluationSnapshot:
        sync_intern_hits()
        snap_stats = stats.copy()
        snap_stats.wall_time_seconds = base_wall + (time.perf_counter() - started)
        return EvaluationSnapshot(
            strategy="seminaive",
            completed_sccs=completed,
            scc_index=scc_index,
            iteration=iteration,
            idb={pred: rel.rows() for pred, rel in idb.items()},
            delta=None
            if delta is None
            else {pred: rel.rows() for pred, rel in delta.items()},
            stats=snap_stats,
            complete=complete,
            interner=None if interner is None else tuple(interner.values),
        )

    def relation_of(predicate: str, arity: int) -> Relation:
        if predicate in idb_preds:
            return idb[predicate]
        return database.relation(predicate, arity)

    def fire_rule(
        plan,
        delta_relation: Relation | None,
        sink_delta: dict[str, Relation] | None,
        scc_index: int,
        iteration: int | None,
    ) -> None:
        """Run one rule's join, record the results (into ``sink_delta``
        too, when given) and — when tracing — emit a ``rule`` span with
        the per-rule work deltas."""
        rule = plan.rule
        head_relation = idb[rule.head.predicate]

        def run() -> None:
            rows_before = stats.rows_scanned
            results = eng.run(plan, relation_of, delta_relation, stats, governor)
            stats.rule_firings += eng.result_count(results)
            key = plan.rule_key
            stats.rows_scanned_by_rule[key] = (
                stats.rows_scanned_by_rule.get(key, 0)
                + stats.rows_scanned
                - rows_before
            )
            eng.derive(plan, results, head_relation, sink_delta, prov, stats)
            if governor is not None:
                governor.check("evaluate", stats)

        if not trace_on:
            run()
            return
        before = (
            stats.probes,
            stats.rows_scanned,
            stats.facts_derived,
            stats.rule_firings,
            stats.index_builds,
        )
        with tracer.span(
            "rule",
            predicate=rule.head.predicate,
            rule=plan.rule_key,
            scc=scc_index,
            iteration=iteration,
            delta=delta_relation is not None,
        ) as span:
            run()
            span.set(
                firings=stats.rule_firings - before[3],
                probes=stats.probes - before[0],
                rows_scanned=stats.rows_scanned - before[1],
                facts_derived=stats.facts_derived - before[2],
                index_builds=stats.index_builds - before[4],
            )

    def partial_result() -> EvaluationResult:
        return EvaluationResult(
            idb=idb, stats=stats, program=program, database=database, provenance=prov
        )

    try:
        with tracer.span(
            "evaluate", strategy="seminaive", engine=eng.name, rules=len(program.rules)
        ) as root:
            graph = program.dependency_graph()
            components = _sccs(graph)
            for scc_index, component in enumerate(components):
                if resume_from is not None and scc_index < resume_from.completed_sccs:
                    continue  # fixpoint already contained in the seeded IDB
                resuming_here = (
                    resume_from is not None
                    and resume_from.scc_index == scc_index
                    and resume_from.delta is not None
                )
                if governor is not None:
                    governor.check("evaluate", stats)
                members = set(component)
                recursive = len(component) > 1 or any(
                    head in graph.get(head, set()) for head in component
                )
                rules = [r for r in program.rules if r.head.predicate in members]
                with tracer.span(
                    "scc",
                    index=scc_index,
                    members=",".join(sorted(members)),
                    recursive=recursive,
                ):
                    if not recursive:
                        for rule in rules:
                            fire_rule(eng.make_plan(rule, None), None, None, scc_index, None)
                        continue
                    # Semi-naive iteration inside a recursive SCC.
                    exit_rules = []
                    delta_rules: list[tuple[Rule, int]] = []
                    for rule in rules:
                        recursive_positions = [
                            i
                            for i, item in enumerate(rule.body)
                            if isinstance(item, Literal) and item.positive and item.predicate in members
                        ]
                        if not recursive_positions:
                            exit_rules.append(rule)
                        else:
                            for pos in recursive_positions:
                                delta_rules.append((rule, pos))
                    if resuming_here:
                        # The snapshot was taken at a round boundary of this
                        # SCC: its exit rules already fired (their facts are
                        # in the seeded IDB), so restore the frontier and
                        # iteration cursor instead of re-deriving round one.
                        assert resume_from is not None and resume_from.delta is not None
                        delta = {}
                        for pred in members:
                            rel = database.new_relation(program.arity_of(pred))
                            for row in resume_from.delta.get(pred, ()):
                                rel.add(row)
                            delta[pred] = rel
                        iterations = resume_from.iteration
                    else:
                        delta = {
                            pred: database.new_relation(program.arity_of(pred))
                            for pred in members
                        }
                        for rule in exit_rules:
                            fire_rule(eng.make_plan(rule, None), None, delta, scc_index, None)
                        iterations = 0
                    # Delta plans are compiled after the exit rules fired, so
                    # cost estimates see the exit-layer IDB sizes; each (rule,
                    # delta-position) is compiled exactly once per SCC.
                    delta_joins = [
                        eng.make_plan(rule, pos) for rule, pos in delta_rules
                    ]
                    while any(len(d) for d in delta.values()):
                        iterations += 1
                        if max_iterations is not None and iterations > max_iterations:
                            break
                        stats.iterations += 1
                        if governor is not None:
                            governor.check("evaluate", stats)
                        if trace_on:
                            tracer.event(
                                "iteration",
                                scc=scc_index,
                                index=iterations,
                                delta_in=sum(len(d) for d in delta.values()),
                            )
                        new_delta: dict[str, Relation] = {
                            pred: database.new_relation(program.arity_of(pred))
                            for pred in members
                        }
                        for plan in delta_joins:
                            delta_rel = delta[plan.delta_predicate]
                            if not len(delta_rel):
                                continue
                            fire_rule(plan, delta_rel, new_delta, scc_index, iterations)
                        delta = new_delta
                        if checkpointing and stats.iterations % checkpoint_every == 0:
                            checkpoint_sink(
                                make_snapshot(scc_index, scc_index, iterations, delta)
                            )
            if checkpoint_sink is not None:
                checkpoint_sink(
                    make_snapshot(
                        len(components), None, stats.iterations, None, complete=True
                    )
                )
            if trace_on:
                root.set(
                    **{k: v for k, v in stats.as_dict().items() if isinstance(v, int)}
                )
    except EvaluationAborted as exc:
        stats.budget_trips += 1
        sync_intern_hits()
        stats.wall_time_seconds = base_wall + (time.perf_counter() - started)
        if trace_on:
            tracer.event(
                "budget.trip",
                phase=exc.phase or "evaluate",
                limit=exc.limit or "",
                facts_derived=stats.facts_derived,
                iterations=stats.iterations,
            )
        raise exc.with_context(
            phase="evaluate", partial=partial_result(), stats=stats
        ) from None
    sync_intern_hits()
    stats.wall_time_seconds = base_wall + (time.perf_counter() - started)
    return partial_result()


def _evaluate_naive(
    program: Program,
    database: Database,
    *,
    provenance: bool = False,
    tracer: Tracer | None = None,
    engine: str = "slots",
    plan_order: str = "cost",
    storage: str | None = None,
    budget: "Budget | Governor | None" = None,
    cancellation: CancellationToken | None = None,
    checkpoint_every: int = 0,
    checkpoint_sink: "Callable[[EvaluationSnapshot], None] | None" = None,
    resume_from: EvaluationSnapshot | None = None,
) -> EvaluationResult:
    """Naive bottom-up evaluation: full re-evaluation until fixpoint.

    Naive snapshots carry no delta frontier — the whole IDB is the
    state — so resumption simply re-seeds the relations and keeps
    iterating; the naive fixpoint loop is idempotent over the seeded
    facts.
    """
    if tracer is None:
        tracer = get_tracer()
    _check_plan_order(plan_order)
    governor = Governor.of(budget, cancellation)
    _check_resume(resume_from, "naive", provenance)
    database = _resolve_storage(database, storage)
    trace_on = tracer.enabled
    started = time.perf_counter()
    stats = EvaluationStats()
    base_wall = 0.0
    interner = database.interner
    idb: dict[str, Relation] = {
        pred: database.new_relation(program.arity_of(pred))
        for pred in program.idb_predicates
    }
    if resume_from is not None:
        stats.merge(resume_from.stats)
        base_wall = stats.wall_time_seconds
        if interner is not None and resume_from.interner is not None:
            for value in resume_from.interner:
                interner.intern(value)
        for pred, rows in resume_from.idb.items():
            if pred in idb:
                for row in rows:
                    idb[pred].add(row)
    base_intern = stats.intern_hits
    hits0 = 0 if interner is None else interner.hits

    def sync_intern_hits() -> None:
        if interner is not None:
            stats.intern_hits = base_intern + interner.hits - hits0

    prov: dict[Fact, tuple[Rule, tuple[Fact, ...]]] | None = {} if provenance else None
    idb_preds = program.idb_predicates
    eng = _make_engine(engine, program, database, idb, plan_order, tracer)
    checkpointing = checkpoint_sink is not None and checkpoint_every > 0

    def make_snapshot(complete: bool = False) -> EvaluationSnapshot:
        sync_intern_hits()
        snap_stats = stats.copy()
        snap_stats.wall_time_seconds = base_wall + (time.perf_counter() - started)
        return EvaluationSnapshot(
            strategy="naive",
            completed_sccs=0,
            scc_index=None,
            iteration=stats.iterations,
            idb={pred: rel.rows() for pred, rel in idb.items()},
            delta=None,
            stats=snap_stats,
            complete=complete,
            interner=None if interner is None else tuple(interner.values),
        )

    def relation_of(predicate: str, arity: int) -> Relation:
        if predicate in idb_preds:
            return idb[predicate]
        return database.relation(predicate, arity)

    plans = [eng.make_plan(rule, None) for rule in program.rules]

    def fire_rule(plan) -> bool:
        head_relation = idb[plan.rule.head.predicate]
        rows_before = stats.rows_scanned
        results = eng.run(plan, relation_of, None, stats, governor)
        stats.rule_firings += eng.result_count(results)
        key = plan.rule_key
        stats.rows_scanned_by_rule[key] = (
            stats.rows_scanned_by_rule.get(key, 0) + stats.rows_scanned - rows_before
        )
        changed = eng.derive(plan, results, head_relation, None, prov, stats) > 0
        if governor is not None:
            governor.check("evaluate", stats)
        return changed

    def partial_result() -> EvaluationResult:
        return EvaluationResult(
            idb=idb, stats=stats, program=program, database=database, provenance=prov
        )

    try:
        with tracer.span(
            "evaluate", strategy="naive", engine=eng.name, rules=len(program.rules)
        ) as root:
            changed = True
            while changed:
                changed = False
                stats.iterations += 1
                if governor is not None:
                    governor.check("evaluate", stats)
                if trace_on:
                    tracer.event("iteration", index=stats.iterations, delta_in=None)
                for plan in plans:
                    if not trace_on:
                        changed |= fire_rule(plan)
                        continue
                    before = (
                        stats.probes,
                        stats.rows_scanned,
                        stats.facts_derived,
                        stats.rule_firings,
                        stats.index_builds,
                    )
                    with tracer.span(
                        "rule",
                        predicate=plan.rule.head.predicate,
                        rule=plan.rule_key,
                        iteration=stats.iterations,
                    ) as span:
                        changed |= fire_rule(plan)
                        span.set(
                            firings=stats.rule_firings - before[3],
                            probes=stats.probes - before[0],
                            rows_scanned=stats.rows_scanned - before[1],
                            facts_derived=stats.facts_derived - before[2],
                            index_builds=stats.index_builds - before[4],
                        )
                if checkpointing and stats.iterations % checkpoint_every == 0:
                    checkpoint_sink(make_snapshot())
            if checkpoint_sink is not None:
                checkpoint_sink(make_snapshot(complete=True))
            if trace_on:
                root.set(
                    **{k: v for k, v in stats.as_dict().items() if isinstance(v, int)}
                )
    except EvaluationAborted as exc:
        stats.budget_trips += 1
        sync_intern_hits()
        stats.wall_time_seconds = base_wall + (time.perf_counter() - started)
        if trace_on:
            tracer.event(
                "budget.trip",
                phase=exc.phase or "evaluate",
                limit=exc.limit or "",
                facts_derived=stats.facts_derived,
                iterations=stats.iterations,
            )
        raise exc.with_context(
            phase="evaluate", partial=partial_result(), stats=stats
        ) from None
    sync_intern_hits()
    stats.wall_time_seconds = base_wall + (time.perf_counter() - started)
    return partial_result()


def evaluate_query(program: Program, database: Database) -> frozenset[Row]:
    """Convenience wrapper: evaluate and return the query relation's rows."""
    return evaluate(program, database).query_rows()


@dataclass
class DerivationNode:
    """A node of a ground derivation tree (paper, Section 2).

    Goal nodes carry a fact; the ``rule`` of an IDB goal node is the rule
    node below it, with ``children`` being the goal nodes of the rule's
    positive subgoals.  EDB goal nodes are leaves (``rule is None``).
    """

    predicate: str
    row: Row
    rule: Rule | None = None
    children: list["DerivationNode"] = field(default_factory=list)

    def leaves(self) -> list["DerivationNode"]:
        if self.rule is None:
            return [self]
        result: list[DerivationNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def goal_nodes(self) -> list["DerivationNode"]:
        """All goal nodes of the tree (this node included)."""
        result = [self]
        for child in self.children:
            result.extend(child.goal_nodes())
        return result

    def render(self, indent: str = "") -> str:
        label = f"{self.predicate}({', '.join(map(repr, self.row))})"
        lines = [f"{indent}{label}" + ("" if self.rule is None else f"   [{self.rule!r}]")]
        for child in self.children:
            lines.append(child.render(indent + "  "))
        return "\n".join(lines)


def derivation_tree(result: EvaluationResult, predicate: str, row: Sequence[object]) -> DerivationNode:
    """Reconstruct a derivation tree for a derived fact.

    Requires the evaluation to have been run with ``provenance=True``.
    The provenance records first derivations, so the reconstruction is
    well-founded (no cycles).
    """
    if result.provenance is None:
        raise ValueError("evaluation was run without provenance=True")
    row = tuple(row)
    idb_preds = result.program.idb_predicates

    def build(fact: Fact) -> DerivationNode:
        pred, fact_row = fact
        if pred not in idb_preds:
            return DerivationNode(pred, fact_row)
        entry = result.provenance.get(fact)
        if entry is None:
            raise KeyError(f"fact {pred}{fact_row} was not derived")
        rule, supports = entry
        node = DerivationNode(pred, fact_row, rule=rule)
        node.children = [build(s) for s in supports]
        return node

    return build((predicate, row))
