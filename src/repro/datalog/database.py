"""EDB storage: two interchangeable backends behind one relation contract.

A :class:`Database` maps EDB predicate names to relation objects and
owns the **storage backend** that decides how those relations hold
their tuples (see ``docs/storage.md`` for the full contract):

* ``storage="rows"`` — :class:`Relation`: per-row tuple sets of plain
  Python values (the ``value`` payloads of
  :class:`~repro.datalog.terms.Constant`) with lazily built hash
  indexes keyed by the bound argument positions a join probe uses.
  This is the seed backend the tuple-at-a-time engines run on.
* ``storage="columnar"`` — :class:`ColumnarRelation`: dictionary-encoded
  column arrays over a per-database :class:`Interner` that maps every
  constant to a dense int code.  Hash indexes are built over the int
  columns, and the compiled slot engine executes **batched block
  kernels** over them (:meth:`repro.datalog.plan.RulePlan.run_blocks`)
  — one kernel invocation per join step per delta block instead of one
  slot environment per row.

Both backends expose the same value-level API (``add`` / ``probe`` /
``index_for`` / ``all_rows`` / ``rows`` / ``to_rows`` / containment),
so every consumer — the interpreted engine, reports, digests,
checkpoints — works unchanged on either; fixpoint digests are computed
over decoded rows and are byte-identical across backends.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import Iterable, Iterator, Mapping, Sequence

from .atoms import Atom
from .terms import Constant

__all__ = ["STORAGES", "Interner", "Relation", "ColumnarRelation", "Database"]

Value = object
Row = tuple

#: Valid ``storage`` arguments of :class:`Database` (and ``evaluate``).
STORAGES = ("rows", "columnar")

#: Probe-side sentinel for constants that were never interned: it hashes
#: and compares like any object but equals no real code, so a probe key
#: containing it simply misses every index bucket and row set.
_MISSING = object()


class Interner:
    """Dictionary encoding: constants to dense int codes, per database.

    Codes are assigned in first-intern order (``0, 1, 2, …``) and never
    change, so code columns stay valid as relations grow.  Lookup uses
    Python ``==``/``hash`` semantics — values that compare equal
    (``1``, ``1.0``, ``True``) share one code, exactly as they collapse
    into one element of a row-backend tuple set, so interning never
    changes which rows a database can tell apart.

    ``hits`` counts interning calls that found an existing code — the
    ``intern_hits`` evaluation counter reports the delta accumulated
    during one evaluation.
    """

    __slots__ = ("codes", "values", "hits")

    def __init__(self, values: Iterable[Value] = ()):
        self.codes: dict = {}
        self.values: list = []
        self.hits = 0
        for value in values:
            self.intern(value)

    def intern(self, value: Value) -> int:
        """The code for ``value``, assigning a fresh one on first sight."""
        code = self.codes.get(value)
        if code is None:
            code = len(self.values)
            self.codes[value] = code
            self.values.append(value)
        else:
            self.hits += 1
        return code

    def code_of(self, value: Value):
        """Probe-side lookup: the code, or the missing sentinel.

        Never inserts — probe constants must not pollute the dictionary
        with values the data never contained.
        """
        return self.codes.get(value, _MISSING)

    def decode(self, code: int) -> Value:
        return self.values[code]

    def to_list(self) -> list:
        """The value table in code order (JSON-ready for checkpoints)."""
        return list(self.values)

    def digest(self) -> str:
        """SHA-256 over the value table in code order.

        Two interners with equal digests assign the same code to every
        value, so code columns and shard messages produced against one
        decode identically against the other.  This is the equality the
        parallel workers' mirrors are held to.
        """
        hasher = hashlib.sha256()
        for value in self.values:
            hasher.update(repr(value).encode("utf-8"))
            hasher.update(b"\x00")
        return hasher.hexdigest()

    def __reduce__(self):
        # Pickle only the value table: codes are a pure function of it
        # (first-intern order) and ``hits`` is process-local telemetry.
        # This keeps worker hand-off payloads compact and guarantees the
        # unpickled interner assigns identical codes.
        return (Interner, (list(self.values),))

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Interner(values={len(self.values)}, hits={self.hits})"


class Relation:
    """A set of same-arity tuples with lazily built hash indexes."""

    __slots__ = ("arity", "_rows", "_indexes")

    def __init__(self, arity: int, rows: Iterable[Row] = ()):
        self.arity = arity
        self._rows: set[Row] = set()
        self._indexes: dict[tuple[int, ...], dict[Row, list[Row]]] = {}
        for row in rows:
            self.add(row)

    def add(self, row: Sequence[Value]) -> bool:
        """Insert a tuple; return True when it was new."""
        row = tuple(row)
        if len(row) != self.arity:
            raise ValueError(f"arity mismatch: expected {self.arity}, got {len(row)}")
        if row in self._rows:
            return False
        self._rows.add(row)
        for positions, index in self._indexes.items():
            key = tuple(row[i] for i in positions)
            index.setdefault(key, []).append(row)
        return True

    def __contains__(self, row: Sequence[Value]) -> bool:
        return tuple(row) in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> frozenset[Row]:
        return frozenset(self._rows)

    def probe(self, positions: tuple[int, ...], key: Row) -> list[Row]:
        """Rows whose projection on ``positions`` equals ``key``.

        Builds (and caches) a hash index for ``positions`` on first use.
        An empty ``positions`` short-circuits to all rows — no degenerate
        empty-keyed index is ever built or cached.
        """
        if not positions:
            return list(self._rows)
        return self.index_for(positions).get(key, [])

    def index_for(self, positions: tuple[int, ...], stats=None) -> dict[Row, list[Row]]:
        """The hash index keyed by the projection on ``positions``.

        Built lazily on first use and kept incrementally up to date by
        :meth:`add`, so one index serves every probe and every
        semi-naive iteration.  A build increments ``stats.index_builds``
        when a stats object is given.  ``positions`` must be non-empty —
        full scans go through :meth:`all_rows` instead.
        """
        if not positions:
            raise ValueError("index_for needs bound positions; use all_rows() for full scans")
        index = self._indexes.get(positions)
        if index is None:
            built: dict[Row, list[Row]] = defaultdict(list)
            for row in self._rows:
                built[tuple(row[i] for i in positions)].append(row)
            index = self._indexes[positions] = dict(built)
            if stats is not None:
                stats.index_builds += 1
        return index

    def has_index(self, positions: tuple[int, ...]) -> bool:
        """Whether the index for ``positions`` has already been built."""
        return positions in self._indexes

    def all_rows(self) -> set[Row]:
        """The internal row set (read-only view — do not mutate).

        The no-index fast path for fully unbound probes and for
        membership tests."""
        return self._rows

    def to_rows(self) -> list[Row]:
        """The rows as a deterministically ordered list (sorted by repr).

        The serialization counterpart of :meth:`rows`: JSON-ready (rows
        stay tuples; callers listify) and stable across runs, so
        serialized relations diff and digest cleanly.
        """
        return sorted(self._rows, key=repr)

    def copy(self) -> "Relation":
        return Relation(self.arity, self._rows)

    def __repr__(self) -> str:
        return f"Relation(arity={self.arity}, rows={len(self._rows)})"


class ColumnarRelation:
    """Dictionary-encoded columnar storage behind the relation contract.

    Rows live as parallel **code columns** (``columns[i][rowid]`` is the
    int code of row ``rowid``'s value at position ``i``) over a shared
    :class:`Interner`; ``_row_set`` holds the code tuples for O(1)
    dedup/containment.  Code-level hash indexes
    (:meth:`index_codes`) map a projection of int codes to rowid lists
    and are maintained incrementally on insert — they are what the
    batched block kernels of :mod:`repro.datalog.plan` probe.

    The value-level :class:`Relation` API (``probe`` / ``index_for`` /
    ``all_rows`` / ``rows`` / iteration / containment) is provided by
    decoding through the interner, so the tuple-at-a-time interpreter
    and every serialization path run unchanged on this backend.  The
    decoded row set and any value-level indexes are caches kept
    incrementally up to date by :meth:`add_codes`.
    """

    __slots__ = (
        "arity",
        "interner",
        "columns",
        "_row_set",
        "_code_indexes",
        "_value_indexes",
        "_decoded",
    )

    def __init__(self, arity: int, interner: Interner, rows: Iterable[Row] = ()):
        self.arity = arity
        self.interner = interner
        self.columns: list[list[int]] = [[] for _ in range(arity)]
        self._row_set: set[tuple[int, ...]] = set()
        self._code_indexes: dict[tuple[int, ...], dict] = {}
        self._value_indexes: dict[tuple[int, ...], dict[Row, list[Row]]] = {}
        self._decoded: set[Row] | None = None
        for row in rows:
            self.add(row)

    # -- writes ---------------------------------------------------------
    def add(self, row: Sequence[Value]) -> bool:
        """Insert a value tuple (interning it); return True when new."""
        row = tuple(row)
        if len(row) != self.arity:
            raise ValueError(f"arity mismatch: expected {self.arity}, got {len(row)}")
        intern = self.interner.intern
        return self.add_codes(tuple(intern(v) for v in row))

    def add_codes(self, codes: tuple[int, ...]) -> bool:
        """Insert an already-encoded row; return True when it was new.

        The code-level write path the block kernels use: appends one
        code per column, records the rowid in every built code index,
        and keeps the decoded caches (when materialized) in sync.
        """
        if codes in self._row_set:
            return False
        self._row_set.add(codes)
        for column, code in zip(self.columns, codes):
            column.append(code)
        if self._code_indexes:
            rowid = len(self._row_set) - 1
            for positions, index in self._code_indexes.items():
                if len(positions) == 1:
                    key = codes[positions[0]]
                else:
                    key = tuple(codes[i] for i in positions)
                index.setdefault(key, []).append(rowid)
        if self._decoded is not None or self._value_indexes:
            values = self.interner.values
            row = tuple(values[c] for c in codes)
            if self._decoded is not None:
                self._decoded.add(row)
            for positions, index in self._value_indexes.items():
                key = tuple(row[i] for i in positions)
                index.setdefault(key, []).append(row)
        return True

    def extend_codes(self, rows: Iterable[tuple[int, ...]]) -> int:
        """Bulk :meth:`add_codes`: insert a batch of code tuples.

        Returns the number of rows that were new.  While the relation
        has no built indexes and no decoded caches the batch extends
        the row set and the columns wholesale — one update per column
        instead of one per cell — which is the hot path for shard
        hand-off in :mod:`repro.parallel`; otherwise it falls back to
        per-row inserts so every incremental structure stays in sync.
        """
        live = self._row_set
        batch: set = set()
        fresh = []
        for codes in rows:
            if codes in live or codes in batch:
                continue
            batch.add(codes)
            fresh.append(codes)
        if not fresh:
            return 0
        if (
            not self._code_indexes
            and not self._value_indexes
            and self._decoded is None
        ):
            self._row_set.update(fresh)
            for column, extension in zip(self.columns, zip(*fresh)):
                column.extend(extension)
        else:
            for codes in fresh:
                self.add_codes(codes)
        return len(fresh)

    # -- code-level reads (the block-kernel API) ------------------------
    def code_rows(self) -> set[tuple[int, ...]]:
        """The live set of code tuples (read-only view — do not mutate)."""
        return self._row_set

    def index_codes(self, positions: tuple[int, ...], stats=None) -> dict:
        """The code-level hash index for ``positions`` → rowid lists.

        Keys are bare int codes for single-position indexes (no tuple
        allocation on the probe hot path) and code tuples otherwise.
        Built lazily, maintained incrementally by :meth:`add_codes`;
        a build increments ``stats.index_builds`` when stats are given.
        """
        if not positions:
            raise ValueError("index_codes needs bound positions; scan columns for full scans")
        index = self._code_indexes.get(positions)
        if index is None:
            index = {}
            if len(positions) == 1:
                for rowid, code in enumerate(self.columns[positions[0]]):
                    index.setdefault(code, []).append(rowid)
            else:
                key_columns = [self.columns[i] for i in positions]
                for rowid, key in enumerate(zip(*key_columns)):
                    index.setdefault(key, []).append(rowid)
            self._code_indexes[positions] = index
            if stats is not None:
                stats.index_builds += 1
        return index

    def has_code_index(self, positions: tuple[int, ...]) -> bool:
        return positions in self._code_indexes

    # -- value-level reads (the Relation contract) ----------------------
    def _decoded_rows(self) -> set[Row]:
        if self._decoded is None:
            values = self.interner.values
            self._decoded = {
                tuple(values[c] for c in codes) for codes in self._row_set
            }
        return self._decoded

    def __contains__(self, row: Sequence[Value]) -> bool:
        get = self.interner.codes.get
        codes = []
        for value in row:
            code = get(value)
            if code is None:
                return False
            codes.append(code)
        return tuple(codes) in self._row_set

    def __iter__(self) -> Iterator[Row]:
        return iter(self._decoded_rows())

    def __len__(self) -> int:
        return len(self._row_set)

    def rows(self) -> frozenset[Row]:
        return frozenset(self._decoded_rows())

    def probe(self, positions: tuple[int, ...], key: Row) -> list[Row]:
        """Decoded rows matching ``key`` on ``positions`` (Relation API)."""
        if not positions:
            return list(self._decoded_rows())
        return self.index_for(positions).get(tuple(key), [])

    def index_for(self, positions: tuple[int, ...], stats=None) -> dict[Row, list[Row]]:
        """A value-level hash index (decoded view of :meth:`index_codes`).

        Kept incrementally up to date by :meth:`add_codes` once built,
        exactly like :meth:`Relation.index_for`, so the tuple-at-a-time
        engines can run unchanged on columnar storage.
        """
        if not positions:
            raise ValueError("index_for needs bound positions; use all_rows() for full scans")
        index = self._value_indexes.get(positions)
        if index is None:
            built: dict[Row, list[Row]] = defaultdict(list)
            for row in self._decoded_rows():
                built[tuple(row[i] for i in positions)].append(row)
            index = self._value_indexes[positions] = dict(built)
            if stats is not None:
                stats.index_builds += 1
        return index

    def has_index(self, positions: tuple[int, ...]) -> bool:
        return positions in self._value_indexes

    def all_rows(self) -> set[Row]:
        """The decoded row set (cached; read-only view — do not mutate)."""
        return self._decoded_rows()

    def to_rows(self) -> list[Row]:
        """Decoded rows, deterministically ordered (sorted by repr)."""
        return sorted(self._decoded_rows(), key=repr)

    def copy(self) -> "ColumnarRelation":
        """An independent relation **sharing** this one's interner.

        Codes are append-only, so sharing the dictionary keeps copies
        cheap and code columns mutually valid; indexes and caches are
        not copied (they rebuild lazily).
        """
        fresh = ColumnarRelation(self.arity, self.interner)
        fresh.columns = [list(column) for column in self.columns]
        fresh._row_set = set(self._row_set)
        return fresh

    def __repr__(self) -> str:
        return f"ColumnarRelation(arity={self.arity}, rows={len(self._row_set)})"


class Database:
    """A mapping from predicate names to relations (the EDB).

    Construct from ground :class:`Atom` facts or ``(predicate, row)``
    pairs; query with :meth:`relation` / :meth:`contains`.  ``storage``
    selects the backend every relation of this database uses:
    ``"rows"`` (:class:`Relation`, the seed tuple-set backend) or
    ``"columnar"`` (:class:`ColumnarRelation` over one shared
    :class:`Interner` owned by the database).  The engines create their
    IDB/delta relations through :meth:`new_relation`, so evaluation
    runs entirely in the database's native backend.
    """

    __slots__ = ("_relations", "storage", "interner")

    def __init__(
        self,
        facts: Iterable[Atom] = (),
        *,
        storage: str = "rows",
        interner: "Interner | None" = None,
    ):
        if storage not in STORAGES:
            raise ValueError(
                f"unknown storage {storage!r} (valid: {', '.join(STORAGES)})"
            )
        self.storage = storage
        self.interner = (
            (interner if interner is not None else Interner())
            if storage == "columnar"
            else None
        )
        self._relations: dict[str, Relation | ColumnarRelation] = {}
        for fact in facts:
            self.add_fact(fact)

    @classmethod
    def from_rows(
        cls,
        rows_by_predicate: Mapping[str, Iterable[Sequence[Value]]],
        *,
        storage: str = "rows",
    ) -> "Database":
        """Build a database directly from raw value tuples."""
        db = cls(storage=storage)
        for predicate, rows in rows_by_predicate.items():
            for row in rows:
                db.add_row(predicate, tuple(row))
        return db

    def new_relation(self, arity: int) -> "Relation | ColumnarRelation":
        """An empty relation in this database's storage backend.

        The factory the engines use for IDB and delta relations, so
        derived relations share the database's interner (codes from the
        EDB and the IDB live in one dictionary) and the whole
        evaluation stays in one backend.
        """
        if self.storage == "columnar":
            return ColumnarRelation(arity, self.interner)
        return Relation(arity)

    def to_storage(self, storage: str) -> "Database":
        """This database converted to ``storage`` (self when it already is).

        Conversion walks predicates and rows in deterministic
        (sorted-by-repr) order, so a columnar conversion assigns interner
        codes reproducibly for identical inputs.
        """
        if storage not in STORAGES:
            raise ValueError(
                f"unknown storage {storage!r} (valid: {', '.join(STORAGES)})"
            )
        if storage == self.storage:
            return self
        db = Database(storage=storage)
        for predicate, relation in sorted(self._relations.items()):
            target = db.new_relation(relation.arity)
            for row in relation.to_rows():
                target.add(row)
            db._relations[predicate] = target
        return db

    def add_fact(self, fact: Atom) -> bool:
        if not fact.is_ground():
            raise ValueError(f"fact {fact} is not ground")
        row = tuple(arg.value for arg in fact.args)  # type: ignore[union-attr]
        return self.add_row(fact.predicate, row)

    def add_row(self, predicate: str, row: Sequence[Value]) -> bool:
        relation = self._relations.get(predicate)
        if relation is None:
            relation = self.new_relation(len(row))
            self._relations[predicate] = relation
        return relation.add(row)

    def relation(self, predicate: str, arity: int | None = None) -> "Relation | ColumnarRelation":
        """The relation for ``predicate`` (an empty one if absent)."""
        relation = self._relations.get(predicate)
        if relation is None:
            if arity is None:
                raise KeyError(f"unknown predicate {predicate} (pass arity for an empty relation)")
            return self.new_relation(arity)
        return relation

    def contains(self, predicate: str, row: Sequence[Value]) -> bool:
        relation = self._relations.get(predicate)
        return relation is not None and tuple(row) in relation

    def predicates(self) -> frozenset[str]:
        return frozenset(self._relations)

    def facts(self) -> Iterator[Atom]:
        """Iterate all stored facts as ground atoms."""
        for predicate in sorted(self._relations):
            for row in sorted(self._relations[predicate], key=repr):
                yield Atom(predicate, tuple(Constant(v) for v in row))

    def size(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def to_dict(self, *, include_interner: bool = False) -> dict[str, dict[str, object]]:
        """A JSON-ready snapshot: predicate -> ``{"arity", "rows"}``.

        Rows become lists (JSON has no tuples); :meth:`from_dict`
        restores them.  Row values must be JSON scalars (ints, strings,
        floats, bools, ``None``) for the round trip to be lossless —
        which is what every parser-produced fact contains.

        Rows are always **decoded** values, never interner codes, so the
        default payload — and therefore every workload digest computed
        over it — is byte-identical across storage backends.  With
        ``include_interner=True`` a columnar database additionally
        writes its value table under the reserved ``"__interner__"``
        key, so :meth:`from_dict` can rebuild the same code assignment.
        """
        payload: dict[str, dict[str, object]] = {
            predicate: {
                "arity": relation.arity,
                "rows": [list(row) for row in relation.to_rows()],
            }
            for predicate, relation in sorted(self._relations.items())
        }
        if include_interner and self.interner is not None:
            payload["__interner__"] = {"values": self.interner.to_list()}
        return payload

    @classmethod
    def from_dict(
        cls,
        payload: Mapping[str, Mapping[str, object]],
        *,
        storage: str | None = None,
    ) -> "Database":
        """Rebuild a database from a :meth:`to_dict` snapshot.

        Arity is honored even for empty relations, so an empty relation
        survives the round trip instead of degenerating to "unknown
        predicate".  A payload carrying ``"__interner__"`` restores a
        columnar database with the saved code assignment; ``storage``
        overrides the inferred backend (default: columnar when an
        interner travelled with the payload, rows otherwise).
        """
        entries = dict(payload)
        interner_entry = entries.pop("__interner__", None)
        if storage is None:
            storage = "columnar" if interner_entry is not None else "rows"
        interner = None
        if storage == "columnar" and interner_entry is not None:
            interner = Interner(interner_entry["values"])  # type: ignore[index]
        db = cls(storage=storage, interner=interner)
        for predicate, entry in entries.items():
            relation = db.new_relation(int(entry["arity"]))  # type: ignore[call-overload]
            for row in entry["rows"]:  # type: ignore[union-attr]
                relation.add(tuple(row))
            db._relations[predicate] = relation
        return db

    def copy(self) -> "Database":
        """An independent database in the same storage backend.

        Columnar copies **share** the interner (codes are append-only,
        so sharing keeps them mutually valid and copies cheap); rows,
        indexes and caches are per-copy.
        """
        db = Database(storage=self.storage, interner=self.interner)
        db._relations = {p: r.copy() for p, r in self._relations.items()}
        return db

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}:{len(r)}" for p, r in sorted(self._relations.items()))
        return f"Database({inner})"
