"""EDB storage: relations of ground tuples with on-demand hash indexes.

A :class:`Database` maps EDB predicate names to :class:`Relation`
objects.  Relations store tuples of plain Python values (the ``value``
payloads of :class:`~repro.datalog.terms.Constant`) and build hash
indexes lazily, keyed by the set of bound argument positions that a join
probe uses.  This is the substrate the semi-naive engine
(:mod:`repro.datalog.evaluation`) runs on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Mapping, Sequence

from .atoms import Atom
from .terms import Constant

__all__ = ["Relation", "Database"]

Value = object
Row = tuple


class Relation:
    """A set of same-arity tuples with lazily built hash indexes."""

    __slots__ = ("arity", "_rows", "_indexes")

    def __init__(self, arity: int, rows: Iterable[Row] = ()):
        self.arity = arity
        self._rows: set[Row] = set()
        self._indexes: dict[tuple[int, ...], dict[Row, list[Row]]] = {}
        for row in rows:
            self.add(row)

    def add(self, row: Sequence[Value]) -> bool:
        """Insert a tuple; return True when it was new."""
        row = tuple(row)
        if len(row) != self.arity:
            raise ValueError(f"arity mismatch: expected {self.arity}, got {len(row)}")
        if row in self._rows:
            return False
        self._rows.add(row)
        for positions, index in self._indexes.items():
            key = tuple(row[i] for i in positions)
            index.setdefault(key, []).append(row)
        return True

    def __contains__(self, row: Sequence[Value]) -> bool:
        return tuple(row) in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> frozenset[Row]:
        return frozenset(self._rows)

    def probe(self, positions: tuple[int, ...], key: Row) -> list[Row]:
        """Rows whose projection on ``positions`` equals ``key``.

        Builds (and caches) a hash index for ``positions`` on first use.
        An empty ``positions`` short-circuits to all rows — no degenerate
        empty-keyed index is ever built or cached.
        """
        if not positions:
            return list(self._rows)
        return self.index_for(positions).get(key, [])

    def index_for(self, positions: tuple[int, ...], stats=None) -> dict[Row, list[Row]]:
        """The hash index keyed by the projection on ``positions``.

        Built lazily on first use and kept incrementally up to date by
        :meth:`add`, so one index serves every probe and every
        semi-naive iteration.  A build increments ``stats.index_builds``
        when a stats object is given.  ``positions`` must be non-empty —
        full scans go through :meth:`all_rows` instead.
        """
        if not positions:
            raise ValueError("index_for needs bound positions; use all_rows() for full scans")
        index = self._indexes.get(positions)
        if index is None:
            built: dict[Row, list[Row]] = defaultdict(list)
            for row in self._rows:
                built[tuple(row[i] for i in positions)].append(row)
            index = self._indexes[positions] = dict(built)
            if stats is not None:
                stats.index_builds += 1
        return index

    def has_index(self, positions: tuple[int, ...]) -> bool:
        """Whether the index for ``positions`` has already been built."""
        return positions in self._indexes

    def all_rows(self) -> set[Row]:
        """The internal row set (read-only view — do not mutate).

        The no-index fast path for fully unbound probes and for
        membership tests."""
        return self._rows

    def to_rows(self) -> list[Row]:
        """The rows as a deterministically ordered list (sorted by repr).

        The serialization counterpart of :meth:`rows`: JSON-ready (rows
        stay tuples; callers listify) and stable across runs, so
        serialized relations diff and digest cleanly.
        """
        return sorted(self._rows, key=repr)

    def copy(self) -> "Relation":
        return Relation(self.arity, self._rows)

    def __repr__(self) -> str:
        return f"Relation(arity={self.arity}, rows={len(self._rows)})"


class Database:
    """A mapping from predicate names to relations (the EDB).

    Construct from ground :class:`Atom` facts or ``(predicate, row)``
    pairs; query with :meth:`relation` / :meth:`contains`.
    """

    __slots__ = ("_relations",)

    def __init__(self, facts: Iterable[Atom] = ()):
        self._relations: dict[str, Relation] = {}
        for fact in facts:
            self.add_fact(fact)

    @classmethod
    def from_rows(cls, rows_by_predicate: Mapping[str, Iterable[Sequence[Value]]]) -> "Database":
        """Build a database directly from raw value tuples."""
        db = cls()
        for predicate, rows in rows_by_predicate.items():
            for row in rows:
                db.add_row(predicate, tuple(row))
        return db

    def add_fact(self, fact: Atom) -> bool:
        if not fact.is_ground():
            raise ValueError(f"fact {fact} is not ground")
        row = tuple(arg.value for arg in fact.args)  # type: ignore[union-attr]
        return self.add_row(fact.predicate, row)

    def add_row(self, predicate: str, row: Sequence[Value]) -> bool:
        relation = self._relations.get(predicate)
        if relation is None:
            relation = Relation(len(row))
            self._relations[predicate] = relation
        return relation.add(row)

    def relation(self, predicate: str, arity: int | None = None) -> Relation:
        """The relation for ``predicate`` (an empty one if absent)."""
        relation = self._relations.get(predicate)
        if relation is None:
            if arity is None:
                raise KeyError(f"unknown predicate {predicate} (pass arity for an empty relation)")
            return Relation(arity)
        return relation

    def contains(self, predicate: str, row: Sequence[Value]) -> bool:
        relation = self._relations.get(predicate)
        return relation is not None and tuple(row) in relation

    def predicates(self) -> frozenset[str]:
        return frozenset(self._relations)

    def facts(self) -> Iterator[Atom]:
        """Iterate all stored facts as ground atoms."""
        for predicate in sorted(self._relations):
            for row in sorted(self._relations[predicate], key=repr):
                yield Atom(predicate, tuple(Constant(v) for v in row))

    def size(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def to_dict(self) -> dict[str, dict[str, object]]:
        """A JSON-ready snapshot: predicate -> ``{"arity", "rows"}``.

        Rows become lists (JSON has no tuples); :meth:`from_dict`
        restores them.  Row values must be JSON scalars (ints, strings,
        floats, bools, ``None``) for the round trip to be lossless —
        which is what every parser-produced fact contains.
        """
        return {
            predicate: {
                "arity": relation.arity,
                "rows": [list(row) for row in relation.to_rows()],
            }
            for predicate, relation in sorted(self._relations.items())
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Mapping[str, object]]) -> "Database":
        """Rebuild a database from a :meth:`to_dict` snapshot.

        Arity is honored even for empty relations, so an empty relation
        survives the round trip instead of degenerating to "unknown
        predicate".
        """
        db = cls()
        for predicate, entry in payload.items():
            relation = Relation(int(entry["arity"]))  # type: ignore[call-overload]
            for row in entry["rows"]:  # type: ignore[union-attr]
                relation.add(tuple(row))
            db._relations[predicate] = relation
        return db

    def copy(self) -> "Database":
        db = Database()
        db._relations = {p: r.copy() for p, r in self._relations.items()}
        return db

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}:{len(r)}" for p, r in sorted(self._relations.items()))
        return f"Database({inner})"
