"""Datalog programs: rule collections with EDB/IDB structure.

A :class:`Program` bundles a set of rules with an optional distinguished
query predicate, and derives the EDB/IDB split, the predicate dependency
graph, recursion information and the *initialization rules* used by
Proposition 5.2 (emptiness testing).

The program classes of the paper are validated here:

* negation may only be applied to EDB predicates (``{not}``-programs);
* rules must be safe;
* IDB predicates never occur in integrity constraints (checked in
  :mod:`repro.constraints.integrity`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .atoms import Literal, OrderAtom
from .rules import Rule, UnsafeRuleError
from ..robustness.errors import ReproError

__all__ = ["Program", "ProgramError", "PredicateInfo"]


class ProgramError(ReproError, ValueError):
    """Raised when a rule set violates the paper's program classes."""


@dataclass(frozen=True)
class PredicateInfo:
    """Derived facts about one predicate of a program."""

    name: str
    arity: int
    is_idb: bool
    is_recursive: bool


@dataclass(frozen=True)
class Program:
    """An ordered, immutable collection of safe rules plus a query predicate."""

    rules: tuple[Rule, ...]
    query: str | None = None
    _pred_arity: Mapping[str, int] = field(default=None, repr=False, compare=False)  # type: ignore[assignment]

    def __init__(self, rules: Iterable[Rule], query: str | None = None, *, validate: bool = True):
        object.__setattr__(self, "rules", tuple(rules))
        object.__setattr__(self, "query", query)
        object.__setattr__(self, "_pred_arity", None)
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        arities: dict[str, int] = {}
        for rule in self.rules:
            try:
                rule.check_safe()
            except UnsafeRuleError as exc:
                raise ProgramError(str(exc)) from exc
            for atom in [rule.head] + [lit.atom for lit in rule.relational_literals]:
                known = arities.setdefault(atom.predicate, atom.arity)
                if known != atom.arity:
                    raise ProgramError(
                        f"predicate {atom.predicate} used with arities {known} and {atom.arity}"
                    )
        idb = {rule.head.predicate for rule in self.rules}
        for rule in self.rules:
            for lit in rule.negative_literals:
                if lit.predicate in idb:
                    raise ProgramError(
                        f"negated IDB subgoal {lit} in rule {rule}; only EDB negation is allowed"
                    )
        if self.query is not None and self.query not in idb:
            raise ProgramError(f"query predicate {self.query} has no rules")

    # ------------------------------------------------------------------
    # Predicate structure
    # ------------------------------------------------------------------
    @property
    def idb_predicates(self) -> frozenset[str]:
        return frozenset(rule.head.predicate for rule in self.rules)

    @property
    def edb_predicates(self) -> frozenset[str]:
        idb = self.idb_predicates
        preds: set[str] = set()
        for rule in self.rules:
            preds |= {p for p in rule.body_predicates() if p not in idb}
        return frozenset(preds)

    def arity_of(self, predicate: str) -> int:
        for rule in self.rules:
            if rule.head.predicate == predicate:
                return rule.head.arity
            for lit in rule.relational_literals:
                if lit.predicate == predicate:
                    return lit.atom.arity
        raise KeyError(predicate)

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        """All rules whose head predicate is ``predicate``."""
        return tuple(rule for rule in self.rules if rule.head.predicate == predicate)

    def initialization_rules(self) -> tuple[Rule, ...]:
        """Rules with no IDB predicate in the body (Proposition 5.2)."""
        idb = self.idb_predicates
        return tuple(
            rule
            for rule in self.rules
            if not any(lit.predicate in idb for lit in rule.relational_literals)
        )

    # ------------------------------------------------------------------
    # Dependency graph and recursion
    # ------------------------------------------------------------------
    def dependency_graph(self) -> dict[str, set[str]]:
        """Map each IDB predicate to the IDB predicates its rules use."""
        idb = self.idb_predicates
        graph: dict[str, set[str]] = {p: set() for p in idb}
        for rule in self.rules:
            graph[rule.head.predicate] |= {
                p for p in rule.body_predicates() if p in idb
            }
        return graph

    def _reachable(self, start: str) -> set[str]:
        graph = self.dependency_graph()
        seen: set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in graph.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def is_recursive_predicate(self, predicate: str) -> bool:
        """Whether ``predicate`` depends on itself (directly or mutually)."""
        return predicate in self._reachable(predicate)

    def is_recursive(self) -> bool:
        return any(self.is_recursive_predicate(p) for p in self.idb_predicates)

    def is_linear_recursive(self) -> bool:
        """At most one recursive IDB subgoal per rule."""
        for rule in self.rules:
            head = rule.head.predicate
            mutual = self._reachable(head) | {head}
            recursive_subgoals = [
                lit for lit in rule.relational_literals
                if lit.predicate in self.idb_predicates and head in self._reachable(lit.predicate) | {lit.predicate}
                and lit.predicate in mutual
            ]
            if len(recursive_subgoals) > 1:
                return False
        return True

    def predicate_info(self) -> dict[str, PredicateInfo]:
        infos: dict[str, PredicateInfo] = {}
        for pred in sorted(self.idb_predicates):
            infos[pred] = PredicateInfo(pred, self.arity_of(pred), True, self.is_recursive_predicate(pred))
        for pred in sorted(self.edb_predicates):
            infos[pred] = PredicateInfo(pred, self.arity_of(pred), False, False)
        return infos

    # ------------------------------------------------------------------
    # Classification (Section 2 notation)
    # ------------------------------------------------------------------
    def has_order_atoms(self) -> bool:
        return any(rule.order_atoms for rule in self.rules)

    def has_negation(self) -> bool:
        return any(rule.negative_literals for rule in self.rules)

    def classification(self) -> frozenset[str]:
        """The paper's class tag: subset of ``{"theta", "not"}``."""
        tags: set[str] = set()
        if self.has_order_atoms():
            tags.add("theta")
        if self.has_negation():
            tags.add("not")
        return frozenset(tags)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def with_query(self, query: str) -> "Program":
        return Program(self.rules, query)

    def with_rules(self, rules: Sequence[Rule]) -> "Program":
        return Program(tuple(rules), self.query)

    def relevant_rules(self) -> "Program":
        """Restrict to rules reachable from the query predicate (if set).

        No re-validation: the source program was already validated, and
        a query left without rules (e.g. after pruning passes) is a
        legitimate intermediate state the optimizer handles.
        """
        if self.query is None:
            return self
        keep = self._reachable(self.query) | {self.query}
        return Program(
            tuple(r for r in self.rules if r.head.predicate in keep),
            self.query,
            validate=False,
        )

    def __repr__(self) -> str:
        lines = [repr(rule) for rule in self.rules]
        if self.query is not None:
            lines.append(f"% query: {self.query}")
        return "\n".join(lines)
