"""Pretty-printing of programs, rules and constraint sets.

The ``repr`` of the IR classes is already parseable; this module adds
aligned multi-line rendering and round-trip helpers used by the examples
and by EXPERIMENTS.md generation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .program import Program
from .rules import Rule

__all__ = ["format_rule", "format_rules", "format_program", "format_constraints"]


def format_rule(rule: Rule, *, indent: str = "") -> str:
    """Render one rule with the body items comma-separated."""
    return f"{indent}{rule!r}"


def format_rules(rules: Sequence[Rule], *, indent: str = "") -> str:
    """Render a list of rules, one per line."""
    return "\n".join(format_rule(rule, indent=indent) for rule in rules)


def format_program(program: Program, *, header: str | None = None) -> str:
    """Render a program, grouping rules by head predicate."""
    lines: list[str] = []
    if header:
        lines.append(f"% {header}")
    seen: set[str] = set()
    for rule in program.rules:
        pred = rule.head.predicate
        if pred not in seen and seen:
            lines.append("")
        seen.add(pred)
        lines.append(format_rule(rule))
    if program.query is not None:
        lines.append(f"% query: {program.query}")
    return "\n".join(lines)


def format_constraints(constraints: Iterable[object]) -> str:
    """Render integrity constraints, one per line."""
    return "\n".join(repr(c) for c in constraints)
