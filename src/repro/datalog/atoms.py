"""Atoms and literals: relational atoms, order atoms, negated EDB atoms.

Following the paper's terminology (Section 2):

* an *atom* is a relational atom ``p(t1, ..., tn)`` appearing positively;
* an *order atom* is ``gamma theta delta`` where ``theta`` is one of
  ``< <= > >= = !=`` interpreted over a dense order;
* a *literal* is a relational atom appearing positively or negatively
  (negation is restricted to EDB predicates by the program classes the
  paper studies; :mod:`repro.datalog.program` enforces this).
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Iterable, Union

from .terms import Constant, Substitution, Term, Variable, is_variable

__all__ = [
    "Atom",
    "OrderAtom",
    "Literal",
    "BodyItem",
    "COMPARISONS",
    "negate_comparison",
    "flip_comparison",
    "evaluate_comparison",
]

#: The comparison predicates of the dense-order language.
COMPARISONS = ("<", "<=", ">", ">=", "=", "!=")

_NEGATION = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "=": "!=", "!=": "="}
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def negate_comparison(op: str) -> str:
    """The comparison equivalent to the negation of ``op`` on a total dense order."""
    return _NEGATION[op]


def flip_comparison(op: str) -> str:
    """The comparison with operand order swapped: ``x op y`` iff ``y flip(op) x``."""
    return _FLIP[op]


def evaluate_comparison(left: object, right: object, op: str) -> bool:
    """Evaluate ``left op right`` over Python values.

    Raises ``TypeError`` when the values are not mutually comparable
    (e.g. a number against a string), mirroring the single-sorted dense
    domain of the paper.
    """
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    left_numeric = isinstance(left, numbers.Real) and not isinstance(left, bool)
    right_numeric = isinstance(right, numbers.Real) and not isinstance(right, bool)
    if left_numeric != right_numeric:
        raise TypeError(f"values {left!r} and {right!r} are not order-comparable")
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"unknown comparison operator {op!r}")


@dataclass(frozen=True, slots=True)
class Atom:
    """A relational atom ``predicate(args...)``."""

    predicate: str
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> set[Variable]:
        """The set of variables appearing in the atom."""
        return {t for t in self.args if is_variable(t)}

    def constants(self) -> set[Constant]:
        """The set of constants appearing in the atom."""
        return {t for t in self.args if isinstance(t, Constant)}

    def is_ground(self) -> bool:
        return all(isinstance(t, Constant) for t in self.args)

    def substitute(self, theta: Substitution) -> "Atom":
        """Apply a substitution to every argument."""
        return Atom(self.predicate, tuple(theta.apply(t) for t in self.args))

    def rename_predicate(self, new_name: str) -> "Atom":
        return Atom(new_name, self.args)

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True, slots=True)
class OrderAtom:
    """A dense-order comparison ``left op right``."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISONS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def variables(self) -> set[Variable]:
        return {t for t in (self.left, self.right) if is_variable(t)}

    def constants(self) -> set[Constant]:
        return {t for t in (self.left, self.right) if isinstance(t, Constant)}

    def is_ground(self) -> bool:
        return not self.variables()

    def substitute(self, theta: Substitution) -> "OrderAtom":
        return OrderAtom(theta.apply(self.left), self.op, theta.apply(self.right))

    def negated(self) -> "OrderAtom":
        """The order atom equivalent to the negation of this one."""
        return OrderAtom(self.left, negate_comparison(self.op), self.right)

    def flipped(self) -> "OrderAtom":
        """The same constraint written with operands swapped."""
        return OrderAtom(self.right, flip_comparison(self.op), self.left)

    def normalized(self) -> "OrderAtom":
        """A canonical orientation (sorted operand rendering) for set membership.

        ``=`` and ``!=`` are symmetric and ``>`` / ``>=`` are rewritten
        to ``<`` / ``<=``, so that syntactically different but equivalent
        atoms compare equal after normalization.
        """
        atom = self
        if atom.op in (">", ">="):
            atom = atom.flipped()
        if atom.op in ("=", "!=") and str(atom.right) < str(atom.left):
            atom = atom.flipped()
        return atom

    def holds(self) -> bool:
        """Evaluate a ground order atom."""
        if not self.is_ground():
            raise ValueError(f"order atom {self} is not ground")
        assert isinstance(self.left, Constant) and isinstance(self.right, Constant)
        return evaluate_comparison(self.left.value, self.right.value, self.op)

    def __repr__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, slots=True)
class Literal:
    """A relational atom with a polarity.

    Negative literals are only legal on EDB predicates (checked at the
    program level, since polarity alone cannot know the predicate split).
    """

    atom: Atom
    positive: bool = True

    @property
    def predicate(self) -> str:
        return self.atom.predicate

    @property
    def args(self) -> tuple[Term, ...]:
        return self.atom.args

    def variables(self) -> set[Variable]:
        return self.atom.variables()

    def constants(self) -> set[Constant]:
        return self.atom.constants()

    def substitute(self, theta: Substitution) -> "Literal":
        return Literal(self.atom.substitute(theta), self.positive)

    def negated(self) -> "Literal":
        return Literal(self.atom, not self.positive)

    def __repr__(self) -> str:
        return repr(self.atom) if self.positive else f"not {self.atom!r}"


#: Anything that may appear in a rule body.
BodyItem = Union[Literal, OrderAtom]


def body_variables(body: Iterable[BodyItem]) -> set[Variable]:
    """All variables appearing in a body (any polarity, including order atoms)."""
    variables: set[Variable] = set()
    for item in body:
        variables |= item.variables()
    return variables
