"""Terms of the Datalog language: variables, constants and substitutions.

Terms are immutable and hashable so they can live inside atoms, rules,
frozensets and dictionary keys throughout the optimizer.  A
:class:`Substitution` is a mapping from variables to terms with the usual
apply/compose operations used by unification (:mod:`repro.datalog.unify`)
and by homomorphism search (:mod:`repro.cq.homomorphism`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Union

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "Substitution",
    "fresh_variables",
    "is_variable",
    "is_constant",
]


@dataclass(frozen=True, slots=True)
class Variable:
    """A logical variable.

    Variables are identified by name only; two ``Variable("X")`` objects
    are the same variable.  Names conventionally start with an uppercase
    letter or underscore (the parser enforces this; programmatic
    construction may use any string).
    """

    name: str

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant of the domain.

    The wrapped ``value`` may be an ``int``, ``float`` or ``str``.  Dense
    order comparisons (see :mod:`repro.constraints.dense_order`) are
    defined between numbers, and between strings, but not across the two
    families.
    """

    value: Union[int, float, str]

    def __repr__(self) -> str:
        if isinstance(self.value, str):
            return self.value if self.value[:1].islower() else f'"{self.value}"'
        return repr(self.value)

    def __str__(self) -> str:
        return repr(self)

    def comparable_with(self, other: "Constant") -> bool:
        """Whether ``self`` and ``other`` live on the same dense order."""
        self_numeric = isinstance(self.value, (int, float))
        other_numeric = isinstance(other.value, (int, float))
        return self_numeric == other_numeric


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """True when ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """True when ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)


class Substitution(Mapping[Variable, Term]):
    """An immutable mapping from variables to terms.

    Application is *not* recursive: each variable is replaced once by its
    image.  Compose substitutions explicitly when idempotence is needed
    (``unify`` always returns idempotent substitutions).
    """

    __slots__ = ("_mapping", "_hash")

    def __init__(self, mapping: Mapping[Variable, Term] | None = None):
        items = dict(mapping) if mapping else {}
        for var, term in items.items():
            if not isinstance(var, Variable):
                raise TypeError(f"substitution key must be a Variable, got {var!r}")
            if not isinstance(term, (Variable, Constant)):
                raise TypeError(f"substitution value must be a Term, got {term!r}")
        self._mapping = items
        self._hash: int | None = None

    def __getitem__(self, var: Variable) -> Term:
        return self._mapping[var]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._mapping.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._mapping == other._mapping

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}->{t}" for v, t in sorted(self._mapping.items(), key=lambda p: p[0].name))
        return "{" + inner + "}"

    def apply(self, term: Term) -> Term:
        """Return the image of ``term`` (terms not in the domain map to themselves)."""
        if isinstance(term, Variable):
            return self._mapping.get(term, term)
        return term

    def compose(self, other: "Substitution") -> "Substitution":
        """Return the substitution equivalent to applying ``self`` then ``other``."""
        composed: dict[Variable, Term] = {
            var: other.apply(term) for var, term in self._mapping.items()
        }
        for var, term in other.items():
            if var not in composed:
                composed[var] = term
        return Substitution(composed)

    def extend(self, var: Variable, term: Term) -> "Substitution":
        """Return a copy of ``self`` with the extra binding ``var -> term``."""
        updated = dict(self._mapping)
        updated[var] = term
        return Substitution(updated)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Return ``self`` restricted to the given variables."""
        keep = set(variables)
        return Substitution({v: t for v, t in self._mapping.items() if v in keep})

    def is_renaming(self) -> bool:
        """Whether the substitution maps variables injectively to variables."""
        images = list(self._mapping.values())
        return all(isinstance(t, Variable) for t in images) and len(set(images)) == len(images)


def fresh_variables(prefix: str = "V", *, avoid: Iterable[Variable] = ()) -> Iterator[Variable]:
    """Yield an infinite stream of variables ``prefix0, prefix1, ...``.

    Variables whose names collide with ``avoid`` are skipped, so the
    stream is always fresh with respect to the given context.
    """
    taken = {v.name for v in avoid}
    for i in itertools.count():
        name = f"{prefix}{i}"
        if name not in taken:
            yield Variable(name)
