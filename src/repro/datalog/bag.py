"""Bag (duplicate) semantics for nonrecursive programs.

The paper closes its introduction noting that the query-tree labeling
idea "is the key for extending semantic query optimization to other
cases in which queries cannot be represented as unions of conjunctive
queries, such as SQL queries involving aggregation and duplicates",
deferring details.  This module supplies the executable substrate for
the duplicates case:

* :class:`BagRelation` — rows with multiplicities;
* :func:`evaluate_bag` — SQL-style bag evaluation of a *nonrecursive*
  program (bag semantics of recursive Datalog is not well defined):
  a rule instantiation contributes the product of its positive
  subgoals' multiplicities, rules accumulate additively (UNION ALL);
* :func:`bag_equal` — comparison helper for the tests.

What this lets us demonstrate (see
``tests/datalog/test_bag_semantics.py``): injecting residue negations
(conditions that hold for every instantiation on constraint-consistent
databases) preserves bag semantics exactly — the optimization carries
over to duplicate-sensitive queries — while rewritings that duplicate
derivations (e.g. splitting a predicate into overlapping specializations
unioned back together) would not, which is exactly why the paper calls
the extension nontrivial.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

from .atoms import Literal, OrderAtom, evaluate_comparison
from .database import Database, Row
from .program import Program
from .rules import Rule
from .terms import Constant, Variable
from ..robustness.errors import ReproError

__all__ = ["BagRelation", "evaluate_bag", "bag_equal", "RecursiveProgramError"]


class RecursiveProgramError(ReproError, ValueError):
    """Bag evaluation is defined for nonrecursive programs only."""


class BagRelation:
    """A multiset of same-arity rows."""

    __slots__ = ("arity", "counts")

    def __init__(self, arity: int, rows: Iterable[Row] = ()):
        self.arity = arity
        self.counts: Counter = Counter()
        for row in rows:
            self.add(row)

    def add(self, row: Row, multiplicity: int = 1) -> None:
        if len(row) != self.arity:
            raise ValueError(f"arity mismatch: expected {self.arity}, got {len(row)}")
        if multiplicity <= 0:
            raise ValueError("multiplicity must be positive")
        self.counts[tuple(row)] += multiplicity

    def multiplicity(self, row: Row) -> int:
        return self.counts.get(tuple(row), 0)

    def support(self) -> frozenset[Row]:
        """The underlying set (rows with multiplicity >= 1)."""
        return frozenset(self.counts)

    def total(self) -> int:
        return sum(self.counts.values())

    def __len__(self) -> int:
        return len(self.counts)

    def __iter__(self):
        return iter(self.counts.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BagRelation):
            return NotImplemented
        return self.arity == other.arity and self.counts == other.counts

    def __repr__(self) -> str:
        return f"BagRelation(arity={self.arity}, rows={self.total()}, distinct={len(self.counts)})"


def _topological_idb_order(program: Program) -> list[str]:
    graph = program.dependency_graph()
    order: list[str] = []
    visiting: set[str] = set()
    done: set[str] = set()

    def visit(node: str) -> None:
        if node in done:
            return
        if node in visiting:
            raise RecursiveProgramError(
                f"predicate {node} is recursive; bag semantics is undefined"
            )
        visiting.add(node)
        for successor in sorted(graph.get(node, ())):
            visit(successor)
        visiting.discard(node)
        done.add(node)
        order.append(node)

    for node in sorted(graph):
        visit(node)
    return order


def evaluate_bag(
    program: Program,
    database: Database | Mapping[str, BagRelation],
) -> dict[str, BagRelation]:
    """Evaluate a nonrecursive program under bag semantics.

    ``database`` is either a plain :class:`Database` (every EDB fact has
    multiplicity 1) or a mapping from predicate names to
    :class:`BagRelation` (a true bag EDB).  Returns the bag for every
    IDB predicate.
    """
    if isinstance(database, Database):
        edb: dict[str, BagRelation] = {}
        for predicate in database.predicates():
            relation = database.relation(predicate)
            bag = BagRelation(relation.arity)
            for row in relation:
                bag.add(row)
            edb[predicate] = bag
    else:
        edb = dict(database)

    idb: dict[str, BagRelation] = {}

    def bag_of(predicate: str, arity: int) -> BagRelation:
        if predicate in idb:
            return idb[predicate]
        return edb.get(predicate, BagRelation(arity))

    for predicate in _topological_idb_order(program):
        result = BagRelation(program.arity_of(predicate))
        for rule in program.rules_for(predicate):
            for row, multiplicity in _rule_bag(rule, bag_of):
                result.add(row, multiplicity)
        idb[predicate] = result
    return idb


def _rule_bag(rule: Rule, bag_of):
    """Yield (head row, multiplicity) pairs for one rule."""
    items = list(rule.body)

    def descend(index: int, env: dict[Variable, object], multiplicity: int):
        if index == len(items):
            head_row = tuple(
                arg.value if isinstance(arg, Constant) else env[arg]
                for arg in rule.head.args
            )
            yield head_row, multiplicity
            return
        item = items[index]
        if isinstance(item, OrderAtom):
            left = item.left.value if isinstance(item.left, Constant) else env[item.left]
            right = item.right.value if isinstance(item.right, Constant) else env[item.right]
            if evaluate_comparison(left, right, item.op):
                yield from descend(index + 1, env, multiplicity)
            return
        assert isinstance(item, Literal)
        bag = bag_of(item.predicate, item.atom.arity)
        if not item.positive:
            row = tuple(
                arg.value if isinstance(arg, Constant) else env[arg]
                for arg in item.args
            )
            if bag.multiplicity(row) == 0:
                yield from descend(index + 1, env, multiplicity)
            return
        for row, count in bag:
            extended = dict(env)
            consistent = True
            for arg, value in zip(item.args, row):
                if isinstance(arg, Constant):
                    if arg.value != value:
                        consistent = False
                        break
                elif arg in extended:
                    if extended[arg] != value:
                        consistent = False
                        break
                else:
                    extended[arg] = value
            if consistent:
                yield from descend(index + 1, extended, multiplicity * count)

    # Reorder: positive literals first (bindings), then filters become
    # checkable; the recursion above checks filters lazily by position,
    # so move them after all positive literals to guarantee boundness.
    positives = [i for i in items if isinstance(i, Literal) and i.positive]
    others = [i for i in items if not (isinstance(i, Literal) and i.positive)]
    items = positives + others
    yield from descend(0, {}, 1)


def bag_equal(first: Mapping[str, BagRelation], second: Mapping[str, BagRelation]) -> bool:
    """Whether two IDB bag assignments agree on every predicate."""
    keys = set(first) | set(second)
    for key in keys:
        left, right = first.get(key), second.get(key)
        if left is None or right is None or left != right:
            return False
    return True
