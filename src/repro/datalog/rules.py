"""Rules: function-free Horn rules with order atoms and safe negation.

A :class:`Rule` has a head atom and a body of literals and order atoms.
Safety follows [Ull89]: every variable must be *limited* — it appears in
a positive relational subgoal, or is equated (possibly transitively,
through ``=`` order atoms) to a constant or to a limited variable.
Variables of negated subgoals and of non-equality order atoms must be
limited for the rule to be safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..robustness.errors import ReproError
from .atoms import Atom, BodyItem, Literal, OrderAtom, body_variables
from .terms import Constant, Substitution, Variable, fresh_variables, is_variable

__all__ = ["Rule", "limited_variables", "UnsafeRuleError"]


class UnsafeRuleError(ReproError, ValueError):
    """Raised when a rule (or constraint) fails the safety condition."""


def limited_variables(body: Sequence[BodyItem]) -> set[Variable]:
    """Compute the set of limited variables of a body.

    A variable is limited if it occurs in a positive relational subgoal,
    or an ``=`` order atom links it to a constant or a limited variable.
    The closure is computed to a fixpoint.
    """
    limited: set[Variable] = set()
    for item in body:
        if isinstance(item, Literal) and item.positive:
            limited |= item.variables()
    equalities = [item for item in body if isinstance(item, OrderAtom) and item.op == "="]
    changed = True
    while changed:
        changed = False
        for eq in equalities:
            left_ok = isinstance(eq.left, Constant) or eq.left in limited
            right_ok = isinstance(eq.right, Constant) or eq.right in limited
            if left_ok and is_variable(eq.right) and eq.right not in limited:
                limited.add(eq.right)  # type: ignore[arg-type]
                changed = True
            if right_ok and is_variable(eq.left) and eq.left not in limited:
                limited.add(eq.left)  # type: ignore[arg-type]
                changed = True
    return limited


@dataclass(frozen=True)
class Rule:
    """A Datalog rule ``head :- body``.

    The body is an ordered tuple; evaluation may reorder it, but the
    declared order is preserved for printing and for stable rewrites.
    """

    head: Atom
    body: tuple[BodyItem, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))

    # ------------------------------------------------------------------
    # Views over the body
    # ------------------------------------------------------------------
    @property
    def positive_literals(self) -> tuple[Literal, ...]:
        return tuple(i for i in self.body if isinstance(i, Literal) and i.positive)

    @property
    def negative_literals(self) -> tuple[Literal, ...]:
        return tuple(i for i in self.body if isinstance(i, Literal) and not i.positive)

    @property
    def order_atoms(self) -> tuple[OrderAtom, ...]:
        return tuple(i for i in self.body if isinstance(i, OrderAtom))

    @property
    def relational_literals(self) -> tuple[Literal, ...]:
        return tuple(i for i in self.body if isinstance(i, Literal))

    def body_predicates(self) -> set[str]:
        return {lit.predicate for lit in self.relational_literals}

    def is_fact(self) -> bool:
        return not self.body and self.head.is_ground()

    # ------------------------------------------------------------------
    # Variables and safety
    # ------------------------------------------------------------------
    def variables(self) -> set[Variable]:
        return self.head.variables() | body_variables(self.body)

    def constants(self) -> set[Constant]:
        consts = set(self.head.constants())
        for item in self.body:
            consts |= item.constants()
        return consts

    def is_safe(self) -> bool:
        """Whether every head / negated / order variable is limited."""
        limited = limited_variables(self.body)
        must_be_limited: set[Variable] = set(self.head.variables())
        for lit in self.negative_literals:
            must_be_limited |= lit.variables()
        for atom in self.order_atoms:
            must_be_limited |= atom.variables()
        return must_be_limited <= limited

    def check_safe(self) -> "Rule":
        """Return ``self``; raise :class:`UnsafeRuleError` if unsafe."""
        if not self.is_safe():
            unlimited = (self.head.variables() | body_variables(self.body)) - limited_variables(self.body)
            raise UnsafeRuleError(f"rule {self} is unsafe (unlimited variables may include {sorted(v.name for v in unlimited)})")
        return self

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def substitute(self, theta: Substitution) -> "Rule":
        return Rule(
            self.head.substitute(theta),
            tuple(item.substitute(theta) for item in self.body),
        )

    def rename_apart(self, avoid: Iterable[Variable], prefix: str = "R") -> "Rule":
        """Return a variant of the rule whose variables avoid ``avoid``."""
        avoid_set = set(avoid)
        own = sorted(self.variables(), key=lambda v: v.name)
        clashing = [v for v in own if v in avoid_set]
        if not clashing:
            return self
        stream = fresh_variables(prefix, avoid=avoid_set | set(own))
        renaming = Substitution({v: next(stream) for v in clashing})
        return self.substitute(renaming)

    def with_body(self, body: Sequence[BodyItem]) -> "Rule":
        return Rule(self.head, tuple(body))

    def with_extra_conditions(self, extra: Sequence[BodyItem]) -> "Rule":
        """Append conditions (e.g. negated residues) to the body, deduplicated."""
        existing = set(self.body)
        appended = tuple(item for item in extra if item not in existing)
        return Rule(self.head, self.body + appended)

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head!r}."
        inner = ", ".join(repr(item) for item in self.body)
        return f"{self.head!r} :- {inner}."
