"""Compiled slot-based join plans with cost-based body reordering.

This module is the compiled counterpart of the tuple-at-a-time
interpreter that seeded :mod:`repro.datalog.evaluation`.  A rule is
compiled **once per (rule, delta-position)** into a :class:`RulePlan`:

* variables are mapped to integer *slots* and the environment becomes a
  single fixed-size list that is overwritten in place while the join
  backtracks — no per-row ``dict`` copies.  Slot ownership is static
  (each scan step writes only the slots of variables it binds first),
  so backtracking needs no restore pass;
* each positive literal compiles to a *scan* step with a precomputed
  probe-key layout (constants inlined, bound variables read from their
  slots), ``sets`` (row position → slot) for newly bound variables and
  ``checks`` for repeated variables within the literal.  A literal
  whose positions are all bound compiles to an *existence check* — a
  set-membership test that scans zero rows;
* order atoms and negated EDB literals compile to filter steps that are
  flushed into the plan as soon as their variables are bound;
* the steps are folded into a chain of closures at compile time, so
  executing a plan is one call per step per surviving row.

Two body orderings are provided.  :func:`order_body_greedy` reproduces
the seed interpreter's static order (delta literal first, then
greedily by bound-argument count).  :func:`order_body_cost` adds a
cost model: literals are ordered by estimated scan cost
``relation_size × SELECTIVITY^bound_positions`` (fully bound literals
cost nothing — they become existence checks), so small relations such
as magic predicates are joined before large ones even when neither has
a bound argument yet.

Relations are accessed through :meth:`Relation.index_for` /
:meth:`Relation.all_rows`: the index for a probe's position set is
fetched **once per rule execution** (built lazily, reused across
semi-naive iterations) instead of once per probed row.

On columnar storage (``Database(storage="columnar")``, see
:mod:`repro.datalog.database` and ``docs/storage.md``) the same
compiled plan executes through :meth:`RulePlan.run_blocks` instead:
each step becomes one **batched kernel invocation over the whole
block** of surviving bindings — a probe loop over int-code keys against
a code-level hash index, followed by C-speed list-comprehension gathers
of the live columns — rather than one closure call per row.  The step
layouts (probe keys, sets, checks, filters) are shared between the two
executors, so both compute identical results from one compilation.
"""

from __future__ import annotations

from itertools import repeat as _repeat
from typing import Callable, Sequence

from .atoms import Literal, OrderAtom, evaluate_comparison
from .database import Relation
from .rules import Rule
from .terms import Constant, Variable

__all__ = [
    "RulePlan",
    "compile_rule",
    "order_body_greedy",
    "order_body_cost",
    "SELECTIVITY",
    "DEFAULT_IDB_ESTIMATE",
]

#: Estimated fraction of a relation surviving one bound argument position.
SELECTIVITY = 0.1

#: Size guess for IDB relations that are still empty when a plan is
#: compiled (recursive predicates grow after compilation).
DEFAULT_IDB_ESTIMATE = 16

#: ``size_of`` callback: estimated row count of a positive literal's relation.
SizeEstimator = Callable[[Literal], float]

_ORDERED_ITEM = tuple  # (BodyItem, is_delta)


# ----------------------------------------------------------------------
# Body ordering
# ----------------------------------------------------------------------
def _split_body(rule: Rule, delta_index: int | None):
    """Positive literals (with body indexes) and filter items, plus the
    delta pair pulled out of the positives (when requested)."""
    positives = [
        (idx, item)
        for idx, item in enumerate(rule.body)
        if isinstance(item, Literal) and item.positive
    ]
    filters = [
        item
        for item in rule.body
        if isinstance(item, OrderAtom) or (isinstance(item, Literal) and not item.positive)
    ]
    delta_pair = None
    if delta_index is not None:
        for pair in positives:
            if pair[0] == delta_index:
                delta_pair = pair
                positives.remove(pair)
                break
        if delta_pair is None:
            raise ValueError(f"delta index {delta_index} is not a positive literal of {rule}")
    return positives, filters, delta_pair


def _flush_filters(plan, bound, remaining_filters) -> None:
    """Append every filter whose variables are bound (to a fixpoint)."""
    progressing = True
    while progressing:
        progressing = False
        for item in list(remaining_filters):
            if item.variables() <= bound:
                plan.append((item, False))
                remaining_filters.remove(item)
                progressing = True


def _finish_order(rule, plan, remaining_filters) -> list[tuple]:
    if remaining_filters:
        # Safety guarantees this never happens for safe rules whose
        # filter variables are positively bound.
        raise ValueError(f"rule {rule} has filters with unbound variables")
    return plan


def order_body_greedy(rule: Rule, delta_index: int | None) -> list[tuple]:
    """The seed interpreter's static join order.

    Returns ``(body item, is_delta)`` pairs: the delta literal (when
    present) first, then positive literals greedily by bound-argument
    count (ties broken toward fewer fresh variables, then textual
    order), with filters flushed as soon as they are evaluable.
    """
    positives, filters, delta_pair = _split_body(rule, delta_index)
    plan: list[tuple] = []
    bound: set[Variable] = set()
    if delta_pair is not None:
        plan.append((delta_pair[1], True))
        bound |= delta_pair[1].variables()
    _flush_filters(plan, bound, filters)
    while positives:
        best = max(
            positives,
            key=lambda pair: (
                sum(
                    1
                    for arg in pair[1].args
                    if isinstance(arg, Constant) or arg in bound
                ),
                -len(pair[1].variables() - bound),
            ),
        )
        positives.remove(best)
        plan.append((best[1], False))
        bound |= best[1].variables()
        _flush_filters(plan, bound, filters)
    _flush_filters(plan, bound, filters)
    return _finish_order(rule, plan, filters)


def _scan_cost(literal: Literal, bound: set[Variable], size_of: SizeEstimator) -> float:
    bound_count = sum(
        1 for arg in literal.args if isinstance(arg, Constant) or arg in bound
    )
    arity = len(literal.args)
    if arity and bound_count == arity:
        return 0.0  # fully bound: compiles to an existence check, scans nothing
    return max(size_of(literal), 0.0) * (SELECTIVITY ** bound_count)


def order_body_cost(
    rule: Rule, delta_index: int | None, size_of: SizeEstimator
) -> list[tuple]:
    """Cost-based static join order.

    Like :func:`order_body_greedy` (delta literal first, filters
    flushed as soon as bound) but positive literals are chosen greedily
    by minimal estimated scan cost
    ``relation_size × SELECTIVITY^bound_positions``; ties prefer more
    bound positions, then textual order.  An empty relation costs 0 and
    is scanned first, short-circuiting the whole join.

    Once variables are bound, the choice is restricted to *connected*
    literals — ones sharing a bound variable or costing nothing — so a
    cheap but unrelated literal can never introduce a cross product
    (falling back to all literals when none is connected).
    """
    positives, filters, delta_pair = _split_body(rule, delta_index)
    plan: list[tuple] = []
    bound: set[Variable] = set()
    if delta_pair is not None:
        plan.append((delta_pair[1], True))
        bound |= delta_pair[1].variables()
    _flush_filters(plan, bound, filters)
    while positives:
        candidates = [
            pair
            for pair in positives
            if pair[1].variables() & bound
            or _scan_cost(pair[1], bound, size_of) == 0.0
        ] or positives
        best = min(
            candidates,
            key=lambda pair: (
                _scan_cost(pair[1], bound, size_of),
                -sum(
                    1
                    for arg in pair[1].args
                    if isinstance(arg, Constant) or arg in bound
                ),
                pair[0],
            ),
        )
        positives.remove(best)
        plan.append((best[1], False))
        bound |= best[1].variables()
        _flush_filters(plan, bound, filters)
    _flush_filters(plan, bound, filters)
    return _finish_order(rule, plan, filters)


# ----------------------------------------------------------------------
# Compiled steps
# ----------------------------------------------------------------------
# A term layout is a tuple of (is_slot, payload): payload is a slot
# index when is_slot, else an inlined constant value.


def _project(layout, env):
    return tuple(env[p] if s else p for s, p in layout)


class _ScanStep:
    """Probe (or fully scan) a relation, binding fresh variable slots."""

    __slots__ = ("literal", "is_delta", "rel_index", "key_positions", "key_layout", "sets", "checks")

    def __init__(self, literal, is_delta, rel_index, key_positions, key_layout, sets, checks):
        self.literal = literal
        self.is_delta = is_delta
        self.rel_index = rel_index
        self.key_positions = key_positions
        self.key_layout = key_layout
        self.sets = sets
        self.checks = checks

    def describe(self) -> str:
        tag = "scan*" if self.is_delta else "scan"
        key = f" key={list(self.key_positions)}" if self.key_positions else " full"
        return f"{tag} {self.literal!r}{key}"

    def compile(self, next_fn):
        rel_index = self.rel_index
        layout = self.key_layout
        sets = self.sets
        checks = self.checks
        if self.key_positions:

            def run(env, rels, stats, out):
                rows = rels[rel_index].get(tuple(env[p] if s else p for s, p in layout))
                stats.probes += 1
                if not rows:
                    return
                stats.rows_scanned += len(rows)
                if checks:
                    for row in rows:
                        for slot, pos in sets:
                            env[slot] = row[pos]
                        for slot, pos in checks:
                            if env[slot] != row[pos]:
                                break
                        else:
                            next_fn(env, rels, stats, out)
                else:
                    for row in rows:
                        for slot, pos in sets:
                            env[slot] = row[pos]
                        next_fn(env, rels, stats, out)

        else:

            def run(env, rels, stats, out):
                rows = rels[rel_index]
                stats.probes += 1
                stats.rows_scanned += len(rows)
                if checks:
                    for row in rows:
                        for slot, pos in sets:
                            env[slot] = row[pos]
                        for slot, pos in checks:
                            if env[slot] != row[pos]:
                                break
                        else:
                            next_fn(env, rels, stats, out)
                else:
                    for row in rows:
                        for slot, pos in sets:
                            env[slot] = row[pos]
                        next_fn(env, rels, stats, out)

        return run


class _ExistsStep:
    """A positive literal whose positions are all bound: set membership,
    zero rows scanned."""

    __slots__ = ("literal", "is_delta", "rel_index", "layout")

    def __init__(self, literal, is_delta, rel_index, layout):
        self.literal = literal
        self.is_delta = is_delta
        self.rel_index = rel_index
        self.layout = layout

    def describe(self) -> str:
        return f"exists {self.literal!r}"

    def compile(self, next_fn):
        rel_index = self.rel_index
        layout = self.layout

        def run(env, rels, stats, out):
            stats.probes += 1
            if tuple(env[p] if s else p for s, p in layout) in rels[rel_index]:
                next_fn(env, rels, stats, out)

        return run


class _OrderStep:
    """A fully bound order atom."""

    __slots__ = ("atom", "left", "right")

    def __init__(self, atom, left, right):
        self.atom = atom
        self.left = left
        self.right = right

    def describe(self) -> str:
        return f"filter {self.atom!r}"

    def compile(self, next_fn):
        ls, lp = self.left
        rs, rp = self.right
        op = self.atom.op
        if op == "=":

            def run(env, rels, stats, out):
                if (env[lp] if ls else lp) == (env[rp] if rs else rp):
                    next_fn(env, rels, stats, out)

        elif op == "!=":

            def run(env, rels, stats, out):
                if (env[lp] if ls else lp) != (env[rp] if rs else rp):
                    next_fn(env, rels, stats, out)

        else:

            def run(env, rels, stats, out):
                if evaluate_comparison(
                    env[lp] if ls else lp, env[rp] if rs else rp, op
                ):
                    next_fn(env, rels, stats, out)

        return run


class _NegStep:
    """A fully bound negated EDB literal: absence test against the relation."""

    __slots__ = ("literal", "rel_index", "layout")

    def __init__(self, literal, rel_index, layout):
        self.literal = literal
        self.rel_index = rel_index
        self.layout = layout

    def describe(self) -> str:
        return f"neg {self.literal!r}"

    def compile(self, next_fn):
        rel_index = self.rel_index
        layout = self.layout

        def run(env, rels, stats, out):
            if tuple(env[p] if s else p for s, p in layout) not in rels[rel_index]:
                next_fn(env, rels, stats, out)

        return run


def _emit(env, rels, stats, out):
    out.append(tuple(env))


class _GovernedList(list):
    """The result buffer of a governed rule execution.

    Every emitted row ticks the governor (strided deadline/cancellation
    check), so even a single explosive join stays cancellable without
    recompiling the closure chain or touching the ungoverned hot path.
    """

    __slots__ = ("_governor",)

    def __init__(self, governor):
        super().__init__()
        self._governor = governor

    def append(self, item) -> None:
        list.append(self, item)
        self._governor.tick("rule")


# ----------------------------------------------------------------------
# The compiled plan
# ----------------------------------------------------------------------
class _RelSpec:
    """How one step's relation is resolved and accessed at run time."""

    __slots__ = ("predicate", "arity", "is_delta", "kind", "key_positions")

    def __init__(self, predicate, arity, is_delta, kind, key_positions):
        self.predicate = predicate
        self.arity = arity
        self.is_delta = is_delta
        self.kind = kind  # "index" (hash index dict) or "rows" (row set)
        self.key_positions = key_positions


class RulePlan:
    """One rule compiled for one delta position (or none).

    ``run`` executes the closure chain and returns the matching
    environments as slot tuples; :meth:`head_row` / :meth:`support_rows`
    project them onto the head and the positive body literals.
    """

    __slots__ = (
        "rule",
        "rule_key",
        "delta_index",
        "delta_predicate",
        "order",
        "num_slots",
        "slot_of",
        "steps",
        "rel_specs",
        "head_layout",
        "support_layouts",
        "_entry",
    )

    def __init__(self, rule: Rule, delta_index: int | None, order: str, ordered_body):
        self.rule = rule
        self.rule_key = repr(rule)
        self.delta_index = delta_index
        self.order = order
        self.delta_predicate = None
        if delta_index is not None:
            item = rule.body[delta_index]
            assert isinstance(item, Literal)
            self.delta_predicate = item.predicate

        slot_of: dict[Variable, int] = {}

        def slot(var: Variable) -> int:
            found = slot_of.get(var)
            if found is None:
                found = slot_of[var] = len(slot_of)
            return found

        def term_layout(arg):
            if isinstance(arg, Constant):
                return (False, arg.value)
            return (True, slot_of[arg])

        steps: list = []
        rel_specs: list[_RelSpec] = []
        bound: set[Variable] = set()
        for item, is_delta in ordered_body:
            if isinstance(item, Literal) and item.positive:
                key_positions: list[int] = []
                key_layout: list[tuple] = []
                sets: list[tuple[int, int]] = []
                checks: list[tuple[int, int]] = []
                fresh: set[Variable] = set()
                for pos, arg in enumerate(item.args):
                    if isinstance(arg, Constant):
                        key_positions.append(pos)
                        key_layout.append((False, arg.value))
                    elif arg in bound:
                        key_positions.append(pos)
                        key_layout.append((True, slot_of[arg]))
                    elif arg in fresh:
                        checks.append((slot_of[arg], pos))
                    else:
                        sets.append((slot(arg), pos))
                        fresh.add(arg)
                rel_index = len(rel_specs)
                if len(key_positions) == len(item.args):
                    # Fully bound: membership, no index, no rows scanned.
                    steps.append(
                        _ExistsStep(item, is_delta, rel_index, tuple(key_layout))
                    )
                    rel_specs.append(
                        _RelSpec(item.predicate, item.atom.arity, is_delta, "rows", ())
                    )
                else:
                    positions = tuple(key_positions)
                    steps.append(
                        _ScanStep(
                            item,
                            is_delta,
                            rel_index,
                            positions,
                            tuple(key_layout),
                            tuple(sets),
                            tuple(checks),
                        )
                    )
                    rel_specs.append(
                        _RelSpec(
                            item.predicate,
                            item.atom.arity,
                            is_delta,
                            "index" if positions else "rows",
                            positions,
                        )
                    )
                bound |= item.variables()
            elif isinstance(item, OrderAtom):
                steps.append(
                    _OrderStep(item, term_layout(item.left), term_layout(item.right))
                )
            else:
                assert isinstance(item, Literal) and not item.positive
                rel_index = len(rel_specs)
                layout = tuple(term_layout(arg) for arg in item.args)
                steps.append(_NegStep(item, rel_index, layout))
                rel_specs.append(
                    _RelSpec(item.predicate, item.atom.arity, False, "rows", ())
                )

        try:
            head_layout = tuple(
                (False, arg.value) if isinstance(arg, Constant) else (True, slot_of[arg])
                for arg in rule.head.args
            )
        except KeyError as exc:
            raise ValueError(
                f"rule {rule} has a head variable not bound by a positive subgoal"
            ) from exc
        self.slot_of = slot_of
        self.num_slots = len(slot_of)
        self.steps = steps
        self.rel_specs = rel_specs
        self.head_layout = head_layout
        self.support_layouts = tuple(
            tuple(
                (False, arg.value) if isinstance(arg, Constant) else (True, slot_of[arg])
                for arg in lit.args
            )
            for lit in rule.positive_literals
        )
        entry = _emit
        for step in reversed(steps):
            entry = step.compile(entry)
        self._entry = entry

    # ------------------------------------------------------------------
    def run(
        self,
        relation_of,
        delta_relation: Relation | None,
        stats,
        tracer=None,
        governor=None,
    ):
        """Execute the plan; return the result environments (slot tuples).

        ``relation_of(predicate, arity)`` resolves non-delta relations;
        indexes are fetched once here (built on first use, counted in
        ``stats.index_builds`` and — under an enabled ``tracer`` —
        reported as ``index_build`` events).  With a ``governor`` (see
        :mod:`repro.robustness.budget`) the result buffer ticks it per
        emitted row, keeping giant single-rule joins cancellable.
        """
        rels = []
        for spec in self.rel_specs:
            rel = delta_relation if spec.is_delta else relation_of(spec.predicate, spec.arity)
            if spec.kind == "index":
                if tracer is not None and not rel.has_index(spec.key_positions):
                    rels.append(rel.index_for(spec.key_positions, stats))
                    tracer.event(
                        "index_build",
                        predicate=spec.predicate,
                        positions=",".join(map(str, spec.key_positions)),
                        rows=len(rel),
                        delta=spec.is_delta,
                    )
                else:
                    rels.append(rel.index_for(spec.key_positions, stats))
            else:
                rels.append(rel.all_rows())
        env = [None] * self.num_slots
        out: list[tuple] = [] if governor is None else _GovernedList(governor)
        stats.env_allocations += 1
        self._entry(env, rels, stats, out)
        stats.env_allocations += len(out)
        return out

    # ------------------------------------------------------------------
    def run_blocks(
        self,
        relation_of,
        delta_relation,
        interner,
        stats,
        tracer=None,
        governor=None,
    ):
        """Batched execution over columnar relations: ``(n, cols)``.

        The columnar counterpart of :meth:`run`.  The block state is a
        list of **code columns** indexed by slot (``None`` for slots not
        yet bound) plus the current row count ``n``; every step is one
        kernel invocation over the whole block:

        * *scan* — probe the code-level hash index once per input row
          (``stats.probes`` counts input rows, identically to the
          per-row engine; ``stats.block_probes`` counts kernel calls),
          accumulate matching rowids, then gather the live columns and
          the newly bound columns with list comprehensions — the only
          per-row Python in the loop is one dict lookup;
        * *existence / negation / order filters* — build a keep list
          over the block and compact every live column through it.

        Probe-key constants resolve through ``interner.code_of`` (a
        value the data never contained misses every bucket — it is
        **not** interned); ``=``/``!=`` filters compare codes directly,
        other comparisons decode through the interner's value table.
        ``stats.rows_scanned`` counts exactly what the per-row engine
        counts, so governor row budgets behave identically; a
        ``governor`` is ticked once per kernel with the block size.
        """
        num_slots = self.num_slots
        cols: list = [None] * num_slots
        n = 1
        code_of = interner.code_of
        values = interner.values

        def compact(keep: list) -> None:
            nonlocal cols, n
            if len(keep) != n:
                cols = [
                    None if col is None else [col[i] for i in keep] for col in cols
                ]
                n = len(keep)

        for step in self.steps:
            if n == 0:
                break
            kind = step.__class__
            if kind is _ScanStep:
                rel = (
                    delta_relation
                    if step.is_delta
                    else relation_of(step.literal.predicate, step.literal.atom.arity)
                )
                stats.probes += n
                stats.block_probes += 1
                rel_cols = rel.columns
                sel: list[int] = []
                rids: list[int] = []
                if step.key_positions:
                    if tracer is not None and not rel.has_code_index(step.key_positions):
                        index = rel.index_codes(step.key_positions, stats)
                        tracer.event(
                            "index_build",
                            predicate=step.literal.predicate,
                            positions=",".join(map(str, step.key_positions)),
                            rows=len(rel),
                            delta=step.is_delta,
                        )
                    else:
                        index = rel.index_codes(step.key_positions, stats)
                    layout = step.key_layout
                    if len(layout) == 1:
                        is_slot, payload = layout[0]
                        keys = cols[payload] if is_slot else _repeat(code_of(payload), n)
                    else:
                        keys = zip(
                            *(
                                cols[p] if s else _repeat(code_of(p), n)
                                for s, p in layout
                            )
                        )
                    get = index.get
                    sel_append = sel.append
                    rids_append = rids.append
                    sel_extend = sel.extend
                    rids_extend = rids.extend
                    i = 0
                    for key in keys:
                        hit = get(key)
                        if hit:
                            if len(hit) == 1:
                                sel_append(i)
                                rids_append(hit[0])
                            else:
                                sel_extend(_repeat(i, len(hit)))
                                rids_extend(hit)
                        i += 1
                    stats.rows_scanned += len(rids)
                else:
                    m = len(rel)
                    stats.rows_scanned += n * m
                    if m:
                        base = list(range(m))
                        if n == 1:
                            sel = [0] * m
                            rids = base
                        else:
                            rids = base * n
                            sel = [i for i in range(n) for _ in base]
                if rids and step.checks:
                    # Repeated variables within the literal: both sides
                    # come from the same scanned row, so compare columns.
                    setpos = {slot: pos for slot, pos in step.sets}
                    pairs = [
                        (rel_cols[setpos[slot]], rel_cols[pos])
                        for slot, pos in step.checks
                    ]
                    kept_sel: list[int] = []
                    kept_rids: list[int] = []
                    for i, r in zip(sel, rids):
                        for left, right in pairs:
                            if left[r] != right[r]:
                                break
                        else:
                            kept_sel.append(i)
                            kept_rids.append(r)
                    sel, rids = kept_sel, kept_rids
                stats.env_allocations += 1
                new_cols: list = [None] * num_slots
                for slot in range(num_slots):
                    col = cols[slot]
                    if col is not None:
                        new_cols[slot] = [col[i] for i in sel]
                for slot, pos in step.sets:
                    col = rel_cols[pos]
                    new_cols[slot] = [col[r] for r in rids]
                cols = new_cols
                n = len(rids)
            elif kind is _ExistsStep:
                rel = (
                    delta_relation
                    if step.is_delta
                    else relation_of(step.literal.predicate, step.literal.atom.arity)
                )
                stats.probes += n
                stats.block_probes += 1
                rowset = rel.code_rows()
                if not step.layout:
                    # Propositional literal: one global membership test.
                    if () not in rowset:
                        compact([])
                else:
                    keys = zip(
                        *(
                            cols[p] if s else _repeat(code_of(p), n)
                            for s, p in step.layout
                        )
                    )
                    compact([i for i, key in enumerate(keys) if key in rowset])
            elif kind is _NegStep:
                rel = relation_of(step.literal.predicate, step.literal.atom.arity)
                rowset = rel.code_rows()
                if not step.layout:
                    if () in rowset:
                        compact([])
                else:
                    keys = zip(
                        *(
                            cols[p] if s else _repeat(code_of(p), n)
                            for s, p in step.layout
                        )
                    )
                    compact([i for i, key in enumerate(keys) if key not in rowset])
            else:
                assert kind is _OrderStep
                ls, lp = step.left
                rs, rp = step.right
                op = step.atom.op
                if not ls and not rs:
                    # Ground order atom: one evaluation decides the block.
                    if not evaluate_comparison(lp, rp, op):
                        compact([])
                elif op == "=" or op == "!=":
                    # Codes are bijective with ==-distinct values, so
                    # (in)equality compares codes without decoding; an
                    # un-interned constant can equal no stored value.
                    left = cols[lp] if ls else _repeat(code_of(lp), n)
                    right = cols[rp] if rs else _repeat(code_of(rp), n)
                    if op == "=":
                        compact(
                            [i for i, (a, b) in enumerate(zip(left, right)) if a == b]
                        )
                    else:
                        compact(
                            [i for i, (a, b) in enumerate(zip(left, right)) if a != b]
                        )
                else:
                    # Ordering comparisons need real values: codes are
                    # dense ints in first-seen order, not value order.
                    left = (
                        [values[c] for c in cols[lp]] if ls else _repeat(lp, n)
                    )
                    right = (
                        [values[c] for c in cols[rp]] if rs else _repeat(rp, n)
                    )
                    compact(
                        [
                            i
                            for i, (a, b) in enumerate(zip(left, right))
                            if evaluate_comparison(a, b, op)
                        ]
                    )
            if governor is not None:
                governor.tick_batch("rule", n)
        return n, cols

    def head_row(self, env: Sequence[object]) -> tuple:
        return tuple(env[p] if s else p for s, p in self.head_layout)

    def support_rows(self, env: Sequence[object]) -> list[tuple[str, tuple]]:
        """``(predicate, ground row)`` for each positive body literal
        (original rule order) — the provenance supports."""
        return [
            (lit.predicate, tuple(env[p] if s else p for s, p in layout))
            for lit, layout in zip(self.rule.positive_literals, self.support_layouts)
        ]

    def describe(self) -> str:
        """One line per step — the plan the profiler and traces report."""
        return "; ".join(step.describe() for step in self.steps)

    def __repr__(self) -> str:
        delta = "" if self.delta_index is None else f", delta={self.delta_index}"
        return f"RulePlan({self.rule_key!r}, order={self.order}{delta})"


def compile_rule(
    rule: Rule,
    delta_index: int | None = None,
    *,
    order: str = "cost",
    size_of: SizeEstimator | None = None,
) -> RulePlan:
    """Compile ``rule`` into a :class:`RulePlan`.

    ``order`` selects the body ordering: ``"cost"`` (requires a
    ``size_of`` estimator; falls back to greedy without one) or
    ``"greedy"`` (the seed interpreter's order).  ``delta_index`` marks
    the body literal to read from the semi-naive delta relation; it is
    always scanned first.
    """
    if order not in ("cost", "greedy"):
        raise ValueError(f"unknown plan order {order!r} (valid: cost, greedy)")
    if order == "cost" and size_of is not None:
        ordered = order_body_cost(rule, delta_index, size_of)
    else:
        ordered = order_body_greedy(rule, delta_index)
    return RulePlan(rule, delta_index, order, ordered)
