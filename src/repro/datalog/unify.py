"""Unification of function-free atoms.

Used by the query-tree construction (unifying program rules with goal
nodes) and by the adornment machinery.  Because the language is
function-free, unification is simple union-find over terms; the result
is an idempotent most general unifier.
"""

from __future__ import annotations

from typing import Sequence

from .atoms import Atom
from .terms import Constant, Substitution, Term, Variable

__all__ = ["unify_atoms", "unify_terms", "match_atom"]


def _find(parent: dict[Term, Term], term: Term) -> Term:
    root = term
    while parent.get(root, root) != root:
        root = parent[root]
    while parent.get(term, term) != term:
        parent[term], term = root, parent[term]
    return root


def _union(parent: dict[Term, Term], a: Term, b: Term) -> bool:
    ra, rb = _find(parent, a), _find(parent, b)
    if ra == rb:
        return True
    if isinstance(ra, Constant) and isinstance(rb, Constant):
        return ra == rb
    # Keep constants as representatives so classes resolve to values.
    if isinstance(ra, Constant):
        parent[rb] = ra
    else:
        parent[ra] = rb
    return True


def unify_terms(pairs: Sequence[tuple[Term, Term]]) -> Substitution | None:
    """Unify a list of term pairs; return an mgu or ``None`` on clash."""
    parent: dict[Term, Term] = {}
    for left, right in pairs:
        if not _union(parent, left, right):
            return None
    mapping: dict[Variable, Term] = {}
    for term in parent:
        if isinstance(term, Variable):
            root = _find(parent, term)
            if root != term:
                mapping[term] = root
    return Substitution(mapping)


def unify_atoms(first: Atom, second: Atom) -> Substitution | None:
    """Unify two atoms (same predicate, same arity) or return ``None``.

    The caller is responsible for renaming the atoms apart if they must
    not share variables.
    """
    if first.predicate != second.predicate or first.arity != second.arity:
        return None
    return unify_terms(list(zip(first.args, second.args)))


def match_atom(pattern: Atom, target: Atom) -> Substitution | None:
    """One-way matching: find ``theta`` with ``pattern.substitute(theta) == target``.

    Unlike unification, variables of ``target`` are treated as constants.
    Returns ``None`` when no such substitution exists.
    """
    if pattern.predicate != target.predicate or pattern.arity != target.arity:
        return None
    mapping: dict[Variable, Term] = {}
    for p_arg, t_arg in zip(pattern.args, target.args):
        if isinstance(p_arg, Variable):
            bound = mapping.get(p_arg)
            if bound is None:
                mapping[p_arg] = t_arg
            elif bound != t_arg:
                return None
        elif p_arg != t_arg:
            return None
    return Substitution(mapping)
