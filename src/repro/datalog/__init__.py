"""Datalog substrate: IR, parser, storage and bottom-up evaluation engine."""

from .atoms import Atom, BodyItem, Literal, OrderAtom
from .bag import BagRelation, RecursiveProgramError, bag_equal, evaluate_bag
from .database import Database, Relation
from .evaluation import (
    DerivationNode,
    EvaluationResult,
    EvaluationStats,
    derivation_tree,
    evaluate,
    evaluate_query,
)
from .parser import (
    ParseError,
    parse_atom,
    parse_constraints,
    parse_facts,
    parse_program,
    parse_rule,
    parse_rules,
    parse_term,
)
from .pretty import format_constraints, format_program, format_rule, format_rules
from .program import Program, ProgramError
from .rules import Rule, UnsafeRuleError
from .terms import Constant, Substitution, Term, Variable, fresh_variables
from .unify import match_atom, unify_atoms, unify_terms

__all__ = [
    "Atom",
    "BodyItem",
    "BagRelation",
    "RecursiveProgramError",
    "bag_equal",
    "evaluate_bag",
    "Literal",
    "OrderAtom",
    "Database",
    "Relation",
    "DerivationNode",
    "EvaluationResult",
    "EvaluationStats",
    "derivation_tree",
    "evaluate",
    "evaluate_query",
    "ParseError",
    "parse_atom",
    "parse_constraints",
    "parse_facts",
    "parse_program",
    "parse_rule",
    "parse_rules",
    "parse_term",
    "format_constraints",
    "format_program",
    "format_rule",
    "format_rules",
    "Program",
    "ProgramError",
    "Rule",
    "UnsafeRuleError",
    "Constant",
    "Substitution",
    "Term",
    "Variable",
    "fresh_variables",
    "match_atom",
    "unify_atoms",
    "unify_terms",
]
