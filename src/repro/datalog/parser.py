"""A parser for the textual Datalog syntax used throughout the project.

Grammar (informally)::

    program     := (statement)*
    statement   := rule | constraint | fact
    rule        := atom ":-" body "."
    constraint  := ":-" body "."
    fact        := atom "."
    body        := bodyitem ("," bodyitem)*
    bodyitem    := "not" atom | atom | term OP term
    atom        := IDENT "(" term ("," term)* ")"
    term        := VARIABLE | NUMBER | STRING | IDENT
    OP          := "<" | "<=" | ">" | ">=" | "=" | "!=" | "<>"

Variables begin with an uppercase letter or ``_``; lowercase identifiers
are symbolic constants; numbers may be integers or floats; ``%`` starts
a comment running to end of line.

The module exposes :func:`parse_program`, :func:`parse_rules`,
:func:`parse_rule`, :func:`parse_atom`, :func:`parse_constraints` and
:func:`parse_facts`; the latter returns ground facts suitable for
:class:`repro.datalog.database.Database`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from .atoms import Atom, BodyItem, Literal, OrderAtom
from .program import Program
from .rules import Rule
from .terms import Constant, Term, Variable
from ..robustness.errors import ReproError

__all__ = [
    "ParseError",
    "parse_program",
    "parse_rules",
    "parse_rule",
    "parse_atom",
    "parse_term",
    "parse_constraints",
    "parse_facts",
    "parse_program_and_facts",
]


class ParseError(ReproError, ValueError):
    """Raised on any syntax error, with position information."""


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+|%[^\n]*)
  | (?P<ARROW>:-)
  | (?P<OP><=|>=|!=|<>|<|>|=)
  | (?P<NUMBER>-?\d+\.\d+|-?\d+)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<STRING>"[^"]*"|'[^']*')
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<DOT>\.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r} at position {pos}")
        kind = match.lastgroup
        assert kind is not None
        if kind != "WS":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    tokens.append(_Token("EOF", "", len(source)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, source: str):
        self._tokens = _tokenize(source)
        self._index = 0

    # -- token plumbing -------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(f"expected {kind} but found {token.text!r} at position {token.pos}")
        return token

    def at_end(self) -> bool:
        return self._peek().kind == "EOF"

    # -- grammar --------------------------------------------------------
    def term(self) -> Term:
        token = self._next()
        if token.kind == "NUMBER":
            value = float(token.text) if "." in token.text else int(token.text)
            return Constant(value)
        if token.kind == "STRING":
            return Constant(token.text[1:-1])
        if token.kind == "IDENT":
            if token.text[0].isupper() or token.text[0] == "_":
                return Variable(token.text)
            return Constant(token.text)
        raise ParseError(f"expected a term but found {token.text!r} at position {token.pos}")

    def atom(self) -> Atom:
        name = self._expect("IDENT")
        if name.text[0].isupper():
            raise ParseError(f"predicate names must be lowercase: {name.text!r} at position {name.pos}")
        self._expect("LPAREN")
        args: list[Term] = []
        if self._peek().kind != "RPAREN":
            args.append(self.term())
            while self._peek().kind == "COMMA":
                self._next()
                args.append(self.term())
        self._expect("RPAREN")
        return Atom(name.text, tuple(args))

    def body_item(self) -> BodyItem:
        token = self._peek()
        if token.kind == "IDENT" and token.text == "not":
            self._next()
            return Literal(self.atom(), positive=False)
        # Could be an atom (ident followed by lparen) or an order atom.
        if token.kind == "IDENT" and self._tokens[self._index + 1].kind == "LPAREN":
            return Literal(self.atom(), positive=True)
        left = self.term()
        op_token = self._expect("OP")
        op = "!=" if op_token.text == "<>" else op_token.text
        right = self.term()
        return OrderAtom(left, op, right)

    def body(self) -> tuple[BodyItem, ...]:
        items = [self.body_item()]
        while self._peek().kind == "COMMA":
            self._next()
            items.append(self.body_item())
        return tuple(items)

    def statement(self) -> Rule:
        """One statement; constraints are returned as rules with head ``__false__()``."""
        if self._peek().kind == "ARROW":
            self._next()
            body = self.body()
            self._expect("DOT")
            return Rule(Atom("__false__", ()), body)
        head = self.atom()
        if self._peek().kind == "DOT":
            self._next()
            return Rule(head, ())
        self._expect("ARROW")
        body = self.body()
        self._expect("DOT")
        return Rule(head, body)

    def statements(self) -> Iterator[Rule]:
        while not self.at_end():
            yield self.statement()


def parse_rules(source: str) -> list[Rule]:
    """Parse a sequence of rules/facts (constraints are rejected here)."""
    rules = list(_Parser(source).statements())
    for rule in rules:
        if rule.head.predicate == "__false__":
            raise ParseError("integrity constraint found where a rule was expected; use parse_constraints")
    return rules


def parse_rule(source: str) -> Rule:
    """Parse exactly one rule."""
    rules = parse_rules(source)
    if len(rules) != 1:
        raise ParseError(f"expected exactly one rule, found {len(rules)}")
    return rules[0]


def parse_atom(source: str) -> Atom:
    """Parse a single atom such as ``p(X, a, 3)``."""
    parser = _Parser(source)
    atom = parser.atom()
    if not parser.at_end():
        raise ParseError("trailing input after atom")
    return atom


def parse_term(source: str) -> Term:
    """Parse a single term."""
    parser = _Parser(source)
    term = parser.term()
    if not parser.at_end():
        raise ParseError("trailing input after term")
    return term


def parse_program(source: str, query: str | None = None) -> Program:
    """Parse a full program (rules only) into a :class:`Program`."""
    return Program(parse_rules(source), query)


def parse_constraints(source: str):
    """Parse ``:- body.`` statements into :class:`IntegrityConstraint` objects."""
    from ..constraints.integrity import IntegrityConstraint

    constraints = []
    for rule in _Parser(source).statements():
        if rule.head.predicate != "__false__":
            raise ParseError(f"expected an integrity constraint (:- body.) but found rule {rule}")
        constraints.append(IntegrityConstraint(rule.body))
    return constraints


def parse_program_and_facts(
    source: str, query: str | None = None
) -> tuple[Program, list[Atom]]:
    """Parse a mixed program file into ``(Program, inline facts)``.

    A ground, body-less statement counts as an inline EDB fact when no
    other statement derives its predicate with a proper rule; everything
    else stays in the program.  This lets one ``.dl`` file carry both
    the rules and a small demo database (``repro profile examples/x.dl``).
    """
    statements = parse_rules(source)
    rule_predicates = {
        rule.head.predicate for rule in statements if rule.body
    }
    rules: list[Rule] = []
    facts: list[Atom] = []
    for rule in statements:
        if (
            not rule.body
            and rule.head.is_ground()
            and rule.head.predicate not in rule_predicates
        ):
            facts.append(rule.head)
        else:
            rules.append(rule)
    return Program(rules, query), facts


def parse_facts(source: str) -> list[Atom]:
    """Parse ground facts (``p(a, 1).`` lines) into ground atoms."""
    facts = []
    for rule in _Parser(source).statements():
        if rule.body or rule.head.predicate == "__false__":
            raise ParseError(f"expected a ground fact but found {rule}")
        if not rule.head.is_ground():
            raise ParseError(f"fact {rule.head} is not ground")
        facts.append(rule.head)
    return facts
