"""Order-constraint propagation: the [LMSS93] preprocessing step.

The Section 4.1 algorithm assumes the input program "has already been
processed by the algorithm of [LMSS93] for completely incorporating the
constraints implied by the order atoms and negated EDB subgoals that
appear in the rules", and that forced equalities (``X = Y`` implied by a
rule's order atoms) have been substituted away.

This module implements that preprocessing as an abstract-interpretation
fixpoint over the dense-order domain:

* each rule's order atoms are checked for satisfiability (unsatisfiable
  rules are dropped) and implied equalities are substituted;
* for every IDB predicate ``p`` a *projection* is computed — the set of
  order atoms over ``p``'s argument positions (and the program's order
  constants) entailed by **every** derivation of ``p``;
* rules whose body context (own order atoms plus the projections of
  their IDB subgoals) is unsatisfiable are removed;
* optionally, the subgoal projections are *pushed* into rule bodies as
  explicit order atoms, so the evaluation engine can filter early
  (predicate move-around in the sense of [LMS94]).

The projection uses intersection (meet) across a predicate's rules, so
it abstracts the disjunction of per-rule constraints by their common
consequences.  This is sound and reproduces the paper's examples; the
fully disjunction-precise variant of [LMSS93] specializes predicates
per constraint class, which the combined adornment machinery of
:mod:`repro.core.adornments` takes care of for the residue part.  The
difference is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..constraints.dense_order import OrderConstraintSet
from ..datalog.atoms import Literal, OrderAtom
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Substitution, Term, Variable

__all__ = ["OrderPropagation", "propagate_order_constraints", "normalize_rule"]

#: Placeholder variables naming argument positions inside projections.
def _placeholder(index: int) -> Variable:
    return Variable(f"__a{index}")


@dataclass(frozen=True)
class OrderPropagation:
    """Result of the propagation pass."""

    program: Program
    projections: Mapping[str, frozenset[OrderAtom] | None]
    dropped_rules: tuple[Rule, ...]

    def projection(self, predicate: str) -> frozenset[OrderAtom] | None:
        """Entailed order atoms for a predicate (None = unsatisfiable)."""
        return self.projections.get(predicate)


def normalize_rule(rule: Rule) -> Rule | None:
    """Substitute forced equalities; None when order atoms are unsatisfiable."""
    order = OrderConstraintSet(rule.order_atoms)
    if not order.is_satisfiable():
        return None
    mapping = order.equality_substitution()
    if not mapping:
        return rule
    return rule.substitute(Substitution(mapping))


def _order_constants(program: Program) -> list[Constant]:
    constants: list[Constant] = []
    seen: set[Constant] = set()
    for rule in program.rules:
        for atom in rule.order_atoms:
            for term in (atom.left, atom.right):
                if isinstance(term, Constant) and term not in seen:
                    seen.add(term)
                    constants.append(term)
    return constants


def _rule_context(
    rule: Rule,
    projections: Mapping[str, frozenset[OrderAtom] | None],
    idb: frozenset[str],
) -> list[OrderAtom] | None:
    """The rule's order context; None when an IDB subgoal is underivable."""
    context: list[OrderAtom] = list(rule.order_atoms)
    for literal in rule.positive_literals:
        if literal.predicate not in idb:
            continue
        projection = projections.get(literal.predicate)
        if projection is None:
            return None
        mapping: dict[Variable, Term] = {
            _placeholder(i): arg for i, arg in enumerate(literal.args)
        }
        theta = Substitution(mapping)
        context.extend(atom.substitute(theta) for atom in projection)
    return context


def _head_projection(
    rule: Rule, context: Sequence[OrderAtom], constants: Sequence[Constant]
) -> frozenset[OrderAtom] | None:
    """Project the rule context onto the head argument positions."""
    order = OrderConstraintSet(context)
    if not order.is_satisfiable():
        return None
    head_terms = list(rule.head.args)
    terms: list[Term] = list(dict.fromkeys(head_terms)) + [
        c for c in constants if c not in head_terms
    ]
    projected = order.project(terms)
    # Rewrite head terms into positional placeholders.  Duplicate head
    # terms induce equalities among placeholders; head constants pin them.
    rename: dict[Term, Variable] = {}
    extra: list[OrderAtom] = []
    for index, term in enumerate(head_terms):
        placeholder = _placeholder(index)
        if term in rename:
            extra.append(OrderAtom(rename[term], "=", placeholder))
        else:
            rename[term] = placeholder
        if isinstance(term, Constant):
            extra.append(OrderAtom(placeholder, "=", term))

    def rewrite(term: Term) -> Term:
        return rename.get(term, term)

    atoms = [
        OrderAtom(rewrite(a.left), a.op, rewrite(a.right)).normalized()
        for a in projected
    ] + [a.normalized() for a in extra]
    # Keep only atoms over placeholders/constants (projection terms that
    # were head variables are now placeholders; others are constants).
    filtered = [
        a
        for a in atoms
        if all(
            isinstance(t, Constant) or t.name.startswith("__a")
            for t in (a.left, a.right)
        )
    ]
    return frozenset(filtered)


def _meet(
    first: frozenset[OrderAtom], second: frozenset[OrderAtom]
) -> frozenset[OrderAtom]:
    """The strongest consequences shared by two projections."""
    left = OrderConstraintSet(tuple(first))
    right = OrderConstraintSet(tuple(second))
    shared = {
        atom for atom in (first | second) if left.entails(atom) and right.entails(atom)
    }
    return frozenset(shared)


def propagate_order_constraints(
    program: Program, *, push: bool = True
) -> OrderPropagation:
    """Run the preprocessing pass; see the module docstring."""
    normalized: list[Rule] = []
    dropped: list[Rule] = []
    for rule in program.rules:
        cleaned = normalize_rule(rule)
        if cleaned is None:
            dropped.append(rule)
        else:
            normalized.append(cleaned)
    idb = frozenset(r.head.predicate for r in normalized)
    constants = _order_constants(program)
    projections: dict[str, frozenset[OrderAtom] | None] = {p: None for p in idb}

    changed = True
    while changed:
        changed = False
        for rule in normalized:
            context = _rule_context(rule, projections, idb)
            if context is None:
                continue
            head_proj = _head_projection(rule, context, constants)
            if head_proj is None:
                continue
            predicate = rule.head.predicate
            current = projections[predicate]
            updated = head_proj if current is None else _meet(current, head_proj)
            if current is None or updated != current:
                # Only record a change when the meet is semantically new.
                if current is not None:
                    old = OrderConstraintSet(tuple(current))
                    new = OrderConstraintSet(tuple(updated))
                    if all(old.entails(a) for a in updated) and all(
                        new.entails(a) for a in current
                    ):
                        continue
                projections[predicate] = updated
                changed = True

    kept: list[Rule] = []
    for rule in normalized:
        context = _rule_context(rule, projections, idb)
        if context is None or not OrderConstraintSet(context).is_satisfiable():
            dropped.append(rule)
            continue
        if push:
            own = OrderConstraintSet(rule.order_atoms)
            additions: list[OrderAtom] = []
            for literal in rule.positive_literals:
                projection = projections.get(literal.predicate)
                if literal.predicate not in idb or projection is None:
                    continue
                theta = Substitution(
                    {_placeholder(i): arg for i, arg in enumerate(literal.args)}
                )
                for atom in projection:
                    instantiated = atom.substitute(theta)
                    if instantiated.variables() and not own.entails(instantiated):
                        if instantiated not in additions:
                            additions.append(instantiated)
            if additions:
                rule = rule.with_extra_conditions(additions)
        kept.append(rule)
    new_program = Program(kept, program.query, validate=False)
    return OrderPropagation(new_program, projections, tuple(dropped))
