"""Single-rule residues (Chakravarthy-Grant-Minker), the paper's Section 3.

Given a rule ``r`` and an ic ``c``, a *partial mapping* ``tau`` sends a
subset of the positive EDB atoms of ``c`` into the body of ``r``; the
*residue* is what remains of ``c`` under ``tau``.  The negation of every
residue may be added to ``r`` without changing the program's output on
databases satisfying the ic's:

* an **empty** residue means every instantiation of ``r`` violates the
  ic — the rule is unsatisfiable and can be removed;
* a residue consisting of a **single fully mapped literal** can be added
  to the rule body directly (Example 3.1 adds ``Y > X``);
* larger residues carry semantic information used by the query-tree
  algorithm but are not directly injectable into a single rule body.

This module treats rules in isolation; the recursive-program analogue
(residues with respect to derivation trees) is the adornment/query-tree
machinery of :mod:`repro.core.adornments` and
:mod:`repro.core.querytree`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..constraints.dense_order import OrderConstraintSet
from ..constraints.integrity import IntegrityConstraint
from ..cq.homomorphism import extend_homomorphism
from ..datalog.atoms import Atom, BodyItem, Literal, OrderAtom
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Substitution, Variable, fresh_variables

__all__ = [
    "Residue",
    "residues_for_rule",
    "rule_violates",
    "injectable_conditions",
    "constrain_rule",
    "constrain_program",
]


@dataclass(frozen=True)
class Residue:
    """The unmapped part of an ic under one partial mapping into a rule."""

    constraint: IntegrityConstraint
    mapping: Substitution
    literals: tuple[BodyItem, ...]

    @property
    def is_empty(self) -> bool:
        return not self.literals

    def free_variables(self) -> set[Variable]:
        """Residue variables not bound by the partial mapping.

        The ic is renamed apart from the rule before mapping, so any
        variable still carrying the renamed-apart prefix is free.
        """
        free: set[Variable] = set()
        for item in self.literals:
            for var in item.variables():
                if var not in self.mapping:
                    free.add(var)
        return free

    def is_fully_mapped(self) -> bool:
        """All residue variables are images of the mapping (rule terms)."""
        mapped_images = {
            t for t in self.mapping.values() if isinstance(t, Variable)
        }
        for item in self.literals:
            if not item.variables() <= mapped_images:
                return False
        return True

    def negation(self) -> BodyItem | None:
        """The injectable negation of this residue, when one exists.

        Only single-literal, fully mapped residues are injectable: the
        negation of an order atom is an order atom, the negation of an
        EDB atom is a safe negated literal, and vice versa.
        """
        if len(self.literals) != 1 or not self.is_fully_mapped():
            return None
        item = self.literals[0]
        if isinstance(item, OrderAtom):
            return item.negated()
        assert isinstance(item, Literal)
        return item.negated()

    def __repr__(self) -> str:
        inner = ", ".join(repr(item) for item in self.literals)
        return f"residue[{inner}] of {self.constraint!r}"


def _renamed_apart(ic: IntegrityConstraint, rule: Rule) -> IntegrityConstraint:
    avoid = rule.variables()
    own = sorted(ic.variables(), key=lambda v: v.name)
    stream = fresh_variables("Ic", avoid=avoid | set(own))
    renaming = Substitution({v: next(stream) for v in own if v in avoid})
    return ic.substitute(renaming) if renaming else ic


def residues_for_rule(
    rule: Rule, ic: IntegrityConstraint, *, include_trivial: bool = False
) -> list[Residue]:
    """All residues of ``ic`` with respect to ``rule``.

    Enumerates every nonempty subset of the ic's positive EDB atoms and
    every homomorphism of that subset into the rule's positive body
    atoms (the rule's variables are frozen).  With
    ``include_trivial=True`` the empty mapping (whole ic as residue) is
    included as well.
    """
    ic = _renamed_apart(ic, rule)
    target = [lit.atom for lit in rule.positive_literals]
    ic_positives = list(ic.positive_atoms)
    other_items: list[BodyItem] = [
        item
        for item in ic.body
        if not (isinstance(item, Literal) and item.positive)
    ]
    results: list[Residue] = []
    seen: set[tuple[frozenset, tuple[BodyItem, ...]]] = set()
    if include_trivial:
        results.append(Residue(ic, Substitution(), tuple(ic.body)))
    for size in range(1, len(ic_positives) + 1):
        for subset in itertools.combinations(range(len(ic_positives)), size):
            chosen = [ic_positives[i] for i in subset]
            rest_atoms = [
                Literal(ic_positives[i], True)
                for i in range(len(ic_positives))
                if i not in subset
            ]
            for hom in extend_homomorphism(chosen, target):
                residue_items = tuple(
                    item.substitute(hom) for item in (*rest_atoms, *other_items)
                )
                key = (frozenset(hom.items()), residue_items)
                if key in seen:
                    continue
                seen.add(key)
                results.append(Residue(ic, hom, residue_items))
    return results


def rule_violates(rule: Rule, ic: IntegrityConstraint) -> bool:
    """Whether *every* instantiation of ``rule`` violates ``ic``.

    True when some homomorphism maps all positive atoms of the ic into
    the rule's positive body, every negated ic atom onto a negated body
    literal, and every order atom of the ic is entailed by the rule's
    order atoms.  Sound for all fragments; complete for plain ic's and
    for ic's whose order/negated atoms appear explicitly in the rule
    (the situation Section 4.2's rewriting creates).
    """
    ic = _renamed_apart(ic, rule)
    target = [lit.atom for lit in rule.positive_literals]
    rule_order = OrderConstraintSet(rule.order_atoms)
    negated_in_rule = {lit.atom for lit in rule.negative_literals}
    for hom in extend_homomorphism(list(ic.positive_atoms), target):
        order_ok = all(
            rule_order.entails(atom.substitute(hom)) for atom in ic.order_atoms
        )
        if not order_ok:
            continue
        negation_ok = all(
            atom.substitute(hom) in negated_in_rule for atom in ic.negative_atoms
        )
        if negation_ok:
            return True
    return False


def injectable_conditions(
    rule: Rule, constraints: Sequence[IntegrityConstraint]
) -> list[BodyItem]:
    """All single-literal residue negations applicable to ``rule``.

    Conditions already entailed by the rule body are dropped, and
    duplicates are removed while preserving a stable order.
    """
    rule_order = OrderConstraintSet(rule.order_atoms)
    existing = set(rule.body)
    conditions: list[BodyItem] = []
    for ic in constraints:
        for residue in residues_for_rule(rule, ic):
            condition = residue.negation()
            if condition is None or condition in existing:
                continue
            if isinstance(condition, OrderAtom) and rule_order.entails(condition):
                continue
            if condition not in conditions:
                conditions.append(condition)
    return conditions


def constrain_rule(
    rule: Rule, constraints: Sequence[IntegrityConstraint]
) -> Rule | None:
    """CGM88 single-rule semantic optimization.

    Returns ``None`` when the rule is unsatisfiable under the ic's
    (some residue is empty / a full violation mapping exists); otherwise
    returns the rule with all injectable residue negations appended.
    """
    if any(rule_violates(rule, ic) for ic in constraints):
        return None
    conditions = injectable_conditions(rule, constraints)
    if not conditions:
        return rule
    constrained = rule.with_extra_conditions(conditions)
    if not OrderConstraintSet(constrained.order_atoms).is_satisfiable():
        return None
    return constrained


def constrain_program(
    program: Program, constraints: Sequence[IntegrityConstraint]
) -> Program:
    """Apply :func:`constrain_rule` to every rule, dropping unsatisfiable ones.

    This is the *non-recursive* optimizer: sound for any program, but it
    misses interactions that only appear across derivation trees (the
    paper's Section 3 second example); those require
    :func:`repro.core.rewrite.optimize`.
    """
    kept: list[Rule] = []
    for rule in program.rules:
        constrained = constrain_rule(rule, constraints)
        if constrained is not None:
            kept.append(constrained)
    return Program(kept, program.query)
