"""The paper's core algorithms: residues, adornments, query tree, rewriting,
satisfiability, reachability, emptiness and containment."""

from .adornments import (
    AdornedRule,
    AdornmentResult,
    LocalAtomIndex,
    Triplet,
    compute_adornments,
)
from .containment import (
    containment_as_satisfiability,
    program_contained_in_ucq,
    satisfiability_as_noncontainment,
)
from .emptiness import (
    EmptinessTooLargeError,
    is_empty_program,
    rule_satisfiable_wrt,
    unsatisfiable_initialization_rules,
)
from .local_atoms import (
    LocalAtomPlan,
    NonLocalConstraintError,
    prepare_local_atoms,
    quasi_local_report,
    split_rules_on_local_atoms,
)
from .order_propagation import (
    OrderPropagation,
    normalize_rule,
    propagate_order_constraints,
)
from .querytree import GoalNode, QueryTree, RuleNode, build_query_tree
from .reachability import (
    bounded_satisfiability,
    is_query_reachable,
    is_satisfiable,
    reachability_program,
    satisfiability_as_reachability,
)
from .residues import (
    Residue,
    constrain_program,
    constrain_rule,
    injectable_conditions,
    residues_for_rule,
    rule_violates,
)
from .rewrite import OptimizationReport, optimize
from .visualize import dependency_dot, querytree_dot

__all__ = [
    "AdornedRule",
    "AdornmentResult",
    "LocalAtomIndex",
    "Triplet",
    "compute_adornments",
    "containment_as_satisfiability",
    "program_contained_in_ucq",
    "satisfiability_as_noncontainment",
    "EmptinessTooLargeError",
    "is_empty_program",
    "rule_satisfiable_wrt",
    "unsatisfiable_initialization_rules",
    "LocalAtomPlan",
    "NonLocalConstraintError",
    "prepare_local_atoms",
    "quasi_local_report",
    "split_rules_on_local_atoms",
    "OrderPropagation",
    "normalize_rule",
    "propagate_order_constraints",
    "GoalNode",
    "QueryTree",
    "RuleNode",
    "build_query_tree",
    "bounded_satisfiability",
    "is_query_reachable",
    "is_satisfiable",
    "reachability_program",
    "satisfiability_as_reachability",
    "Residue",
    "constrain_program",
    "constrain_rule",
    "injectable_conditions",
    "residues_for_rule",
    "rule_violates",
    "OptimizationReport",
    "optimize",
    "dependency_dot",
    "querytree_dot",
]
