"""Graphviz (DOT) export of query trees and predicate graphs.

Figure 1 of the paper draws the final query tree; :func:`querytree_dot`
produces the same picture as a DOT document (renderable with
``dot -Tpng``).  Goal nodes become boxes (double border when they are
roots, dashed when they are references to an expanded node), rule nodes
become ellipses with the rule text; pruned (unproductive/unreachable)
nodes are greyed out.

:func:`dependency_dot` renders a program's predicate dependency graph —
handy for understanding how the rewriting specialized the predicates.
"""

from __future__ import annotations

from ..datalog.program import Program
from .querytree import GoalNode, QueryTree, RuleNode

__all__ = ["querytree_dot", "dependency_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def querytree_dot(tree: QueryTree, *, include_labels: bool = False) -> str:
    """Render the query forest as a DOT digraph."""
    lines = [
        "digraph querytree {",
        "  rankdir=TB;",
        '  node [fontname="Helvetica", fontsize=10];',
    ]
    ids: dict[int, str] = {}
    counter = [0]

    def node_id(obj: object) -> str:
        key = id(obj)
        if key not in ids:
            ids[key] = f"n{counter[0]}"
            counter[0] += 1
        return ids[key]

    roots = set(id(root) for root in tree.roots)

    def emit_goal(goal: GoalNode) -> None:
        gid = node_id(goal)
        label = repr(goal.atom)
        if include_labels and not goal.is_edb:
            residues = sorted(
                t.render(tree.constraints) for t in goal.label if not t.is_trivial()
            )
            if residues:
                label += "\\n" + "\\n".join(residues)
        attributes = [f'label="{_escape(label)}"', "shape=box"]
        if id(goal) in roots:
            attributes.append("peripheries=2")
        if goal.is_edb:
            attributes.append('style=filled, fillcolor="#eef6ee"')
        elif goal.reference is not None:
            attributes.append("style=dashed")
        elif not (goal.productive and goal.reachable):
            attributes.append('color="#bbbbbb", fontcolor="#bbbbbb"')
        lines.append(f"  {gid} [{', '.join(attributes)}];")
        if goal.reference is not None:
            lines.append(
                f"  {gid} -> {node_id(goal.reference)} [style=dotted, constraint=false];"
            )
        for rule_node in goal.children:
            emit_rule(rule_node)
            lines.append(f"  {gid} -> {node_id(rule_node)};")

    def emit_rule(rule_node: RuleNode) -> None:
        rid = node_id(rule_node)
        attributes = [f'label="{_escape(repr(rule_node.instance))}"', "shape=ellipse"]
        if not (rule_node.productive and rule_node.reachable):
            attributes.append('color="#bbbbbb", fontcolor="#bbbbbb"')
        lines.append(f"  {rid} [{', '.join(attributes)}];")
        for subgoal in rule_node.subgoals:
            emit_goal(subgoal)
            lines.append(f"  {rid} -> {node_id(subgoal)};")

    for root in tree.roots:
        emit_goal(root)
    lines.append("}")
    return "\n".join(lines)


def dependency_dot(program: Program) -> str:
    """Render the predicate dependency graph of a program as DOT."""
    lines = [
        "digraph dependencies {",
        "  rankdir=LR;",
        '  node [fontname="Helvetica", fontsize=10];',
    ]
    idb = program.idb_predicates
    for predicate in sorted(idb):
        shape = "doublecircle" if predicate == program.query else "circle"
        lines.append(f'  "{predicate}" [shape={shape}];')
    for predicate in sorted(program.edb_predicates):
        lines.append(f'  "{predicate}" [shape=box, style=filled, fillcolor="#eef6ee"];')
    edges: set[tuple[str, str]] = set()
    for rule in program.rules:
        head = rule.head.predicate
        for literal in rule.relational_literals:
            style = "solid" if literal.positive else "dashed"
            edge = (head, literal.predicate, style)
            if edge not in edges:
                edges.add(edge)
                lines.append(
                    f'  "{head}" -> "{literal.predicate}" [style={style}];'
                )
    lines.append("}")
    return "\n".join(lines)
