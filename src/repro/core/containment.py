"""Containment of a Datalog program in a union of conjunctive queries.

Proposition 5.1 makes satisfiability w.r.t. ic's and *non*-containment
of a program in a UCQ LOGSPACE-interreducible.  Both reductions are
implemented:

* :func:`containment_as_satisfiability` — mark the head arguments of
  the UCQ with fresh unary EDB predicates ``__g0__, ...``; the program
  gets an extra 0-ary query ``__ans__() :- q(X0..), __g0__(X0), ...``
  and each CQ becomes the ic ``:- body(Qi), __g0__(Y0), ...``.  The
  program is **not** contained in the UCQ iff the marked query is
  satisfiable w.r.t. the generated ic's.
* :func:`satisfiability_as_noncontainment` — the converse direction:
  each ic becomes a CQ over a fresh 0-ary answer predicate; the query is
  satisfiable iff the extended program is not contained in that union.

:func:`program_contained_in_ucq` is the user-facing test built on the
first reduction.  It inherits the decidability frontier of the
satisfiability procedure: exact when the CQs' order/negated atoms turn
into *local* atoms of the generated ic's, raising
:class:`~repro.core.local_atoms.NonLocalConstraintError` otherwise (the
fragment where containment itself becomes undecidable — the "new
decidability and undecidability results" the paper derives for [CV92]).
"""

from __future__ import annotations

from typing import Sequence

from ..constraints.integrity import IntegrityConstraint
from ..cq.conjunctive import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..datalog.atoms import Atom, Literal
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Variable
from .reachability import is_satisfiable

__all__ = [
    "program_contained_in_ucq",
    "containment_as_satisfiability",
    "satisfiability_as_noncontainment",
]

_ANSWER = "__ans__"


def _marker(index: int) -> str:
    return f"__g{index}__"


def containment_as_satisfiability(
    program: Program, union: UnionOfConjunctiveQueries
) -> tuple[Program, list[IntegrityConstraint]]:
    """The Proposition 5.1 reduction (non-containment -> satisfiability).

    Returns ``(marked_program, ics)`` with 0-ary query ``__ans__``:
    ``program ⊑ union`` iff ``__ans__`` is **un**satisfiable w.r.t. the
    generated ic's.
    """
    if program.query is None:
        raise ValueError("containment needs a program with a query predicate")
    if union.head_predicate != program.query:
        raise ValueError(
            f"union head {union.head_predicate} differs from program query "
            f"{program.query}"
        )
    arity = program.arity_of(program.query)
    if union.head_arity != arity:
        raise ValueError("arity mismatch between program query and union head")

    head_vars = tuple(Variable(f"X{i}") for i in range(arity))
    answer_body: list = [Literal(Atom(program.query, head_vars))]
    answer_body += [
        Literal(Atom(_marker(i), (head_vars[i],))) for i in range(arity)
    ]
    marked = Program(
        list(program.rules) + [Rule(Atom(_ANSWER, ()), tuple(answer_body))],
        _ANSWER,
        validate=False,
    )

    constraints: list[IntegrityConstraint] = []
    for query in union:
        body: list = list(query.body)
        for i, head_arg in enumerate(query.head.args):
            body.append(Literal(Atom(_marker(i), (head_arg,))))
        constraints.append(IntegrityConstraint(tuple(body)))
    return marked, constraints


def program_contained_in_ucq(
    program: Program,
    union: UnionOfConjunctiveQueries | Sequence[ConjunctiveQuery],
    *,
    max_adornments: int = 4096,
) -> bool:
    """Exact containment of a recursive program in a union of CQs.

    For plain programs and CQs this is the [CV92] problem (2EXPTIME);
    order atoms and negated EDB atoms are supported as long as the
    induced ic's are fully local.
    """
    if not isinstance(union, UnionOfConjunctiveQueries):
        union = UnionOfConjunctiveQueries(tuple(union))
    marked, constraints = containment_as_satisfiability(program, union)
    return not is_satisfiable(marked, constraints, max_adornments=max_adornments)


def satisfiability_as_noncontainment(
    program: Program, constraints: Sequence[IntegrityConstraint]
) -> tuple[Program, UnionOfConjunctiveQueries]:
    """The converse Proposition 5.1 reduction (satisfiability -> non-containment).

    Returns ``(extended_program, union)`` over a fresh 0-ary answer
    predicate: the original query is satisfiable w.r.t. the ic's iff the
    extended program is **not** contained in the union.
    """
    if program.query is None:
        raise ValueError("satisfiability needs a program with a query predicate")
    arity = program.arity_of(program.query)
    head_vars = tuple(Variable(f"X{i}") for i in range(arity))
    extended = Program(
        list(program.rules)
        + [Rule(Atom(_ANSWER, ()), (Literal(Atom(program.query, head_vars)),))],
        _ANSWER,
        validate=False,
    )
    union = UnionOfConjunctiveQueries(
        tuple(
            ConjunctiveQuery(Atom(_ANSWER, ()), ic.body) for ic in constraints
        )
    )
    return extended, union
