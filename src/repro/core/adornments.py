"""The bottom-up adornment phase of the query-tree algorithm (Section 4.1).

An *adornment* of a predicate ``p`` is a set of *triplets*
``(I, sigma, s)`` where ``I`` names an integrity constraint, ``s`` is
the set of EDB atoms of ``I`` not yet mapped into the subtree below a
``p``-node, and ``sigma`` maps the frontier variables of ``s`` (those
shared with mapped atoms) to argument positions of ``p`` — or to a
constant, when the mapped image was a constant.

The phase computes, by a fixpoint over the rules:

* the set of adornments of every IDB predicate,
* the set of *adorned rules* ``P1`` (``p^Ap :- q1^A1, ..., c``), each
  remembering how every head triplet arose (which rule-level mapping
  and which contributing subgoal triplets) — the information the
  top-down phase needs to push labels from parents to children,
* inconsistency: a rule-adornment combination producing a triplet with
  an **empty** ``s`` (all atoms of an ic mapped) is *inconsistent* and
  generates no adorned rule — precisely the derivations-guaranteed-empty
  that semantic query optimization removes.

Local order / negated atoms (Section 4.2) are enforced here through the
``retention`` hook: when a triplet maps an anchor atom ``a`` of an ic
into an EDB occurrence of a rule, the associated local atom ``h(l)``
must appear in the rule (order atoms are checked by entailment against
the rule's order constraints; negated atoms syntactically).  Triplets
failing the check are dropped, exactly as in the modified algorithm.

Representation notes (documented deviations):

* EDB equality patterns are realized per rule occurrence instead of by
  pre-enumerating pattern predicates — equivalent, but generated on
  demand and with constants preserved.
* When an adorned subgoal's triplet maps a variable to several argument
  positions holding *distinct* terms at the occurrence, the combination
  is dropped (the paper's patterns equate them; such heads with
  repeated variables are rare and the drop is sound — it only weakens
  pruning, never correctness).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..constraints.dense_order import OrderConstraintSet
from ..constraints.integrity import IntegrityConstraint
from ..cq.homomorphism import extend_homomorphism
from ..datalog.atoms import Atom, Literal, OrderAtom
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Substitution, Term, Variable
from ..observability.trace import get_tracer
from ..robustness.budget import Budget, Governor
from ..robustness.errors import BudgetExceededError


class AdornmentLimitError(BudgetExceededError, RuntimeError):
    """The per-predicate adornment count exceeded ``max_adornments``.

    Subclasses ``RuntimeError`` for backward compatibility with callers
    of the original guard, and ``BudgetExceededError`` so the
    optimizer's degradation ladder treats it like any budget trip.
    """

__all__ = [
    "Triplet",
    "SigmaImage",
    "Derivation",
    "AdornedRule",
    "AdornmentResult",
    "LocalAtomIndex",
    "compute_adornments",
    "base_triplets",
    "trivial_triplet",
]

#: A sigma image: the set of argument positions holding the image term,
#: or the constant the variable is bound to.
SigmaImage = object  # frozenset[int] | Constant


@dataclass(frozen=True)
class Triplet:
    """A predicate-level triplet ``(I, sigma, s)``.

    ``ic`` indexes the constraint list; ``unmapped`` holds body-atom
    indices of the ic's positive atoms still unmapped; ``sigma`` is a
    canonically sorted tuple of ``(variable name, image)`` pairs.
    """

    ic: int
    unmapped: frozenset[int]
    sigma: tuple[tuple[str, SigmaImage], ...]

    @staticmethod
    def make(ic: int, unmapped: Iterable[int], sigma: Mapping[str, SigmaImage]) -> "Triplet":
        return Triplet(
            ic,
            frozenset(unmapped),
            tuple(sorted(sigma.items(), key=lambda kv: kv[0])),
        )

    def sigma_dict(self) -> dict[str, SigmaImage]:
        return dict(self.sigma)

    def is_trivial(self) -> bool:
        return not self.sigma and bool(self.unmapped)

    def is_inconsistent(self) -> bool:
        """All EDB atoms of the ic are mapped."""
        return not self.unmapped

    def render(self, constraints: Sequence[IntegrityConstraint]) -> str:
        ic = constraints[self.ic]
        atoms = [repr(ic.positive_atoms[i]) for i in sorted(self.unmapped)]
        sigma = ", ".join(
            f"{name}->{positions}" for name, positions in self.sigma
        )
        return "{" + ", ".join(atoms) + ("}" if not sigma else "} with " + sigma)


def trivial_triplet(ic_index: int, ic: IntegrityConstraint) -> Triplet:
    """The empty-mapping triplet (always present, always redundant)."""
    return Triplet.make(ic_index, range(len(ic.positive_atoms)), {})


def prune_redundant(triplets: Iterable[Triplet]) -> frozenset[Triplet]:
    """Drop triplets dominated by stronger ones.

    A triplet is *redundant* with respect to another of the same ic when
    its unmapped set is a superset and its sigma carries no information
    beyond the stronger triplet's (every binding appears there too) —
    the paper's Section 4 remark, applied "at the end of the
    construction" only: the fixpoints keep all triplets.
    """
    items = list(set(triplets))
    kept: list[Triplet] = []
    for candidate in items:
        dominated = False
        for other in items:
            if other is candidate or other.ic != candidate.ic:
                continue
            if other == candidate:
                continue
            if not other.unmapped <= candidate.unmapped:
                continue
            candidate_sigma = candidate.sigma_dict()
            other_sigma = other.sigma_dict()
            if all(
                name in other_sigma and other_sigma[name] == image
                for name, image in candidate_sigma.items()
            ) and (other.unmapped < candidate.unmapped or set(other_sigma) > set(candidate_sigma)):
                dominated = True
                break
        if not dominated:
            kept.append(candidate)
    return frozenset(kept)


@dataclass(frozen=True)
class Derivation:
    """How one head triplet arose inside a rule (for label push-down).

    ``rule_sigma`` maps ic-variable names to rule-level terms;
    ``contributors`` holds, per positive subgoal, the predicate-level
    triplet chosen there (EDB occurrences included).
    """

    ic: int
    unmapped: frozenset[int]
    rule_sigma: tuple[tuple[str, Term], ...]
    contributors: tuple[Triplet, ...]

    def rule_sigma_dict(self) -> dict[str, Term]:
        return dict(self.rule_sigma)


@dataclass(frozen=True)
class AdornedRule:
    """One rule of the adorned program ``P1``.

    ``rule`` is the original (plain-predicate) rule; the adorned
    rendering attaches ``head_adornment`` to the head predicate and
    ``subgoal_adornments[i]`` to the i-th positive subgoal (``None``
    marks EDB subgoals, whose adornment is their base adornment).
    """

    rule: Rule
    rule_index: int
    head_adornment: frozenset[Triplet]
    subgoal_adornments: tuple[frozenset[Triplet] | None, ...]
    derivations: tuple[Derivation, ...]
    head_triplet_origins: tuple[tuple[Triplet, tuple[int, ...]], ...]
    """Pairs (head triplet, indices into ``derivations`` that produced it)."""

    def origins_of(self, head_triplet: Triplet) -> tuple[int, ...]:
        for triplet, indices in self.head_triplet_origins:
            if triplet == head_triplet:
                return indices
        return ()


class LocalAtomIndex:
    """Anchors and local atoms per (constraint index, positive-atom index).

    Built by :mod:`repro.core.local_atoms`; the plain Section 4.1
    algorithm uses an empty index.
    """

    def __init__(self) -> None:
        self._by_anchor: dict[tuple[int, int], list[tuple[object, bool]]] = {}

    def add(self, ic_index: int, atom_index: int, local_atom: object, is_order: bool) -> None:
        self._by_anchor.setdefault((ic_index, atom_index), []).append(
            (local_atom, is_order)
        )

    def local_atoms_of(self, ic_index: int, atom_index: int) -> list[tuple[object, bool]]:
        return self._by_anchor.get((ic_index, atom_index), [])

    def __bool__(self) -> bool:
        return bool(self._by_anchor)


@dataclass
class AdornmentResult:
    """Output of the bottom-up phase."""

    program: Program
    constraints: tuple[IntegrityConstraint, ...]
    adornments: dict[str, list[frozenset[Triplet]]]
    adorned_rules: list[AdornedRule]
    adornment_ids: dict[tuple[str, frozenset[Triplet]], int]
    inconsistencies: list[tuple[int, Derivation]] = field(default_factory=list)
    """(rule index, derivation) pairs whose residue came out empty."""

    def adorned_name(self, predicate: str, adornment: frozenset[Triplet]) -> str:
        """A stable printable name ``p@k`` for an adorned predicate."""
        index = self.adornment_ids[(predicate, adornment)]
        return f"{predicate}@{index}"

    def rules_for(
        self, predicate: str, adornment: frozenset[Triplet]
    ) -> list[AdornedRule]:
        return [
            adorned
            for adorned in self.adorned_rules
            if adorned.rule.head.predicate == predicate
            and adorned.head_adornment == adornment
        ]


# ----------------------------------------------------------------------
# Base triplets for EDB occurrences
# ----------------------------------------------------------------------
def _frontier_variables(
    ic: IntegrityConstraint, unmapped: frozenset[int]
) -> set[Variable]:
    """Variables shared between unmapped and mapped positive atoms of the ic."""
    positives = ic.positive_atoms
    unmapped_vars: set[Variable] = set()
    mapped_vars: set[Variable] = set()
    for index, atom in enumerate(positives):
        if index in unmapped:
            unmapped_vars |= atom.variables()
        else:
            mapped_vars |= atom.variables()
    return unmapped_vars & mapped_vars


def _retention_ok(
    rule: Rule,
    rule_order: OrderConstraintSet,
    hom: Substitution,
    ic_index: int,
    mapped_indices: Iterable[int],
    local_index: LocalAtomIndex,
) -> bool:
    """The Section 4.2 retention condition for newly mapped anchor atoms."""
    if not local_index:
        return True
    negated_in_rule = {lit.atom for lit in rule.negative_literals}
    for atom_index in mapped_indices:
        for local_atom, is_order in local_index.local_atoms_of(ic_index, atom_index):
            if is_order:
                assert isinstance(local_atom, OrderAtom)
                if not rule_order.entails(local_atom.substitute(hom)):
                    return False
            else:
                assert isinstance(local_atom, Atom)
                if local_atom.substitute(hom) not in negated_in_rule:
                    return False
    return True


def base_triplets(
    occurrence: Atom,
    rule: Rule,
    rule_order: OrderConstraintSet,
    constraints: Sequence[IntegrityConstraint],
    local_index: LocalAtomIndex,
) -> list[tuple[Triplet, dict[str, Term]]]:
    """All triplets of an EDB occurrence within ``rule``.

    Returns pairs (predicate-level triplet, rule-level sigma): the
    predicate-level sigma speaks in argument positions of the occurrence
    atom; the rule-level sigma in the rule's own terms, which is what
    combination across subgoals uses.  The trivial triplet of every ic
    is always included.
    """
    results: list[tuple[Triplet, dict[str, Term]]] = []
    for ic_index, ic in enumerate(constraints):
        results.append((trivial_triplet(ic_index, ic), {}))
        positives = ic.positive_atoms
        indices = range(len(positives))
        for size in range(1, len(positives) + 1):
            for subset in itertools.combinations(indices, size):
                chosen = [positives[i] for i in subset]
                for hom in extend_homomorphism(chosen, [occurrence]):
                    if not _retention_ok(
                        rule, rule_order, hom, ic_index, subset, local_index
                    ):
                        continue
                    unmapped = frozenset(indices) - frozenset(subset)
                    frontier = _frontier_variables(ic, unmapped)
                    rule_sigma: dict[str, Term] = {}
                    sigma: dict[str, SigmaImage] = {}
                    ok = True
                    for var in frontier:
                        image = hom.apply(var)
                        rule_sigma[var.name] = image
                        if isinstance(image, Constant):
                            sigma[var.name] = image
                        else:
                            positions = frozenset(
                                i for i, arg in enumerate(occurrence.args) if arg == image
                            )
                            if not positions:
                                ok = False
                                break
                            sigma[var.name] = positions
                    if not ok:
                        continue
                    # Non-frontier mapped variables still matter at rule
                    # level (they may become frontier after combining).
                    for var in hom:
                        if var.name not in rule_sigma:
                            rule_sigma[var.name] = hom.apply(var)
                    triplet = Triplet.make(ic_index, unmapped, sigma)
                    results.append((triplet, rule_sigma))
    # Deduplicate while keeping the first rule-level sigma per triplet key.
    seen: set[tuple[Triplet, tuple[tuple[str, Term], ...]]] = set()
    unique: list[tuple[Triplet, dict[str, Term]]] = []
    for triplet, rule_sigma in results:
        key = (triplet, tuple(sorted(rule_sigma.items())))
        if key not in seen:
            seen.add(key)
            unique.append((triplet, rule_sigma))
    return unique


# ----------------------------------------------------------------------
# Combining triplets inside one rule
# ----------------------------------------------------------------------
def _occurrence_image(
    triplet: Triplet, occurrence: Atom
) -> dict[str, Term] | None:
    """Rule-level sigma induced by a predicate-level triplet at an occurrence.

    Returns ``None`` when a position set covers distinct occurrence
    terms (the documented drop case).
    """
    rule_sigma: dict[str, Term] = {}
    for name, image in triplet.sigma:
        if isinstance(image, Constant):
            rule_sigma[name] = image
            continue
        assert isinstance(image, frozenset)
        terms = {occurrence.args[i] for i in image}
        if len(terms) != 1:
            return None
        rule_sigma[name] = next(iter(terms))
    return rule_sigma


def _combine_rule_triplets(
    ic_index: int,
    ic: IntegrityConstraint,
    per_subgoal: Sequence[list[tuple[Triplet, dict[str, Term]]]],
) -> list[Derivation]:
    """All compatible combinations of one triplet per positive subgoal.

    Implements ``(I, sigma1 U ... U sigman, s1 ∩ ... ∩ sn)`` with the
    compatibility requirement that shared ic variables map to the same
    rule term.
    """
    derivations: list[Derivation] = []

    def descend(
        index: int,
        sigma: dict[str, Term],
        unmapped: frozenset[int],
        contributors: list[Triplet],
    ) -> None:
        if index == len(per_subgoal):
            derivations.append(
                Derivation(
                    ic_index,
                    unmapped,
                    tuple(sorted(sigma.items())),
                    tuple(contributors),
                )
            )
            return
        for triplet, rule_sigma in per_subgoal[index]:
            merged = dict(sigma)
            compatible = True
            for name, term in rule_sigma.items():
                existing = merged.get(name)
                if existing is None:
                    merged[name] = term
                elif existing != term:
                    compatible = False
                    break
            if not compatible:
                continue
            contributors.append(triplet)
            descend(index + 1, merged, unmapped & triplet.unmapped, contributors)
            contributors.pop()

    full = frozenset(range(len(ic.positive_atoms)))
    descend(0, {}, full, [])
    return derivations


def _head_triplet_from(
    derivation: Derivation,
    ic: IntegrityConstraint,
    head: Atom,
) -> Triplet | None:
    """Project a rule-level derivation onto the head predicate.

    Frontier variables must be visible in the head (else the triplet is
    not inherited); visible non-frontier variables of the unmapped atoms
    are kept as well.
    """
    frontier = _frontier_variables(ic, derivation.unmapped)
    rule_sigma = derivation.rule_sigma_dict()
    head_positions: dict[Term, frozenset[int]] = {}
    for i, arg in enumerate(head.args):
        head_positions.setdefault(arg, frozenset())
        head_positions[arg] |= {i}
    unmapped_vars: set[str] = set()
    for index in derivation.unmapped:
        unmapped_vars |= {v.name for v in ic.positive_atoms[index].variables()}
    sigma: dict[str, SigmaImage] = {}
    for var in frontier:
        image = rule_sigma.get(var.name)
        if image is None:
            return None
        if isinstance(image, Constant):
            sigma[var.name] = image
        elif image in head_positions:
            sigma[var.name] = head_positions[image]
        else:
            return None  # frontier variable invisible at the head
    for name, image in rule_sigma.items():
        if name in sigma or name not in unmapped_vars:
            continue
        if isinstance(image, Constant):
            sigma[name] = image
        elif image in head_positions:
            sigma[name] = head_positions[image]
    return Triplet.make(derivation.ic, derivation.unmapped, sigma)


# ----------------------------------------------------------------------
# The bottom-up fixpoint
# ----------------------------------------------------------------------
def compute_adornments(
    program: Program,
    constraints: Sequence[IntegrityConstraint],
    *,
    local_index: LocalAtomIndex | None = None,
    max_adornments: int = 4096,
    treat_complete_as_inconsistent: bool = True,
    budget: "Budget | Governor | None" = None,
) -> AdornmentResult:
    """Run the bottom-up phase and build the adorned program ``P1``.

    ``max_adornments`` bounds the per-predicate adornment count (the
    worst case is doubly exponential — Theorem 5.1); exceeding it raises
    :class:`AdornmentLimitError` (a ``RuntimeError``) rather than
    looping for hours.  ``budget`` (a
    :class:`~repro.robustness.budget.Budget` or a shared running
    :class:`~repro.robustness.budget.Governor`) additionally enforces
    the wall-clock deadline, cancellation and ``max_expansions`` at
    every adorned-rule expansion.

    With ``treat_complete_as_inconsistent=False`` a complete mapping
    (empty residue) does *not* abort the adorned rule: the empty-residue
    triplet is kept and propagated.  This mode supports the quasi-local
    test of Section 4.2, which runs the original algorithm "while
    mapping only EDB atoms and not generating the inconsistent adornment
    even when all EDB atoms are mapped".
    """
    local_index = local_index or LocalAtomIndex()
    constraints = tuple(constraints)
    idb = program.idb_predicates
    adornments: dict[str, list[frozenset[Triplet]]] = {p: [] for p in idb}
    adorned_rules: list[AdornedRule] = []
    adorned_rule_keys: set[tuple] = set()
    adornment_ids: dict[tuple[str, frozenset[Triplet]], int] = {}
    inconsistencies: list[tuple[int, Derivation]] = []

    def register(predicate: str, adornment: frozenset[Triplet]) -> bool:
        """Record an adornment; True when new."""
        if (predicate, adornment) in adornment_ids:
            return False
        adornment_ids[(predicate, adornment)] = len(adornments[predicate]) + 1
        adornments[predicate].append(adornment)
        if len(adornments[predicate]) > max_adornments:
            raise AdornmentLimitError(
                f"adornment count for {predicate} exceeded {max_adornments}",
                phase="adornments",
                limit="max_adornments",
            )
        return True

    governor = Governor.of(budget)
    tracer = get_tracer()
    trace_on = tracer.enabled
    rounds = 0

    changed = True
    with tracer.span(
        "adornments.compute", rules=len(program.rules), constraints=len(constraints)
    ) as compute_span:
        while changed:
            if governor is not None:
                governor.check("adornments")
            changed = False
            rounds += 1
            round_start = (len(adorned_rules), len(adornment_ids))
            for rule_index, rule in enumerate(program.rules):
                rule_order = OrderConstraintSet(rule.order_atoms)
                positives = rule.positive_literals
                # Available adornment choices per positive subgoal.
                choice_sets: list[list[frozenset[Triplet] | None]] = []
                edb_triplets: dict[int, list[tuple[Triplet, dict[str, Term]]]] = {}
                subgoal_ready = True
                for i, literal in enumerate(positives):
                    if literal.predicate in idb:
                        available = adornments[literal.predicate]
                        if not available:
                            subgoal_ready = False
                            break
                        choice_sets.append(list(available))
                    else:
                        edb_triplets[i] = base_triplets(
                            literal.atom, rule, rule_order, constraints, local_index
                        )
                        choice_sets.append([None])
                if not subgoal_ready:
                    continue
                for choice in itertools.product(*choice_sets):
                    if governor is not None:
                        governor.expand("adornments")
                    key = (rule_index, tuple(choice))
                    if key in adorned_rule_keys:
                        continue
                    # Build per-subgoal triplet options (rule-level sigma attached).
                    per_subgoal_by_ic: list[dict[int, list[tuple[Triplet, dict[str, Term]]]]] = []
                    for i, literal in enumerate(positives):
                        options: dict[int, list[tuple[Triplet, dict[str, Term]]]] = {
                            ic_index: [] for ic_index in range(len(constraints))
                        }
                        if choice[i] is None:
                            for triplet, rule_sigma in edb_triplets[i]:
                                options[triplet.ic].append((triplet, rule_sigma))
                        else:
                            for triplet in choice[i]:
                                rule_sigma = _occurrence_image(triplet, literal.atom)
                                if rule_sigma is not None:
                                    options[triplet.ic].append((triplet, rule_sigma))
                        per_subgoal_by_ic.append(options)

                    derivations: list[Derivation] = []
                    inconsistent = False
                    for ic_index, ic in enumerate(constraints):
                        if not ic.positive_atoms:
                            continue
                        per_subgoal = [
                            options[ic_index] for options in per_subgoal_by_ic
                        ]
                        if positives and any(not opts for opts in per_subgoal):
                            # A subgoal with no triplet options for this ic
                            # cannot happen (the trivial triplet is always
                            # there), but guard anyway.
                            continue
                        for derivation in _combine_rule_triplets(ic_index, ic, per_subgoal):
                            if not derivation.unmapped:
                                inconsistencies.append((rule_index, derivation))
                                if treat_complete_as_inconsistent:
                                    inconsistent = True
                                    break
                            derivations.append(derivation)
                        if inconsistent:
                            break
                    adorned_rule_keys.add(key)
                    if inconsistent:
                        continue
                    # Project onto the head.
                    head_triplets: dict[Triplet, list[int]] = {}
                    for d_index, derivation in enumerate(derivations):
                        ic = constraints[derivation.ic]
                        head_triplet = _head_triplet_from(derivation, ic, rule.head)
                        if head_triplet is not None:
                            head_triplets.setdefault(head_triplet, []).append(d_index)
                    head_adornment = frozenset(head_triplets)
                    register(rule.head.predicate, head_adornment)
                    adorned_rules.append(
                        AdornedRule(
                            rule=rule,
                            rule_index=rule_index,
                            head_adornment=head_adornment,
                            subgoal_adornments=tuple(choice),
                            derivations=tuple(derivations),
                            head_triplet_origins=tuple(
                                (t, tuple(indices)) for t, indices in head_triplets.items()
                            ),
                        )
                    )
                    changed = True
            if trace_on:
                tracer.event(
                    "adornments.round",
                    index=rounds,
                    new_adorned_rules=len(adorned_rules) - round_start[0],
                    new_adornments=len(adornment_ids) - round_start[1],
                )
        if trace_on:
            compute_span.set(
                rounds=rounds,
                adorned_rules=len(adorned_rules),
                adornments=len(adornment_ids),
                inconsistencies=len(inconsistencies),
            )
    return AdornmentResult(
        program=program,
        constraints=constraints,
        adornments=adornments,
        adorned_rules=adorned_rules,
        adornment_ids=adornment_ids,
        inconsistencies=inconsistencies,
    )
