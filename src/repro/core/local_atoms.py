"""Section 4.2: ic's with local order atoms and negated EDB atoms.

The extension works in two steps:

1. **Transfer** each local atom ``l`` (anchored at an EDB atom ``a`` of
   the same ic that contains all of ``l``'s variables) into the program:
   repeatedly, whenever a rule has an EDB atom ``a'`` admitting a
   homomorphism ``h : a -> a'`` and neither ``h(l)`` nor ``not h(l)``
   appears in its body, split the rule into two copies, one with
   ``h(l)`` and one with ``not h(l)``.  The rewriting terminates because
   it introduces no new variables.

2. **Modify** the bottom-up phase: a triplet mapping an anchor ``a``
   into an EDB atom of a rule is retained only if the corresponding
   ``h(l)`` (for order atoms, by entailment) or ``not h(l)`` (for
   negated atoms, syntactically) is in the rule.  This is wired through
   :class:`repro.core.adornments.LocalAtomIndex`.

Anchor choice: the paper associates each local atom with *one* EDB
atom; any choice is correct (Theorem 4.2), but it determines where the
case split lands and therefore where the derived constraints surface in
the rewritten program.  The default policy anchors at the candidate
whose predicate occurs in the most program rules — for the Section 3
example this anchors ``X < 100`` at ``step`` and reproduces the paper's
rewriting ``r1', r2'`` with ``X >= 100`` inside the recursive rules.

Non-local atoms make the problem undecidable (Theorems 5.3-5.5);
:func:`prepare_local_atoms` raises :class:`NonLocalConstraintError` for
them.  The quasi-local escape hatch of the paper (order atoms whose full
mappings always land inside a single rule node) is implemented as
:func:`quasi_local_report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..constraints.dense_order import OrderConstraintSet
from ..constraints.integrity import IntegrityConstraint
from ..constraints.locality import nonlocal_atoms
from ..cq.homomorphism import extend_homomorphism
from ..datalog.atoms import Atom, Literal, OrderAtom
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Variable

from .adornments import LocalAtomIndex, compute_adornments
from ..robustness.errors import ReproError

__all__ = [
    "NonLocalConstraintError",
    "LocalAtomPlan",
    "prepare_local_atoms",
    "split_rules_on_local_atoms",
    "quasi_local_report",
]


class NonLocalConstraintError(ReproError, ValueError):
    """An ic has a non-local order or negated atom (undecidable fragment)."""


@dataclass(frozen=True)
class AnchoredAtom:
    """A local atom with its chosen anchor (positional within the ic)."""

    ic_index: int
    anchor_index: int  # index into ic.positive_atoms
    anchor: Atom
    local_atom: object  # OrderAtom, or Atom (positive form of a negated atom)
    is_order: bool


@dataclass
class LocalAtomPlan:
    """Everything the main pipeline needs for the Section 4.2 extension."""

    program: Program
    index: LocalAtomIndex
    anchored: list[AnchoredAtom]


def _candidate_anchor_indices(
    ic: IntegrityConstraint, atom_vars: set[Variable]
) -> list[int]:
    return [
        i
        for i, positive in enumerate(ic.positive_atoms)
        if atom_vars <= positive.variables()
    ]


def _predicate_frequency(program: Program) -> dict[str, int]:
    counts: dict[str, int] = {}
    for rule in program.rules:
        for predicate in {lit.predicate for lit in rule.positive_literals}:
            counts[predicate] = counts.get(predicate, 0) + 1
    return counts


def _choose_anchors(
    program: Program, constraints: Sequence[IntegrityConstraint]
) -> list[AnchoredAtom]:
    """Pick one anchor per local atom; raise for non-local atoms."""
    frequency = _predicate_frequency(program)
    anchored: list[AnchoredAtom] = []
    for ic_index, ic in enumerate(constraints):
        bad = nonlocal_atoms(ic)
        if bad:
            raise NonLocalConstraintError(
                f"constraint {ic} has non-local atoms {bad}; satisfiability "
                "for this fragment is undecidable (Theorems 5.3-5.5)"
            )
        local_candidates: list[tuple[object, bool]] = []
        for item in ic.body:
            if isinstance(item, OrderAtom):
                local_candidates.append((item, True))
            elif isinstance(item, Literal) and not item.positive:
                local_candidates.append((item.atom, False))
        for local_atom, is_order in local_candidates:
            variables = (
                local_atom.variables()
                if isinstance(local_atom, (OrderAtom, Atom))
                else set()
            )
            indices = _candidate_anchor_indices(ic, variables)
            best = max(
                indices,
                key=lambda i: (
                    frequency.get(ic.positive_atoms[i].predicate, 0),
                    -i,
                ),
            )
            anchored.append(
                AnchoredAtom(ic_index, best, ic.positive_atoms[best], local_atom, is_order)
            )
    return anchored


def split_rules_on_local_atoms(
    program: Program, anchored: Sequence[AnchoredAtom]
) -> Program:
    """The case-splitting rewriting of Section 4.2.

    Applies the (a, l) pairs to every rule until no EDB occurrence
    admits a homomorphic image of an anchor whose local atom is
    undetermined in the body.
    """
    idb = program.idb_predicates
    rules = list(program.rules)
    changed = True
    while changed:
        changed = False
        next_rules: list[Rule] = []
        for rule in rules:
            split = _split_once(rule, anchored, idb)
            if split is None:
                next_rules.append(rule)
            else:
                next_rules.extend(split)
                changed = True
        rules = next_rules
    return Program(rules, program.query, validate=False)


def _split_once(
    rule: Rule, anchored: Sequence[AnchoredAtom], idb: frozenset[str]
) -> list[Rule] | None:
    """Split ``rule`` on the first undetermined local-atom image, if any."""
    order = OrderConstraintSet(rule.order_atoms)
    negated_atoms = {lit.atom for lit in rule.negative_literals}
    positive_atoms = {lit.atom for lit in rule.positive_literals}
    for pair in anchored:
        for literal in rule.positive_literals:
            if literal.predicate in idb or literal.predicate != pair.anchor.predicate:
                continue
            for hom in extend_homomorphism([pair.anchor], [literal.atom]):
                if pair.is_order:
                    assert isinstance(pair.local_atom, OrderAtom)
                    image = pair.local_atom.substitute(hom)
                    if order.entails(image) or order.entails(image.negated()):
                        continue
                    return [
                        rule.with_extra_conditions([image]),
                        rule.with_extra_conditions([image.negated()]),
                    ]
                assert isinstance(pair.local_atom, Atom)
                image_atom = pair.local_atom.substitute(hom)
                if image_atom in negated_atoms or image_atom in positive_atoms:
                    continue
                return [
                    rule.with_extra_conditions([Literal(image_atom, True)]),
                    rule.with_extra_conditions([Literal(image_atom, False)]),
                ]
    return None


def prepare_local_atoms(
    program: Program, constraints: Sequence[IntegrityConstraint]
) -> LocalAtomPlan:
    """Run the Section 4.2 preparation; identity for plain ic's."""
    anchored = _choose_anchors(program, constraints)
    index = LocalAtomIndex()
    for pair in anchored:
        index.add(pair.ic_index, pair.anchor_index, pair.local_atom, pair.is_order)
    if not anchored:
        return LocalAtomPlan(program, index, anchored)
    rewritten = split_rules_on_local_atoms(program, anchored)
    return LocalAtomPlan(rewritten, index, anchored)


@dataclass(frozen=True)
class QuasiLocalFinding:
    """One complete mapping inspected by the quasi-local test."""

    ic_index: int
    rule_index: int
    quasi_local: bool


def quasi_local_report(
    program: Program, constraints: Sequence[IntegrityConstraint]
) -> list[QuasiLocalFinding]:
    """The Section 4.2 quasi-local test for ``{theta}``-ic's.

    Runs the original algorithm mapping only EDB atoms, without treating
    complete mappings as inconsistent, and checks for every complete
    mapping whether each order atom of the ic has all its variables
    mapped within a single rule node (visible in that rule's recorded
    sigma).  If every finding is quasi-local, the ic set is quasi-local
    with respect to the program and the Section 4.1 algorithm extended
    with per-rule order checks is exact (paper, end of Section 4.2).
    """
    result = compute_adornments(
        program, constraints, treat_complete_as_inconsistent=False
    )
    findings: list[QuasiLocalFinding] = []
    for rule_index, derivation in result.inconsistencies:
        ic = constraints[derivation.ic]
        sigma_names = {name for name, _ in derivation.rule_sigma}
        quasi = all(
            {v.name for v in order_atom.variables()} <= sigma_names
            for order_atom in ic.order_atoms
        )
        findings.append(QuasiLocalFinding(derivation.ic, rule_index, quasi))
    return findings
