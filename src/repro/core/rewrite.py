"""The end-to-end semantic query optimizer (Theorems 4.1 and 4.2).

:func:`optimize` rewrites a Datalog program into one that *completely
incorporates* its integrity constraints:

1. classify the ic's — plain and fully-local ic's drive the query-tree
   machinery; non-local ic's (undecidable fragment, Theorems 5.3-5.5)
   are excluded from it but still feed the sound per-rule residue
   injection (Example 3.1 is exactly such a case);
2. transfer local order/negated atoms into the rules (Section 4.2 case
   splits) and build the retention index;
3. run the [LMSS93]-style order propagation preprocessing;
4. bottom-up adornments, top-down query tree, pruning;
5. extract the rewritten program ``P'`` from the surviving rule nodes,
   naming adorned predicates ``p_1, p_2, ...`` and bridging the query
   predicate over its surviving adornments;
6. inject single-literal residue negations (CGM88) into the rules of
   ``P'``.

The :class:`OptimizationReport` carries every intermediate artifact so
examples and benchmarks can show the whole story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..constraints.integrity import IntegrityConstraint, check_no_idb
from ..constraints.locality import is_fully_local
from ..observability.trace import get_tracer
from ..robustness.budget import Budget, CancellationToken, FallbackStep, Governor
from ..robustness.errors import BudgetExceededError, Cancelled, EvaluationAborted, ReproError
from ..datalog.atoms import Atom, Literal
from ..datalog.database import Database, Row
from ..datalog.evaluation import EvaluationResult, evaluate
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Substitution, Variable
from .adornments import AdornmentResult, compute_adornments
from .local_atoms import LocalAtomPlan, prepare_local_atoms
from .order_propagation import propagate_order_constraints
from .querytree import GoalNode, QueryTree, RuleNode, build_query_tree
from .residues import constrain_program, injectable_conditions

__all__ = ["OptimizationReport", "optimize"]


@dataclass
class OptimizationReport:
    """All artifacts of one optimization run.

    When the run degraded under a budget (see :func:`optimize`),
    ``fallback_chain`` records each abandoned strategy in order and the
    tree-phase artifacts (``adornment_result``, ``tree``) are ``None``.
    """

    original: Program
    constraints: tuple[IntegrityConstraint, ...]
    tree_constraints: tuple[IntegrityConstraint, ...]
    residue_only_constraints: tuple[IntegrityConstraint, ...]
    preprocessed: Program
    adornment_result: AdornmentResult | None
    tree: QueryTree | None
    program: Program | None
    satisfiable: bool
    complete: bool
    predicate_names: dict[tuple, str] = field(default_factory=dict)
    fallback_chain: tuple[FallbackStep, ...] = ()

    def evaluate(
        self,
        database: Database,
        *,
        budget: "Budget | Governor | None" = None,
        cancellation: CancellationToken | None = None,
    ) -> frozenset[Row]:
        """Evaluate the rewritten program's query over a database."""
        if self.program is None:
            return frozenset()
        return evaluate(
            self.program, database, budget=budget, cancellation=cancellation
        ).query_rows()

    def evaluation(
        self,
        database: Database,
        *,
        budget: "Budget | Governor | None" = None,
        cancellation: CancellationToken | None = None,
    ) -> EvaluationResult | None:
        if self.program is None:
            return None
        return evaluate(
            self.program, database, budget=budget, cancellation=cancellation
        )

    def cache_key(self) -> str:
        """The data-independent digest keying this report's artifacts.

        SHA-256 over the original program's rules, its query predicate
        and the constraints — the same :func:`repro.digest.workload_digest`
        (without EDB rows) that persist and bench use, so a cached
        rewrite can never be replayed against a program it was not
        computed from.  The serving layer's artifact cache
        (:class:`repro.serve.cache.ArtifactCache`) builds its keys on
        this digest.
        """
        from ..digest import program_digest

        return program_digest(self.original, self.constraints)

    def render_tree(self) -> str:
        if self.tree is None:
            return "(no query tree: the tree phase was skipped by a budget fallback)"
        return self.tree.render()

    def summary(self) -> str:
        lines = [
            f"original rules: {len(self.original.rules)}",
            f"rewritten rules: {0 if self.program is None else len(self.program.rules)}",
            f"query satisfiable: {self.satisfiable}",
            f"complete incorporation: {self.complete}",
        ]
        if self.residue_only_constraints:
            lines.append(
                "non-local constraints handled by residue injection only: "
                + "; ".join(repr(ic) for ic in self.residue_only_constraints)
            )
        for step in self.fallback_chain:
            lines.append(f"fallback: {step.describe()}")
        return "\n".join(lines)

    def explain(self) -> str:
        """A full, human-readable account of the optimization run."""
        from .adornments import prune_redundant

        sections: list[str] = []
        sections.append("== Original program ==\n" + repr(self.original))
        sections.append(
            "== Integrity constraints ==\n"
            + "\n".join(repr(ic) for ic in self.constraints)
        )
        if self.residue_only_constraints:
            sections.append(
                "== Non-local constraints (residue injection only) ==\n"
                + "\n".join(repr(ic) for ic in self.residue_only_constraints)
            )
        if self.preprocessed.rules != self.original.rules:
            sections.append(
                "== After local-atom splits and order propagation ==\n"
                + repr(self.preprocessed)
            )
        adornment_lines: list[str] = []
        result = self.adornment_result
        if result is not None:
            for predicate in sorted(result.adornments):
                for adornment in result.adornments[predicate]:
                    name = result.adorned_name(predicate, adornment)
                    residues = sorted(
                        triplet.render(result.constraints)
                        for triplet in prune_redundant(adornment)
                        if not triplet.is_trivial()
                    )
                    adornment_lines.append(f"{name}: {residues if residues else '(trivial)'}")
        if adornment_lines:
            sections.append("== Adornments ==\n" + "\n".join(adornment_lines))
        if self.fallback_chain:
            sections.append(
                "== Budget fallbacks ==\n"
                + "\n".join(step.describe() for step in self.fallback_chain)
            )
        if self.tree is not None and self.tree.roots:
            sections.append("== Query tree ==\n" + self.tree.render())
        if self.program is not None:
            sections.append("== Rewritten program P' ==\n" + repr(self.program))
        else:
            sections.append(
                "== Rewritten program P' ==\n(empty: the query is unsatisfiable "
                "with respect to the constraints)"
            )
        sections.append("== Summary ==\n" + self.summary())
        return "\n\n".join(sections)


def _split_constraints(
    constraints: Sequence[IntegrityConstraint],
) -> tuple[list[IntegrityConstraint], list[IntegrityConstraint]]:
    tree_side: list[IntegrityConstraint] = []
    residue_side: list[IntegrityConstraint] = []
    for ic in constraints:
        (tree_side if is_fully_local(ic) else residue_side).append(ic)
    return tree_side, residue_side


def _class_nodes(tree: QueryTree) -> dict[tuple, GoalNode]:
    """Surviving expanded goal-node classes, keyed by class identity."""
    classes: dict[tuple, GoalNode] = {}
    for goal in tree.all_goal_nodes():
        node = goal.resolved()
        if node.is_edb or not (node.productive and node.reachable):
            continue
        classes.setdefault(node.class_key(), node)
    return classes


def _assign_names(
    classes: dict[tuple, GoalNode], tree: QueryTree, query: str
) -> dict[tuple, str]:
    """Stable names ``p_1, p_2, ...`` per predicate, avoiding collisions."""
    taken = set(tree.adornment_result.program.idb_predicates)
    taken |= set(tree.adornment_result.program.edb_predicates)
    by_predicate: dict[str, list[tuple]] = {}
    for key in classes:
        by_predicate.setdefault(key[0], []).append(key)
    names: dict[tuple, str] = {}
    for predicate in sorted(by_predicate):
        keys = by_predicate[predicate]
        keys.sort(key=lambda k: (
            tree.adornment_result.adornment_ids.get((predicate, k[1]), 0),
            repr(k[2]),
        ))
        for index, key in enumerate(keys, start=1):
            candidate = f"{predicate}_{index}"
            while candidate in taken:
                candidate += "x"
            taken.add(candidate)
            names[key] = candidate
    return names


def _rules_from_tree(
    tree: QueryTree, names: dict[tuple, str], query: str, arity: int
) -> list[Rule]:
    """One rule per surviving rule node, deduplicated canonically."""
    rules: list[Rule] = []
    seen: set[tuple] = set()
    classes = _class_nodes(tree)
    for key, node in classes.items():
        head_name = names[key]
        for rule_node in node.children:
            if not (rule_node.productive and rule_node.reachable):
                continue
            new_rule = _render_rule_node(rule_node, head_name, names)
            if new_rule is None:
                continue
            canon = _canonical_rule_key(new_rule)
            if canon not in seen:
                seen.add(canon)
                rules.append(new_rule)
    # Bridge the query predicate over its surviving root classes.
    bridge_args = tuple(Variable(f"V{i}") for i in range(arity))
    for root in tree.surviving_roots():
        key = root.resolved().class_key()
        name = names.get(key)
        if name is None:
            continue
        rules.append(
            Rule(Atom(query, bridge_args), (Literal(Atom(name, bridge_args)),))
        )
    return rules


def _render_rule_node(
    rule_node: RuleNode, head_name: str, names: dict[tuple, str]
) -> Rule | None:
    instance = rule_node.instance
    body: list = []
    positive_index = 0
    for item in instance.body:
        if isinstance(item, Literal) and item.positive:
            subgoal = rule_node.subgoals[positive_index].resolved()
            positive_index += 1
            if subgoal.is_edb:
                body.append(item)
            else:
                name = names.get(subgoal.class_key())
                if name is None:
                    return None  # subgoal class was pruned
                body.append(Literal(Atom(name, item.args)))
        else:
            body.append(item)
    return Rule(Atom(head_name, instance.head.args), tuple(body))


def _canonical_rule_key(rule: Rule) -> tuple:
    mapping: dict[Variable, int] = {}

    def term_key(term) -> object:
        if isinstance(term, Variable):
            return ("v", mapping.setdefault(term, len(mapping)))
        return ("c", repr(term))

    key: list = [rule.head.predicate, tuple(term_key(t) for t in rule.head.args)]
    for item in rule.body:
        if isinstance(item, Literal):
            key.append(
                (item.predicate, item.positive, tuple(term_key(t) for t in item.args))
            )
        else:
            key.append((item.op, term_key(item.left), term_key(item.right)))
    return tuple(key)


def optimize(
    program: Program,
    constraints: Iterable[IntegrityConstraint],
    *,
    inject_residues: bool = True,
    propagate_orders: bool = True,
    max_adornments: int = 4096,
    budget: "Budget | Governor | None" = None,
    cancellation: CancellationToken | None = None,
) -> OptimizationReport:
    """Rewrite ``program`` to completely incorporate ``constraints``.

    Returns an :class:`OptimizationReport`; ``report.program`` is the
    rewritten program (``None`` when the query predicate is
    unsatisfiable under the constraints, i.e. the rewriting is empty).
    ``report.complete`` is True when every constraint went through the
    query-tree machinery (all fully local); otherwise the non-local
    constraints were used only for sound residue injection.

    With a ``budget`` (a :class:`~repro.robustness.budget.Budget` or a
    shared running :class:`~repro.robustness.budget.Governor`) the run
    is governed and **degrades instead of failing**: when the adornment
    or query-tree phase trips a limit, the optimizer falls back to the
    residue-only rewrite (sound single-rule CGM injection via
    :func:`~repro.core.residues.constrain_program`), and if that too
    aborts, to the original program unchanged.  Each abandoned rung is
    recorded in ``report.fallback_chain``.  Cancellation is never
    degraded — a :class:`~repro.robustness.errors.Cancelled` always
    propagates.  Without a budget, limit violations (e.g. the
    ``max_adornments`` guard) raise as before.
    """
    constraints = tuple(constraints)
    governor = Governor.of(budget, cancellation)
    if governor is None:
        return _optimize_full(
            program,
            constraints,
            inject_residues=inject_residues,
            propagate_orders=propagate_orders,
            max_adornments=max_adornments,
            governor=None,
        )
    tracer = get_tracer()
    try:
        return _optimize_full(
            program,
            constraints,
            inject_residues=inject_residues,
            propagate_orders=propagate_orders,
            max_adornments=max_adornments,
            governor=governor,
        )
    except Cancelled:
        raise
    except EvaluationAborted as exc:
        first = FallbackStep(
            stage="query-tree rewrite",
            fell_back_to="residue-only rewrite",
            reason=str(exc),
        )
        if tracer.enabled:
            tracer.event(
                "budget.fallback",
                stage=first.stage,
                fell_back_to=first.fell_back_to,
                reason=first.reason,
            )
    tree_side, residue_side = _split_constraints(constraints)
    try:
        return _optimize_residue_only(
            program,
            constraints,
            tree_side,
            residue_side,
            inject_residues=inject_residues,
            fallback_chain=(first,),
        )
    except Cancelled:
        raise
    except ReproError as exc:
        second = FallbackStep(
            stage="residue-only rewrite",
            fell_back_to="original program",
            reason=str(exc),
        )
        if tracer.enabled:
            tracer.event(
                "budget.fallback",
                stage=second.stage,
                fell_back_to=second.fell_back_to,
                reason=second.reason,
            )
        return OptimizationReport(
            original=program,
            constraints=constraints,
            tree_constraints=tuple(tree_side),
            residue_only_constraints=tuple(residue_side),
            preprocessed=program,
            adornment_result=None,
            tree=None,
            program=program,
            satisfiable=True,
            complete=False,
            fallback_chain=(first, second),
        )


def _optimize_residue_only(
    program: Program,
    constraints: tuple[IntegrityConstraint, ...],
    tree_side: Sequence[IntegrityConstraint],
    residue_side: Sequence[IntegrityConstraint],
    *,
    inject_residues: bool,
    fallback_chain: tuple[FallbackStep, ...],
) -> OptimizationReport:
    """The middle rung of the ladder: sound per-rule residue injection.

    No adornment fixpoint, no query tree — just
    :func:`~repro.core.residues.constrain_program`, which is linear in
    the program and therefore safe to run even after a budget trip.
    """
    rewritten: Program | None = (
        constrain_program(program, constraints) if inject_residues else program
    )
    satisfiable = True
    if rewritten is not None and not rewritten.rules_for(program.query):
        rewritten = None
        satisfiable = False
    return OptimizationReport(
        original=program,
        constraints=constraints,
        tree_constraints=tuple(tree_side),
        residue_only_constraints=tuple(residue_side),
        preprocessed=program,
        adornment_result=None,
        tree=None,
        program=rewritten,
        satisfiable=satisfiable,
        complete=False,
        fallback_chain=fallback_chain,
    )


def _optimize_full(
    program: Program,
    constraints: tuple[IntegrityConstraint, ...],
    *,
    inject_residues: bool,
    propagate_orders: bool,
    max_adornments: int,
    governor: Governor | None,
) -> OptimizationReport:
    """The top rung: the complete query-tree rewrite of Theorem 4.1."""
    if program.query is None:
        raise ValueError("optimize() needs a program with a query predicate")
    check_no_idb(constraints, program)
    tracer = get_tracer()
    trace_on = tracer.enabled
    with tracer.span(
        "optimize",
        query=program.query,
        rules=len(program.rules),
        constraints=len(constraints),
    ) as opt_span:
        tree_side, residue_side = _split_constraints(constraints)
        if trace_on:
            opt_span.set(
                tree_constraints=len(tree_side),
                residue_only_constraints=len(residue_side),
            )

        if governor is not None:
            governor.check("optimize")
        with tracer.span("optimize.local_atoms") as span:
            plan: LocalAtomPlan = prepare_local_atoms(program, tree_side)
            working = plan.program
            if trace_on:
                span.set(rules_after_splits=len(working.rules))
        if propagate_orders:
            with tracer.span("optimize.order_propagation"):
                working = propagate_order_constraints(working).program
        if governor is not None:
            governor.check("optimize")
        working = working.relevant_rules()
        if not working.rules_for(program.query):
            # The preprocessing already proved the query underivable.
            if trace_on:
                tracer.event("optimize.preprocessing_empty", query=program.query)
            empty_adornments = compute_adornments(working, tree_side)
            empty_tree = QueryTree(
                roots=[], adornment_result=empty_adornments, expanded={}
            )
            return OptimizationReport(
                original=program,
                constraints=constraints,
                tree_constraints=tuple(tree_side),
                residue_only_constraints=tuple(residue_side),
                preprocessed=working,
                adornment_result=empty_adornments,
                tree=empty_tree,
                program=None,
                satisfiable=False,
                complete=not residue_side,
            )

        with tracer.span("optimize.adornments") as span:
            adornment_result = compute_adornments(
                working,
                tree_side,
                local_index=plan.index,
                max_adornments=max_adornments,
                budget=governor,
            )
            if trace_on:
                span.set(
                    adornments=sum(len(v) for v in adornment_result.adornments.values()),
                    adorned_rules=len(adornment_result.adorned_rules),
                    inconsistencies=len(adornment_result.inconsistencies),
                )
        with tracer.span("optimize.query_tree") as span:
            tree = build_query_tree(adornment_result, budget=governor)
            if trace_on:
                span.set(
                    roots=len(tree.roots),
                    surviving_roots=len(tree.surviving_roots()),
                    expanded_classes=len(tree.expanded),
                )

        query = program.query
        arity = program.arity_of(query)
        with tracer.span("optimize.extract") as span:
            classes = _class_nodes(tree)
            names = _assign_names(classes, tree, query)
            rules = _rules_from_tree(tree, names, query, arity)
            satisfiable = tree.is_query_satisfiable()
            if trace_on:
                span.set(surviving_classes=len(classes), extracted_rules=len(rules))

        rewritten: Program | None
        if not satisfiable or not rules:
            rewritten = None
        else:
            rewritten = Program(rules, query, validate=False)
            if propagate_orders:
                # Rerun the order propagation now that the tree has
                # specialized the predicates: projections that were washed
                # out by the pre-split disjunction (e.g. path starting below
                # vs. at-or-above a threshold) become precise and prune the
                # query-unreachable specializations, yielding the paper's
                # r1'/r2' shape.  Iterate to a fixpoint: pruning sharpens
                # the projections, which may prune further.
                with tracer.span("optimize.repropagation") as span:
                    rounds = 0
                    previous: tuple[Rule, ...] | None = None
                    while rewritten is not None and previous != rewritten.rules:
                        rounds += 1
                        previous = rewritten.rules
                        propagated = propagate_order_constraints(rewritten).program
                        if not propagated.rules_for(query):
                            rewritten = None
                            satisfiable = False
                            break
                        rewritten = Program(
                            propagated.rules, query, validate=False
                        ).relevant_rules()
                    if trace_on:
                        span.set(
                            rounds=rounds,
                            rules=0 if rewritten is None else len(rewritten.rules),
                        )
            if rewritten is not None and inject_residues:
                with tracer.span("optimize.residues") as span:
                    body_atoms_before = sum(len(r.body) for r in rewritten.rules)
                    rewritten = constrain_program(rewritten, constraints)
                    if trace_on:
                        span.set(
                            injected=sum(len(r.body) for r in rewritten.rules)
                            - body_atoms_before
                        )
                    if not rewritten.rules_for(query):
                        rewritten = None
                        satisfiable = False

        if trace_on:
            opt_span.set(
                satisfiable=satisfiable,
                rewritten_rules=0 if rewritten is None else len(rewritten.rules),
            )
    return OptimizationReport(
        original=program,
        constraints=constraints,
        tree_constraints=tuple(tree_side),
        residue_only_constraints=tuple(residue_side),
        preprocessed=working,
        adornment_result=adornment_result,
        tree=tree,
        program=rewritten,
        satisfiable=satisfiable,
        complete=not residue_side,
        predicate_names=names,
    )
