"""Satisfiability and query reachability w.r.t. integrity constraints.

Satisfiability of the query predicate (Theorem 5.1) is decided by
running the full optimization pipeline: the query tree encodes exactly
the consistent derivations, so the query predicate is satisfiable iff
the (pruned) forest retains a productive root.

Query reachability of an atom ``p(alpha1, ..., alphan)`` is decided via
the LOGSPACE reduction to satisfiability from [LMSS93] (paper,
Section 2): build the *marked* program whose derivations of a fresh
query predicate contain a marked path from the original query down to a
``p``-node matching the atom, then test satisfiability.  The converse
reduction (satisfiability of ``p`` equals reachability of a most
general ``p``-atom in the program with query ``p``) is provided for
cross-validation.

Both are exact for ``{theta,not}``-programs with fully-local ic's; for
ic's with non-local order or negated atoms the problem is undecidable
(Theorems 5.3-5.5) and :class:`NonLocalConstraintError` is raised —
:func:`bounded_satisfiability` offers a sound semi-decision procedure
(derivation enumeration with consistency checks) for those fragments.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..constraints.integrity import IntegrityConstraint
from ..datalog.atoms import Atom, Literal
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Substitution, Term, Variable, fresh_variables
from ..datalog.unify import unify_atoms
from .emptiness import rule_satisfiable_wrt
from .rewrite import optimize

__all__ = [
    "is_satisfiable",
    "is_query_reachable",
    "reachability_program",
    "satisfiability_as_reachability",
    "bounded_satisfiability",
]

_MARK_SUFFIX = "__marked"


def is_satisfiable(
    program: Program,
    constraints: Sequence[IntegrityConstraint],
    *,
    max_adornments: int = 4096,
) -> bool:
    """Whether the query predicate has a nonempty answer on some consistent DB."""
    report = optimize(
        program,
        constraints,
        inject_residues=False,
        max_adornments=max_adornments,
    )
    return report.satisfiable


def reachability_program(program: Program, atom: Atom) -> Program:
    """The marked program of the reachability-to-satisfiability reduction.

    Its query predicate is satisfiable (w.r.t. any ic set) iff ``atom``
    is query reachable in ``program`` — some consistent database admits
    a derivation of the original query containing an instantiation of
    ``atom``.
    """
    if program.query is None:
        raise ValueError("reachability needs a program with a query predicate")
    idb = program.idb_predicates
    marked: list[Rule] = list(program.rules)

    def marked_name(predicate: str) -> str:
        return predicate + _MARK_SUFFIX

    # Derivation trees have goal nodes for IDB *and* EDB subgoals, so the
    # marked path may end at either kind.  Marking an IDB subgoal keeps
    # propagating; marking an EDB subgoal bottoms out at the base rule.
    markable = idb | ({atom.predicate} if atom.predicate not in idb else set())
    for rule in program.rules:
        positions = [
            i
            for i, item in enumerate(rule.body)
            if isinstance(item, Literal) and item.positive and item.predicate in markable
        ]
        for position in positions:
            literal = rule.body[position]
            assert isinstance(literal, Literal)
            if literal.predicate in idb:
                replacement = Literal(Atom(marked_name(literal.predicate), literal.args))
            elif literal.predicate == atom.predicate:
                # EDB target: the fact must exist AND match the atom.
                replacement = Literal(Atom(marked_name(literal.predicate), literal.args))
            else:
                continue
            body = list(rule.body)
            body[position] = replacement
            if not literal.predicate in idb:
                # Keep the original EDB literal too: the marked predicate
                # only certifies the pattern match.
                body.append(literal)
            marked.append(
                Rule(Atom(marked_name(rule.head.predicate), rule.head.args), tuple(body))
            )
    # The marked base: a node matching the atom (IDB: with a full
    # subtree below it; EDB: the fact itself).
    base_args = tuple(atom.args)
    marked.append(
        Rule(
            Atom(marked_name(atom.predicate), base_args),
            (Literal(Atom(atom.predicate, base_args)),),
        )
    )
    return Program(marked, marked_name(program.query), validate=False)


def is_query_reachable(
    program: Program,
    constraints: Sequence[IntegrityConstraint],
    atom: Atom,
    *,
    max_adornments: int = 4096,
) -> bool:
    """Exact query reachability of ``atom`` (Section 2 definition)."""
    reduced = reachability_program(program, atom)
    if not reduced.rules_for(reduced.query):
        # The marked query has no rules: the predicate never occurs in a
        # derivation of the original query at all.
        return False
    return is_satisfiable(reduced, constraints, max_adornments=max_adornments)


def satisfiability_as_reachability(
    program: Program, constraints: Sequence[IntegrityConstraint], predicate: str
) -> bool:
    """The converse reduction: ``p`` satisfiable iff a most general
    ``p``-atom is query reachable in the program re-rooted at ``p``."""
    arity = program.arity_of(predicate)
    rerooted = Program(program.rules, predicate)
    atom = Atom(predicate, tuple(Variable(f"W{i}") for i in range(arity)))
    return is_query_reachable(rerooted, constraints, atom)


# ----------------------------------------------------------------------
# Bounded semi-decision for the undecidable fragments
# ----------------------------------------------------------------------
def bounded_satisfiability(
    program: Program,
    constraints: Sequence[IntegrityConstraint],
    *,
    max_depth: int = 6,
    max_repair_facts: int = 64,
) -> bool | None:
    """Search for a witness derivation of bounded depth.

    Enumerates symbolic derivation trees of the query predicate up to
    ``max_depth`` rule applications along any branch, flattens each into
    a single conjunctive body, and checks consistency with the ic's via
    the exact finite-model search of :mod:`repro.core.emptiness` (which
    handles non-local order and negated atoms — on a *fixed finite*
    derivation the question is decidable).

    Returns ``True`` with a witness found, ``None`` when the budget is
    exhausted without a witness (satisfiability remains unknown — the
    fragment is undecidable, Theorems 5.3-5.5).
    """
    if program.query is None:
        raise ValueError("bounded_satisfiability needs a query predicate")
    idb = program.idb_predicates
    query_arity = program.arity_of(program.query)
    goal = Atom(program.query, tuple(Variable(f"V{i}") for i in range(query_arity)))

    def expansions(atom: Atom, depth: int, counter: itertools.count):
        """Yield flattened bodies (lists of body items) deriving ``atom``."""
        if atom.predicate not in idb:
            yield [Literal(atom)]
            return
        if depth <= 0:
            return
        for rule in program.rules_for(atom.predicate):
            # Rename *every* rule variable so sibling expansions never share
            # variables accidentally.
            stamp = next(counter)
            renaming = Substitution(
                {v: Variable(f"D{stamp}_{v.name}") for v in rule.variables()}
            )
            fresh = rule.substitute(renaming)
            unifier = unify_atoms(fresh.head, atom)
            if unifier is None:
                continue
            instance = fresh.substitute(unifier)
            sub_lists: list[list] = [[]]
            feasible = True
            for item in instance.body:
                if isinstance(item, Literal) and item.positive and item.predicate in idb:
                    expanded = list(expansions(item.atom, depth - 1, counter))
                    if not expanded:
                        feasible = False
                        break
                    sub_lists = [
                        existing + extra
                        for existing in sub_lists
                        for extra in expanded
                    ]
                else:
                    sub_lists = [existing + [item] for existing in sub_lists]
            if not feasible:
                continue
            yield from sub_lists

    for depth in range(1, max_depth + 1):
        for body in expansions(goal, depth, itertools.count()):
            witness = Rule(Atom("__witness__", ()), tuple(body))
            if rule_satisfiable_wrt(
                witness, constraints, max_repair_facts=max_repair_facts
            ):
                return True
    return None
