"""The top-down query-tree phase of the algorithm (Section 4.1).

The query tree (a forest, one tree per adornment of the query
predicate) encodes precisely the symbolic derivations of the query that
are consistent with the integrity constraints:

* **goal nodes** carry an adorned predicate, an atom pattern (variables,
  possibly equated by unification with rule heads — footnote 1 of the
  paper) and a *label*: triplets describing partial mappings of ic's
  into complete symbolic derivations through this node;
* **rule nodes** are adorned rules of ``P1`` unified with their parent
  goal node; a rule instance whose order atoms became unsatisfiable
  under the unification is discarded;
* a goal node is expanded only if no previously expanded node is
  *equivalent* (same predicate, adornment, canonical atom pattern and
  label) — the finiteness argument of the paper;
* after construction, nodes not reachable from the EDB leaves and the
  root are removed (productivity + reachability pruning).

The rewritten program ``P'`` consists of one rule per surviving rule
node, over predicates named by (predicate, adornment, atom pattern).
Its guarantees are Theorem 4.1: equivalence to ``P`` on all databases
satisfying the ic's, and query reachability of every goal node of every
symbolic derivation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..constraints.dense_order import OrderConstraintSet
from ..constraints.integrity import IntegrityConstraint
from ..observability.trace import get_tracer
from ..robustness.budget import Budget, Governor
from ..datalog.atoms import Atom, Literal, OrderAtom
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Substitution, Term, Variable, fresh_variables
from ..datalog.unify import unify_atoms
from .adornments import AdornedRule, AdornmentResult, Triplet

__all__ = ["GoalNode", "RuleNode", "QueryTree", "build_query_tree"]


def _canonical_pattern(atom: Atom) -> tuple:
    """A variable-renaming-invariant key for an atom pattern."""
    mapping: dict[Variable, int] = {}
    key: list[object] = [atom.predicate]
    for arg in atom.args:
        if isinstance(arg, Constant):
            key.append(("c", arg.value))
        else:
            index = mapping.setdefault(arg, len(mapping))
            key.append(("v", index))
    return tuple(key)


@dataclass
class GoalNode:
    """A goal node of the query tree."""

    predicate: str
    atom: Atom
    adornment: frozenset[Triplet] | None  # None for EDB goal nodes
    label: frozenset[Triplet]
    is_edb: bool
    negative: bool = False
    children: list["RuleNode"] = field(default_factory=list)
    reference: "GoalNode | None" = None
    productive: bool = False
    reachable: bool = False

    def key(self) -> tuple:
        return (
            self.predicate,
            self.adornment,
            _canonical_pattern(self.atom),
            self.label,
        )

    def class_key(self) -> tuple:
        """Identity of the P' predicate this node maps to (label-free)."""
        return (self.predicate, self.adornment, _canonical_pattern(self.atom))

    def resolved(self) -> "GoalNode":
        node = self
        while node.reference is not None:
            node = node.reference
        return node

    def render(self, constraints: Sequence[IntegrityConstraint], indent: str = "") -> str:
        tag = "edb " if self.is_edb else ""
        polarity = "not " if self.negative else ""
        residues = sorted(
            t.render(constraints) for t in self.label if not t.is_trivial()
        )
        label_text = f"  label={residues}" if residues else ""
        lines = [f"{indent}{tag}{polarity}{self.atom!r}{label_text}"]
        if self.reference is not None:
            lines[0] += "  (= expanded node above)"
        for child in self.children:
            lines.append(child.render(constraints, indent + "  "))
        return "\n".join(lines)


@dataclass
class RuleNode:
    """A rule node: an adorned rule unified with its parent goal node."""

    adorned: AdornedRule
    instance: Rule
    label: frozenset[Triplet]
    subgoals: list[GoalNode] = field(default_factory=list)
    productive: bool = False
    reachable: bool = False

    def render(self, constraints: Sequence[IntegrityConstraint], indent: str = "") -> str:
        lines = [f"{indent}rule {self.instance!r}"]
        for subgoal in self.subgoals:
            lines.append(subgoal.render(constraints, indent + "  "))
        return "\n".join(lines)


@dataclass
class QueryTree:
    """The full forest plus the derived rewriting."""

    roots: list[GoalNode]
    adornment_result: AdornmentResult
    expanded: dict[tuple, GoalNode]

    @property
    def constraints(self) -> tuple[IntegrityConstraint, ...]:
        return self.adornment_result.constraints

    def surviving_roots(self) -> list[GoalNode]:
        return [root for root in self.roots if root.productive and root.reachable]

    def is_query_satisfiable(self) -> bool:
        """Whether some consistent derivation of the query exists."""
        return bool(self.surviving_roots())

    def all_goal_nodes(self) -> Iterable[GoalNode]:
        seen: set[int] = set()
        stack: list[GoalNode] = list(self.roots)
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            for rule_node in node.children:
                stack.extend(rule_node.subgoals)

    def all_rule_nodes(self) -> Iterable[RuleNode]:
        for goal in self.all_goal_nodes():
            yield from goal.children

    def render(self) -> str:
        return "\n\n".join(root.render(self.constraints) for root in self.roots)


# ----------------------------------------------------------------------
# Label propagation
# ----------------------------------------------------------------------
def _vars_of_unmapped(
    ic: IntegrityConstraint, unmapped: frozenset[int]
) -> set[str]:
    names: set[str] = set()
    for index in unmapped:
        names |= {v.name for v in ic.positive_atoms[index].variables()}
    return names


def _restrict_sigma(
    sigma: Sequence[tuple[str, object]], names: set[str]
) -> dict[str, object]:
    return {name: image for name, image in sigma if name in names}


def _corresponding_adornment_triplets(
    label_triplet: Triplet,
    adornment: frozenset[Triplet],
    constraints: Sequence[IntegrityConstraint],
) -> list[Triplet]:
    """Adornment triplets a label triplet can correspond to.

    Per the paper's invariant, a label triplet ``(I, sigma', s')``
    corresponds to an adornment triplet ``(I, tau, s)`` with
    ``s' <= s`` and ``sigma'`` equal to the restriction of ``tau`` to
    the variables of ``s'``.
    """
    matches = []
    label_sigma = label_triplet.sigma_dict()
    ic = constraints[label_triplet.ic]
    label_var_names: set[str] = set()
    for index in label_triplet.unmapped:
        label_var_names |= {v.name for v in ic.positive_atoms[index].variables()}
    for candidate in adornment:
        if candidate.ic != label_triplet.ic:
            continue
        if not label_triplet.unmapped <= candidate.unmapped:
            continue
        restricted = {
            name: image
            for name, image in candidate.sigma
            if name in label_var_names
        }
        if restricted == label_sigma:
            matches.append(candidate)
    return matches


def _frontier_names(ic: IntegrityConstraint, unmapped: frozenset[int]) -> set[str]:
    """Names of variables shared between unmapped and mapped positive atoms."""
    unmapped_vars: set[str] = set()
    mapped_vars: set[str] = set()
    for index, atom in enumerate(ic.positive_atoms):
        names = {v.name for v in atom.variables()}
        if index in unmapped:
            unmapped_vars |= names
        else:
            mapped_vars |= names
    return unmapped_vars & mapped_vars


def _push_labels(
    goal: GoalNode,
    adorned: AdornedRule,
    constraints: Sequence[IntegrityConstraint],
) -> tuple[frozenset[Triplet], list[frozenset[Triplet]]]:
    """Compute the rule-node label and per-positive-subgoal labels.

    Pushed triplets must satisfy the paper's consistency requirement:
    every frontier variable (shared between an unmapped and a mapped
    atom of the ic) is in the sigma's domain.  Triplets losing a
    frontier binding on the way down carry no usable glue and are
    dropped.
    """
    positives = adorned.rule.positive_literals
    rule_label: set[Triplet] = set()
    subgoal_labels: list[set[Triplet]] = [set() for _ in positives]
    assert goal.adornment is not None
    for label_triplet in goal.label:
        ic = constraints[label_triplet.ic]
        names = _vars_of_unmapped(ic, label_triplet.unmapped)
        frontier = _frontier_names(ic, label_triplet.unmapped)
        for adn_triplet in _corresponding_adornment_triplets(
            label_triplet, goal.adornment, constraints
        ):
            for derivation_index in adorned.origins_of(adn_triplet):
                derivation = adorned.derivations[derivation_index]
                rule_sigma = {
                    name: term
                    for name, term in derivation.rule_sigma
                    if name in names
                }
                if frontier <= set(rule_sigma):
                    rule_label.add(
                        Triplet.make(
                            label_triplet.ic, label_triplet.unmapped, rule_sigma
                        )
                    )
                for i, contributor in enumerate(derivation.contributors):
                    restricted = _restrict_sigma(contributor.sigma, names)
                    if not frontier <= set(restricted):
                        continue
                    subgoal_labels[i].add(
                        Triplet.make(
                            label_triplet.ic, label_triplet.unmapped, restricted
                        )
                    )
    return frozenset(rule_label), [frozenset(s) for s in subgoal_labels]


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def build_query_tree(
    result: AdornmentResult, *, budget: "Budget | Governor | None" = None
) -> QueryTree:
    """Build the query forest for the program's query predicate.

    ``budget`` (a :class:`~repro.robustness.budget.Budget` or a shared
    running :class:`~repro.robustness.budget.Governor`) enforces the
    deadline, cancellation and ``max_expansions`` at every node
    expansion — the construction is worst-case exponential in the
    number of adorned equivalence classes.
    """
    governor = Governor.of(budget)
    program = result.program
    if program.query is None:
        raise ValueError("the program needs a query predicate")
    query = program.query
    arity = program.arity_of(query)
    constraints = result.constraints

    tracer = get_tracer()
    trace_on = tracer.enabled

    roots: list[GoalNode] = []
    expanded: dict[tuple, GoalNode] = {}
    queue: list[GoalNode] = []
    for adornment in result.adornments.get(query, []):
        root_atom = Atom(query, tuple(Variable(f"V{i}") for i in range(arity)))
        root = GoalNode(
            predicate=query,
            atom=root_atom,
            adornment=adornment,
            label=adornment,
            is_edb=False,
        )
        roots.append(root)
        queue.append(root)

    with tracer.span("querytree.build", query=query, roots=len(roots)) as build_span:
        shared = 0
        while queue:
            if governor is not None:
                governor.expand("querytree")
            goal = queue.pop(0)
            key = goal.key()
            existing = expanded.get(key)
            if existing is not None and existing is not goal:
                goal.reference = existing
                shared += 1
                if trace_on:
                    tracer.event(
                        "querytree.share",
                        predicate=goal.predicate,
                        adorned=_adorned_text(result, goal),
                    )
                continue
            expanded[key] = goal
            _expand_goal(goal, result, constraints, queue, tracer, trace_on)

        tree = QueryTree(roots=roots, adornment_result=result, expanded=expanded)
        _prune(tree)
        if trace_on:
            build_span.set(
                expanded_classes=len(expanded),
                shared=shared,
                surviving_roots=sum(
                    1 for root in roots if root.productive and root.reachable
                ),
                pruned_classes=sum(
                    1
                    for node in expanded.values()
                    if not (node.productive and node.reachable)
                ),
            )
    return tree


def _adorned_text(result: AdornmentResult, goal) -> str:
    """Compact adorned-predicate name of a goal for trace attributes."""
    if goal.adornment is None:
        return goal.predicate
    try:
        return result.adorned_name(goal.predicate, goal.adornment)
    except (KeyError, AttributeError):
        return goal.predicate


def _expand_goal(goal, result, constraints, queue, tracer, trace_on):
    """Expand one goal class: attach a RuleNode per matching adorned rule."""
    assert goal.adornment is not None
    for adorned in result.rules_for(goal.predicate, goal.adornment):
        rule = adorned.rule.rename_apart(goal.atom.variables(), prefix="T")
        unifier = unify_atoms(rule.head, goal.atom)
        if unifier is None:
            continue
        instance = rule.substitute(unifier)
        if not OrderConstraintSet(instance.order_atoms).is_satisfiable():
            continue
        # The adorned rule structures (derivations, sigma) are stated
        # in terms of the *original* rule variables; recover the
        # positional correspondence through the positive literals.
        renamed_adorned = _rename_adorned(adorned, rule)
        rule_label, subgoal_labels = _push_labels(
            goal, renamed_adorned, constraints
        )
        rule_node = RuleNode(adorned=renamed_adorned, instance=instance, label=rule_label)
        for i, literal in enumerate(instance.positive_literals):
            sub_adornment = renamed_adorned.subgoal_adornments[i]
            # A child's label refines its adornment: every mapping
            # into the subtree is a mapping into the whole derivation,
            # so the adornment triplets always belong to the label,
            # alongside the triplets pushed down from the parent.
            label = subgoal_labels[i]
            if sub_adornment is not None:
                label = label | sub_adornment
            child = GoalNode(
                predicate=literal.predicate,
                atom=literal.atom,
                adornment=sub_adornment,
                label=label,
                is_edb=sub_adornment is None,
            )
            rule_node.subgoals.append(child)
            if not child.is_edb:
                queue.append(child)
        for literal in instance.negative_literals:
            rule_node.subgoals.append(
                GoalNode(
                    predicate=literal.predicate,
                    atom=literal.atom,
                    adornment=None,
                    label=frozenset(),
                    is_edb=True,
                    negative=True,
                )
            )
        goal.children.append(rule_node)
    if trace_on:
        tracer.event(
            "querytree.expand",
            predicate=goal.predicate,
            adorned=_adorned_text(result, goal),
            rules=len(goal.children),
            label_size=len(goal.label),
        )


def _rename_adorned(adorned: AdornedRule, renamed_rule: Rule) -> AdornedRule:
    """Re-express an adorned rule over the renamed-apart rule variables."""
    if renamed_rule is adorned.rule:
        return adorned
    mapping: dict[Term, Term] = {}
    for old_lit, new_lit in zip(
        adorned.rule.positive_literals, renamed_rule.positive_literals
    ):
        for old_arg, new_arg in zip(old_lit.args, new_lit.args):
            mapping[old_arg] = new_arg
    for old_arg, new_arg in zip(adorned.rule.head.args, renamed_rule.head.args):
        mapping[old_arg] = new_arg

    def rename_term(term: Term) -> Term:
        return mapping.get(term, term)

    derivations = tuple(
        type(d)(
            d.ic,
            d.unmapped,
            tuple((name, rename_term(t)) for name, t in d.rule_sigma),
            d.contributors,
        )
        for d in adorned.derivations
    )
    return AdornedRule(
        rule=renamed_rule,
        rule_index=adorned.rule_index,
        head_adornment=adorned.head_adornment,
        subgoal_adornments=adorned.subgoal_adornments,
        derivations=derivations,
        head_triplet_origins=adorned.head_triplet_origins,
    )


# ----------------------------------------------------------------------
# Pruning: productivity and reachability
# ----------------------------------------------------------------------
def _prune(tree: QueryTree) -> None:
    goals = list(tree.all_goal_nodes())
    changed = True
    while changed:
        changed = False
        for goal in goals:
            if goal.productive:
                continue
            if goal.is_edb:
                goal.productive = True
            elif goal.reference is not None:
                goal.productive = goal.reference.productive
            else:
                for rule_node in goal.children:
                    if all(sub.resolved().productive or sub.is_edb for sub in rule_node.subgoals):
                        rule_node.productive = True
                if any(r.productive for r in goal.children):
                    goal.productive = True
            if goal.productive:
                changed = True
        # Rule-node productivity may lag goal updates; refresh once more.
        for goal in goals:
            for rule_node in goal.children:
                if not rule_node.productive and all(
                    sub.resolved().productive or sub.is_edb
                    for sub in rule_node.subgoals
                ):
                    rule_node.productive = True
                    changed = True

    # Reachability from the roots through productive rule nodes only.
    stack = [root for root in tree.roots if root.productive]
    while stack:
        goal = stack.pop()
        goal = goal.resolved()
        if goal.reachable:
            continue
        goal.reachable = True
        for rule_node in goal.children:
            if not rule_node.productive:
                continue
            rule_node.reachable = True
            for subgoal in rule_node.subgoals:
                target = subgoal.resolved()
                if target.is_edb:
                    subgoal.reachable = True
                    target.reachable = True
                    continue
                if not target.reachable:
                    stack.append(target)
                if subgoal is not target:
                    subgoal.reachable = True
