"""Program emptiness (Proposition 5.2, Theorem 5.2).

A program is *empty* w.r.t. a set of ic's when none of its IDB
predicates is satisfiable on any consistent database.  Proposition 5.2
reduces this to the initialization rules (those with no IDB subgoals):
if every initialization rule is unsatisfiable, the first bottom-up
iteration derives nothing and all IDB relations stay empty.

Single-rule satisfiability w.r.t. the ic's is decided by the case
analysis matching the four complexity classes of Theorem 5.2:

* plain ic's, ``{not}``-program — freeze the body injectively and look
  for a violating homomorphism (NP);
* ``{theta}``-ic's / ``{theta,not}``-program — enumerate the ordered
  partitions (linearizations) of the rule's terms consistent with its
  order atoms (Pi2p for the emptiness complement);
* ``{not}``-ic's — additionally search for a *repair*: a superset of the
  frozen body over the same domain whose extra facts block the negated
  subgoals of violated ic's (EXPSPACE-bounded enumeration);
* ``{theta,not}``-ic's — both case analyses combined.

The repair search is exact because a model can always be restricted to
the facts over the frozen constants (ic's are safe, so violations only
involve facts over the constants present).
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..constraints.integrity import IntegrityConstraint
from ..cq.configurations import Config, freeze_atoms, linearizations, partitions
from ..cq.homomorphism import extend_homomorphism
from ..datalog.atoms import Atom, OrderAtom
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Term, Variable
from .order_propagation import normalize_rule
from ..robustness.errors import ReproError

__all__ = [
    "rule_satisfiable_wrt",
    "is_empty_program",
    "unsatisfiable_initialization_rules",
    "EmptinessTooLargeError",
]


class EmptinessTooLargeError(ReproError, ValueError):
    """The repair-search universe exceeded the configured bound."""


def _rule_terms(rule: Rule) -> list[Term]:
    ordered: list[Term] = []
    seen: set[Term] = set()
    for atom in [lit.atom for lit in rule.relational_literals] + [rule.head]:
        for term in atom.args:
            if term not in seen:
                seen.add(term)
                ordered.append(term)
    for order_atom in rule.order_atoms:
        for term in (order_atom.left, order_atom.right):
            if term not in seen:
                seen.add(term)
                ordered.append(term)
    return ordered


def _constraint_constants(constraints: Sequence[IntegrityConstraint]) -> list[Constant]:
    constants: list[Constant] = []
    seen: set[Constant] = set()
    for ic in constraints:
        for constant in sorted(ic.constants(), key=repr):
            if constant not in seen:
                seen.add(constant)
                constants.append(constant)
    return constants


def _violation(
    ic: IntegrityConstraint,
    facts: frozenset[Atom],
    config: Config,
    class_of_constants: dict[Constant, int],
) -> list[Atom] | None:
    """If ``ic`` fires on ``facts``, return the absent negated instances.

    ``None`` means the ic is satisfied.  An empty list means the ic
    fires with no negated atom available to repair it.
    """
    fact_list = sorted(facts, key=repr)
    for constant in ic.constants():
        if constant not in class_of_constants:
            return None  # the ic mentions a constant outside the domain
    for hom in extend_homomorphism(list(ic.positive_atoms), fact_list):
        def image_class(term: Term) -> int:
            if isinstance(term, Constant):
                return class_of_constants[term]
            value = hom.apply(term)
            assert isinstance(value, Constant)
            return value.value  # type: ignore[return-value]

        order_ok = True
        for order_atom in ic.order_atoms:
            if not config.compare_classes(
                image_class(order_atom.left), image_class(order_atom.right), order_atom.op
            ):
                order_ok = False
                break
        if not order_ok:
            continue
        absent: list[Atom] = []
        fires = True
        for atom in ic.negative_atoms:
            ground = Atom(
                atom.predicate, tuple(Constant(image_class(t)) for t in atom.args)
            )
            if ground in facts:
                fires = False
                break
            absent.append(ground)
        if fires:
            return absent
    return None


def _repair_search(
    base: frozenset[Atom],
    forbidden: frozenset[Atom],
    constraints: Sequence[IntegrityConstraint],
    config: Config,
    class_of_constants: dict[Constant, int],
    memo: set[frozenset[Atom]],
    depth_budget: int,
) -> bool:
    """Search for a consistent superset of ``base`` avoiding ``forbidden``."""
    if base in memo:
        return False
    memo.add(base)
    if depth_budget < 0:
        raise EmptinessTooLargeError("repair search exceeded the fact budget")
    for ic in constraints:
        absent = _violation(ic, base, config, class_of_constants)
        if absent is None:
            continue
        # The ic fires: repair by adding one of the absent negated facts.
        for ground in absent:
            if ground in forbidden:
                continue
            if _repair_search(
                base | {ground},
                forbidden,
                constraints,
                config,
                class_of_constants,
                memo,
                depth_budget - 1,
            ):
                return True
        return False
    return True  # no ic fires: base is a model


def rule_satisfiable_wrt(
    rule: Rule,
    constraints: Sequence[IntegrityConstraint],
    *,
    max_repair_facts: int = 64,
) -> bool:
    """Whether some consistent database makes the rule body true.

    Exact for all four ``{theta, not}`` combinations of rule and ic
    classes (see the module docstring).  ``max_repair_facts`` bounds the
    repair-search depth; exceeding it raises
    :class:`EmptinessTooLargeError`.
    """
    rule = normalize_rule(rule)
    if rule is None:
        return False
    terms = _rule_terms(rule)
    for constant in _constraint_constants(constraints):
        if constant not in terms:
            terms.append(constant)
    need_order = bool(rule.order_atoms) or any(ic.order_atoms for ic in constraints)
    need_repairs = any(ic.negative_atoms for ic in constraints)

    positive_atoms = [lit.atom for lit in rule.positive_literals]
    negative_atoms = [lit.atom for lit in rule.negative_literals]

    if need_order:
        partition_stream = partitions(terms)
    else:
        # Injective freeze suffices without order atoms (see docstring).
        injective = {}
        next_id = 0
        for term in terms:
            injective[term] = next_id
            next_id += 1
        partition_stream = iter([injective])

    for class_of in partition_stream:
        class_of_constants = {
            t: c for t, c in class_of.items() if isinstance(t, Constant)
        }
        base = frozenset(freeze_atoms(positive_atoms, class_of))
        forbidden = frozenset(freeze_atoms(negative_atoms, class_of))
        if base & forbidden:
            continue
        if need_order:
            config_stream = (
                Config(class_of, pos) for pos in linearizations(class_of)
            )
        else:
            config_stream = iter([Config(class_of, None)])
        for config in config_stream:
            if not config.satisfies(rule.order_atoms):
                continue
            if need_repairs:
                memo: set[frozenset[Atom]] = set()
                try:
                    found = _repair_search(
                        base,
                        forbidden,
                        constraints,
                        config,
                        class_of_constants,
                        memo,
                        max_repair_facts,
                    )
                except EmptinessTooLargeError:
                    raise
                if found:
                    return True
            else:
                violated = any(
                    _violation(ic, base, config, class_of_constants) is not None
                    for ic in constraints
                )
                if not violated:
                    return True
    return False


def unsatisfiable_initialization_rules(
    program: Program, constraints: Sequence[IntegrityConstraint]
) -> list[Rule]:
    """The initialization rules that no consistent database can fire."""
    return [
        rule
        for rule in program.initialization_rules()
        if not rule_satisfiable_wrt(rule, constraints)
    ]


def is_empty_program(
    program: Program, constraints: Sequence[IntegrityConstraint]
) -> bool:
    """Proposition 5.2: the program is empty iff its initialization rules are.

    Works for ``{theta,not}``-programs against ``{theta,not}``-ic's,
    with the complexity profile of Theorem 5.2.
    """
    initialization = program.initialization_rules()
    if not initialization:
        return True
    return all(
        not rule_satisfiable_wrt(rule, constraints) for rule in initialization
    )
