"""Reproduction of Levy & Sagiv, "Semantic Query Optimization in Datalog
Programs" (PODS 1995).

The public API is re-exported here.  The headline entry point is
:func:`repro.optimize`, which rewrites a Datalog program so that it
*completely incorporates* a set of integrity constraints (Theorem 4.1 /
Theorem 4.2 of the paper); supporting decision procedures
(satisfiability, query reachability, emptiness, containment in a union
of conjunctive queries) live alongside it.
"""

__version__ = "1.0.0"

from .constraints import IntegrityConstraint
from .core import (
    OptimizationReport,
    is_empty_program,
    is_query_reachable,
    is_satisfiable,
    optimize,
    program_contained_in_ucq,
)
from .magic import (
    MagicProgram,
    PipelineReport,
    assert_equivalent,
    check_equivalence,
    magic_transform,
    run_pipeline,
)
from .persist import (
    Checkpoint,
    CheckpointCorrupt,
    CheckpointError,
    CheckpointStore,
    FlakyStore,
    RetryPolicy,
    Session,
    SessionResult,
)
from .robustness import (
    Budget,
    BudgetExceededError,
    Cancelled,
    CancellationToken,
    EvaluationAborted,
    FaultInjector,
    InjectedFault,
    ReproError,
)
from .datalog import (
    Atom,
    Constant,
    Database,
    Literal,
    OrderAtom,
    Program,
    Rule,
    Variable,
    evaluate,
    evaluate_query,
    parse_atom,
    parse_constraints,
    parse_facts,
    parse_program,
    parse_rule,
    parse_rules,
)

__all__ = [
    "__version__",
    "IntegrityConstraint",
    "OptimizationReport",
    "is_empty_program",
    "is_query_reachable",
    "is_satisfiable",
    "optimize",
    "program_contained_in_ucq",
    "MagicProgram",
    "PipelineReport",
    "assert_equivalent",
    "check_equivalence",
    "magic_transform",
    "run_pipeline",
    "Checkpoint",
    "CheckpointCorrupt",
    "CheckpointError",
    "CheckpointStore",
    "FlakyStore",
    "RetryPolicy",
    "Session",
    "SessionResult",
    "Budget",
    "BudgetExceededError",
    "Cancelled",
    "CancellationToken",
    "EvaluationAborted",
    "FaultInjector",
    "InjectedFault",
    "ReproError",
    "Atom",
    "Constant",
    "Database",
    "Literal",
    "OrderAtom",
    "Program",
    "Rule",
    "Variable",
    "evaluate",
    "evaluate_query",
    "parse_atom",
    "parse_constraints",
    "parse_facts",
    "parse_program",
    "parse_rule",
    "parse_rules",
]
