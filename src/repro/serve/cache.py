"""The LRU artifact cache behind per-request pipeline specialization.

One entry is one :class:`~repro.magic.pipeline.PipelineArtifact` — a
compiled, constant-independent pipeline template — keyed by
:func:`~repro.magic.pipeline.artifact_key` (program-shape digest,
stage order, SIPS, query predicate, adornment pattern).  The daemon
shares a single cache across tenants: the key's digest component keeps
tenants with different programs apart, while tenants registered with
the *same* program and constraints genuinely share compiled templates.

Thread-safe: the daemon consults the cache from executor threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..magic.pipeline import PipelineArtifact

__all__ = ["ArtifactCache"]


class ArtifactCache:
    """A bounded LRU mapping of artifact keys to compiled templates."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, PipelineArtifact]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> "PipelineArtifact | None":
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return artifact

    def put(self, key: tuple, artifact: "PipelineArtifact") -> None:
        with self._lock:
            self._entries[key] = artifact
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """JSON-ready counters for ``/stats``."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
