"""The asyncio HTTP/1.1 shell around :class:`~repro.serve.app.ServeApp`.

Stdlib only: a hand-rolled, deliberately small HTTP server — request
line, headers, ``Content-Length`` body, JSON in/JSON out, keep-alive
until either side asks to close.  Everything interesting happens in
:class:`ServeApp`; this module only moves bytes.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .app import ServeApp

__all__ = ["ServeDaemon", "run_server"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request bodies above this are rejected outright (64 MiB).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServeDaemon:
    """One listening server bound to a :class:`ServeApp`."""

    def __init__(self, app: "ServeApp", host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        """Bind and start accepting; resolves ``self.port`` when 0."""
        self._server = await asyncio.start_server(
            self._connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    async def _connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                try:
                    status, payload = await self.app.handle(method, path, body)
                except Exception as exc:  # noqa: BLE001 - last-resort boundary
                    status, payload = 500, {"error": f"internal error: {exc}"}
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise ConnectionError("request body too large")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter, status: int, payload: dict, keep_alive: bool
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


def run_server(app: "ServeApp", host: str = "127.0.0.1", port: int = 8484) -> int:
    """Boot a daemon and serve until interrupted (the CLI entry point)."""

    async def _main() -> None:
        daemon = ServeDaemon(app, host, port)
        await daemon.start()
        print(f"serving on {daemon.url}", flush=True)
        try:
            await daemon.serve_forever()
        finally:
            await daemon.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("shutting down")
    return 0
