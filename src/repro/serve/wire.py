"""The daemon's JSON wire format: request parsing and response shaping.

Parsing reuses the exact normalization helpers the CLI uses
(:func:`~repro.robustness.budget.parse_timeout_value`,
:func:`~repro.robustness.budget.parse_limit_value`, the parser's own
input errors), so a malformed ``timeout`` in a POST body produces the
byte-identical message ``repro run --timeout ...`` prints — HTTP 400
and exit code 2 are the same diagnostic on two transports.

Response shaping mirrors the CLI's abort contract: a tripped budget or
injected fault becomes HTTP 503 whose body carries the same
partial-result summary the CLI prints on exit code 1 (facts derived,
iterations, rows scanned, wall time, partial answer count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..datalog.atoms import Atom
from ..datalog.parser import parse_atom, parse_constraints, parse_facts, parse_program_and_facts
from ..magic.pipeline import PIPELINE_ORDERS
from ..magic.sips import STRATEGIES
from ..robustness.budget import parse_limit_value, parse_timeout_value
from ..robustness.errors import EvaluationAborted, UsageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..constraints.integrity import IntegrityConstraint
    from ..datalog.database import Row
    from ..datalog.program import Program

__all__ = [
    "QUERY_MODES",
    "RegisterRequest",
    "QueryRequest",
    "IngestRequest",
    "parse_register",
    "parse_query",
    "parse_ingest",
    "rows_payload",
    "aborted_payload",
]

#: How a query is answered: ``magic`` runs the specialized pipeline
#: over the EDB; ``materialized`` answers from the tenant's resident
#: fixpoint with zero evaluation.
QUERY_MODES = ("magic", "materialized")


def _require_object(payload: object) -> dict:
    if not isinstance(payload, dict):
        raise UsageError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _text_field(payload: dict, name: str, *, required: bool = False) -> str | None:
    value = payload.get(name)
    if value is None:
        if required:
            raise UsageError(f"missing required field {name!r}")
        return None
    if not isinstance(value, str):
        raise UsageError(f"field {name!r} must be a string")
    return value


def _choice_field(payload: dict, name: str, choices: Sequence[str], default: str) -> str:
    value = payload.get(name, default)
    if value not in choices:
        raise UsageError(
            f"invalid {name} {value!r} (valid: {', '.join(sorted(choices))})"
        )
    return value


@dataclass(frozen=True)
class RegisterRequest:
    """``PUT /programs/{name}``: program text plus engine options."""

    program: "Program"
    facts: tuple[Atom, ...]
    constraints: "tuple[IntegrityConstraint, ...]"
    engine: str
    plan_order: str
    strategy: str
    storage: str = "rows"
    #: Shard the tenant's materialization/resume runs across N forked
    #: worker processes (``None`` = the daemon's default; see
    #: docs/parallel.md).  Requires the slot engine and semi-naive.
    workers: "int | None" = None


@dataclass(frozen=True)
class QueryRequest:
    """``POST /programs/{name}/query``: a bound goal plus limits."""

    goal: Atom
    mode: str
    order: str
    sips: str
    timeout: float | None
    max_facts: int | None
    max_iterations: int | None


@dataclass(frozen=True)
class IngestRequest:
    """``POST /programs/{name}/ingest``: new ground EDB facts."""

    facts: tuple[Atom, ...] = field(default_factory=tuple)


def parse_register(payload: object) -> RegisterRequest:
    payload = _require_object(payload)
    source = _text_field(payload, "program", required=True)
    query = _text_field(payload, "query")
    try:
        program, inline_facts = parse_program_and_facts(source, query=query)
    except Exception as exc:
        raise UsageError(f"cannot parse program: {exc}") from exc
    facts = list(inline_facts)
    facts_text = _text_field(payload, "facts")
    if facts_text:
        try:
            facts.extend(parse_facts(facts_text))
        except Exception as exc:
            raise UsageError(f"cannot parse facts: {exc}") from exc
    constraints: "tuple[IntegrityConstraint, ...]" = ()
    constraints_text = _text_field(payload, "constraints")
    if constraints_text:
        try:
            constraints = tuple(parse_constraints(constraints_text))
        except Exception as exc:
            raise UsageError(f"cannot parse constraints: {exc}") from exc
    engine = _choice_field(payload, "engine", ("slots", "interpreted"), "slots")
    strategy = _choice_field(payload, "strategy", ("seminaive", "naive"), "seminaive")
    workers = payload.get("workers")
    if workers is not None:
        if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
            raise UsageError(
                f"field 'workers' must be a positive integer, got {workers!r}"
            )
        if engine != "slots":
            raise UsageError("workers requires the compiled slot engine (engine='slots')")
        if strategy != "seminaive":
            raise UsageError("workers requires strategy='seminaive'")
    return RegisterRequest(
        program=program,
        facts=tuple(facts),
        constraints=constraints,
        engine=engine,
        plan_order=_choice_field(payload, "plan_order", ("cost", "greedy"), "cost"),
        strategy=strategy,
        storage=_choice_field(payload, "storage", ("rows", "columnar"), "rows"),
        workers=workers,
    )


def parse_query(payload: object) -> QueryRequest:
    payload = _require_object(payload)
    goal_text = _text_field(payload, "goal", required=True)
    try:
        goal = parse_atom(goal_text)
    except Exception as exc:
        # The same message shape _load_goal gives --goal on the CLI.
        raise UsageError(f"cannot parse goal {goal_text!r}: {exc}") from exc
    order = _choice_field(payload, "order", PIPELINE_ORDERS, "semantic-first")
    return QueryRequest(
        goal=goal,
        mode=_choice_field(payload, "mode", QUERY_MODES, "magic"),
        order=order,
        sips=_choice_field(payload, "sips", tuple(STRATEGIES), "left-to-right"),
        timeout=parse_timeout_value(payload.get("timeout")),
        max_facts=parse_limit_value(payload.get("max_facts"), option="max-facts"),
        max_iterations=parse_limit_value(
            payload.get("max_iterations"), option="max-iterations"
        ),
    )


def parse_ingest(payload: object) -> IngestRequest:
    payload = _require_object(payload)
    facts_text = _text_field(payload, "facts", required=True)
    try:
        facts = tuple(parse_facts(facts_text))
    except Exception as exc:
        raise UsageError(f"cannot parse facts: {exc}") from exc
    if not facts:
        raise UsageError("field 'facts' holds no ground facts")
    return IngestRequest(facts=facts)


def rows_payload(rows: "Sequence[Row] | frozenset[Row]") -> list[list]:
    """Rows as JSON arrays, in the CLI's deterministic print order."""
    return [list(row) for row in sorted(rows, key=repr)]


def aborted_payload(exc: EvaluationAborted) -> dict:
    """The HTTP 503 body for an aborted request.

    Field-for-field the information the CLI prints to stderr before
    exiting 1: the abort message, the tripped phase and limit, the
    partial-work counters and the count of partial answers already
    derived for the query predicate.
    """
    body: dict = {
        "error": str(exc),
        "aborted": True,
        "phase": exc.phase,
        "limit": exc.limit,
    }
    stats = exc.stats
    partial = exc.partial
    if stats is None and partial is not None:
        stats = partial.stats
    if stats is not None:
        body["partial"] = {
            "facts_derived": stats.facts_derived,
            "iterations": stats.iterations,
            "rows_scanned": stats.rows_scanned,
            "wall_time_seconds": stats.wall_time_seconds,
        }
    if partial is not None and partial.program.query is not None:
        try:
            rows = partial.query_rows()
        except (KeyError, ValueError):
            rows = frozenset()
        body["partial_answers"] = len(rows)
    return body
