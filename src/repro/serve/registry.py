"""Tenant state: programs resident in the daemon, with durable backing.

A :class:`Tenant` owns one registered workload — program, constraints,
the live EDB and a *materialized* fixpoint kept current across ingests
— plus the durable :class:`~repro.persist.session.Session` that
anchors it to a per-tenant checkpoint directory when the daemon runs
with ``--persist-dir``.

Registration is where recovery happens: the tenant materializes via
:meth:`~repro.persist.session.Session.recover`, which restores the
newest complete checkpoint with **zero evaluation** and replays the
suffix of the tenant's write-ahead ingest journal — the acknowledged
ingests a kill arrived before a checkpoint could cover.  A restarted
daemon therefore answers ``materialized`` queries for its old tenants
without losing a single acknowledged write (asserted byte-for-byte by
the ``serve-smoke`` and journal-kill CI jobs).  Both the journal and
the checkpoints live under the tenant's directory when the daemon
runs with ``--persist-dir``.

Concurrency follows the read/write split of the API: queries only read
tenant state and run concurrently; ``ingest`` (and re-registration)
mutate the database and the materialized fixpoint, so they take the
tenant's write side.  :class:`ReadWriteLock` is a minimal asyncio
writer-preferring RW lock — all acquisition happens on the event loop;
only the CPU-bound pipeline work inside an acquired section is shipped
to executor threads.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING, Iterable

from ..datalog.database import Database
from ..persist.session import Session, SessionResult
from ..persist.store import CheckpointStore
from ..robustness.errors import UsageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from .wire import RegisterRequest

__all__ = ["ReadWriteLock", "Tenant", "TenantRegistry", "UnknownTenant"]


class UnknownTenant(UsageError):
    """A request named a tenant that was never registered (HTTP 404)."""


class ReadWriteLock:
    """A writer-preferring asyncio reader-writer lock."""

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0

    async def acquire_read(self) -> None:
        async with self._cond:
            while self._writer or self._waiting_writers:
                await self._cond.wait()
            self._readers += 1

    async def release_read(self) -> None:
        async with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    async def acquire_write(self) -> None:
        async with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer or self._readers:
                    await self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = True

    async def release_write(self) -> None:
        async with self._cond:
            self._writer = False
            self._cond.notify_all()

    def read_locked(self) -> "_Guard":
        return _Guard(self.acquire_read, self.release_read)

    def write_locked(self) -> "_Guard":
        return _Guard(self.acquire_write, self.release_write)


class _Guard:
    def __init__(self, acquire, release):
        self._acquire = acquire
        self._release = release

    async def __aenter__(self) -> None:
        await self._acquire()

    async def __aexit__(self, *exc: object) -> bool:
        await self._release()
        return False


class Tenant:
    """One registered workload, resident and (optionally) durable."""

    def __init__(
        self,
        name: str,
        request: "RegisterRequest",
        *,
        persist_dir: "Path | None" = None,
    ):
        self.name = name
        self.program = request.program
        self.constraints = request.constraints
        # The tenant's EDB is built directly in the requested storage
        # backend, so queries (materialized and magic-specialized alike)
        # evaluate on it without per-request conversion.
        self.database = Database(request.facts, storage=request.storage)
        self.engine = request.engine
        self.plan_order = request.plan_order
        self.strategy = request.strategy
        self.storage = request.storage
        self.workers = request.workers
        self.lock = ReadWriteLock()
        self.registered_at = time.time()
        self.queries = 0
        self.ingests = 0
        # Fleet-recovery bookkeeping: cumulative counters across every
        # materialization/ingest, plus the degraded flag that drives
        # the app's admission control (a tenant whose *latest*
        # evaluation had to walk the degradation ladder sheds load
        # until a later run completes at full strength).
        self.worker_restarts = 0
        self.shards_redispatched = 0
        self.degradations = 0
        self.degraded = False
        self.inflight = 0
        self.shed = 0
        # Journal replay bookkeeping: records re-applied at the last
        # materialization (crash recovery), surfaced via /stats.
        self.replayed = 0
        store = None if persist_dir is None else CheckpointStore(persist_dir)
        # checkpoint_every=0: sessions write only complete fixpoints —
        # the daemon checkpoints *results*, not mid-fixpoint frontiers.
        self.session = Session(
            self.program,
            self.database,
            store=store,
            checkpoint_every=0,
            constraints=self.constraints,
            strategy=self.strategy,
            engine=self.engine,
            plan_order=self.plan_order,
            workers=self.workers,
        )
        self.materialized: SessionResult | None = None
        self.mode: str | None = None

    # -- lifecycle (CPU-bound; call from an executor) -------------------
    def materialize(self) -> SessionResult:
        """Bring the full fixpoint resident, crash-consistently.

        :meth:`~repro.persist.session.Session.recover` subsumes the
        old warm-start-else-run split: it restores the newest complete
        checkpoint when one covers the workload, replays any journal
        suffix of acknowledged ingests the kill arrived before a
        checkpoint could cover, and falls back to a fresh evaluation
        when the persist dir is empty — so a SIGKILLed daemon comes
        back serving every ingest it ever acknowledged.
        """
        outcome = self.session.recover()
        self.materialized = outcome
        self.mode = outcome.mode
        self.replayed += outcome.replayed
        self._absorb_recovery(outcome)
        return outcome

    def ingest(self, facts: Iterable[object]) -> SessionResult:
        outcome = self.session.ingest(facts)
        self.materialized = outcome
        self.ingests += 1
        self._absorb_recovery(outcome)
        return outcome

    def _absorb_recovery(self, outcome: SessionResult) -> None:
        """Fold one evaluation's recovery counters into the tenant."""
        stats = outcome.result.stats
        self.worker_restarts += getattr(stats, "worker_restarts", 0)
        self.shards_redispatched += getattr(stats, "shards_redispatched", 0)
        self.degradations += getattr(stats, "degradations", 0)
        self.degraded = getattr(stats, "degradations", 0) > 0

    # -- diagnostics ----------------------------------------------------
    def info(self) -> dict:
        """JSON-ready tenant summary for ``/stats`` and GET."""
        edb_facts = sum(
            len(self.database.relation(pred)) for pred in self.database.predicates()
        )
        info: dict = {
            "query": self.program.query,
            "rules": len(self.program.rules),
            "constraints": len(self.constraints),
            "engine": self.engine,
            "strategy": self.strategy,
            "storage": self.storage,
            "workers": self.workers,
            "mode": self.mode,
            "edb_facts": edb_facts,
            "queries": self.queries,
            "ingests": self.ingests,
            "degraded": self.degraded,
            "shed": self.shed,
            "recovery": {
                "worker_restarts": self.worker_restarts,
                "shards_redispatched": self.shards_redispatched,
                "degradations": self.degradations,
            },
        }
        if self.materialized is not None:
            result = self.materialized.result
            info["idb_facts"] = sum(len(rel) for rel in result.idb.values())
            info["latest_round"] = result.stats.iterations
        if self.session.store is not None:
            info["checkpoint"] = self.session.store.latest_summary(
                expect_workload=self.session.workload()
            )
        journal = self.session.journal_info()
        if journal is not None:
            # The fsynced-but-not-yet-checkpointed window: records a
            # kill right now would have to replay on the next start.
            info["journal"] = {
                "records": journal["records"],
                "last_seq": journal["last_seq"],
                "lag": journal["lag"],
                "replayed": self.replayed,
            }
        return info


class TenantRegistry:
    """The daemon's name → :class:`Tenant` map."""

    def __init__(self, persist_root: "Path | None" = None):
        self.persist_root = persist_root
        self._tenants: dict[str, Tenant] = {}
        self.lock = ReadWriteLock()

    def _tenant_dir(self, name: str) -> "Path | None":
        if self.persist_root is None:
            return None
        return self.persist_root / name

    def create(self, name: str, request: "RegisterRequest") -> Tenant:
        """Build (but do not yet install) a tenant for ``request``."""
        if not name or "/" in name:
            raise UsageError(f"invalid tenant name {name!r}")
        return Tenant(name, request, persist_dir=self._tenant_dir(name))

    def install(self, tenant: Tenant) -> None:
        self._tenants[tenant.name] = tenant

    def get(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenant(f"unknown program {name!r}: register it first")
        return tenant

    def names(self) -> list[str]:
        return sorted(self._tenants)

    def __len__(self) -> int:
        return len(self._tenants)
