""":class:`ServeApp` — the daemon's transport-free request handler.

Every route is one ``async`` call on :meth:`ServeApp.handle`, taking
``(method, path, body)`` and returning ``(status, payload)`` — the
HTTP layer in :mod:`repro.serve.http` is a thin shell around it, and
the tests drive it directly without sockets.

The request life cycle:

1. the handler emits a ``serve.request`` trace event (the chaos
   harness's injection site for the serving layer) and opens a
   ``serve.request`` span carrying the tenant and request kind — the
   profiler aggregates these into per-tenant lines;
2. input is parsed by :mod:`repro.serve.wire`; a
   :class:`~repro.robustness.errors.UsageError` becomes HTTP 400 with
   the same normalized message the CLI prints with exit code 2;
3. CPU-bound work (pipeline specialization, evaluation, ingest) runs
   in an executor thread under a **per-request**
   :class:`~repro.robustness.budget.Governor` minted by
   :class:`~repro.robustness.budget.RequestGovernorFactory` — the
   tighter of the server ceiling and the request's own limits;
4. an :class:`~repro.robustness.errors.EvaluationAborted` (budget
   trip, cancellation or injected fault — they share one type
   hierarchy on purpose) becomes HTTP 503 whose body carries the same
   partial-result diagnostics the CLI prints on exit code 1.

Query modes: ``magic`` (default) runs the cached-specialized pipeline
over the tenant's EDB — the artifact cache makes repeated query shapes
skip rewrite/adornment/transform (``serve.cache`` trace events record
hit/miss, and double as the cache's fault site); ``materialized``
answers from the tenant's resident fixpoint with zero evaluation.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import TYPE_CHECKING

from ..magic.pipeline import specialize_pipeline
from ..magic.transform import match_query_atom
from ..observability.trace import get_tracer
from ..robustness.budget import Budget, RequestGovernorFactory
from ..robustness.errors import EvaluationAborted, ReproError, UsageError
from ..persist.journal import JournalUnavailable
from .cache import ArtifactCache
from .registry import Tenant, TenantRegistry, UnknownTenant
from .wire import (
    QueryRequest,
    aborted_payload,
    parse_ingest,
    parse_query,
    parse_register,
    rows_payload,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

__all__ = ["ServeApp"]

#: Routes of the API, for 404 vs 405 disambiguation.
_TENANT_ACTIONS = ("query", "ingest")


class ServeApp:
    """The multi-tenant serving application."""

    def __init__(
        self,
        *,
        persist_root: "Path | None" = None,
        defaults: Budget | None = None,
        cache_capacity: int = 128,
        workers: "int | None" = None,
        degraded_inflight_limit: int = 4,
    ):
        self.registry = TenantRegistry(persist_root)
        self.cache = ArtifactCache(cache_capacity)
        # Daemon-wide default worker count for tenant materialization;
        # a register request's own ``workers`` wins, and the default is
        # only applied where sharding is legal (slot engine, semi-naive).
        self.workers = workers
        self.governors = RequestGovernorFactory(defaults)
        self.started_at = time.monotonic()
        self.requests = 0
        self.aborted = 0
        self.rejected = 0
        # Admission control for degraded tenants: a tenant whose last
        # evaluation walked the degradation ladder (its fleet fell back
        # toward sequential) answers slower, so concurrent queries
        # beyond this limit are shed with HTTP 429 instead of queueing.
        self.degraded_inflight_limit = degraded_inflight_limit
        self.shed = 0

    # ------------------------------------------------------------------
    async def handle(self, method: str, path: str, body: object = None) -> tuple[int, dict]:
        """Dispatch one request; returns ``(status, JSON-ready payload)``."""
        self.requests += 1
        tracer = get_tracer()
        parts = [p for p in path.split("/") if p]
        tenant_name = parts[1] if len(parts) >= 2 and parts[0] == "programs" else None
        kind = self._kind(method, parts)
        try:
            # The serving layer's chaos site: armed faults fire here and
            # travel the same 503 path a real budget trip takes.
            tracer.event(
                "serve.request", method=method, path=path, tenant=tenant_name
            )
        except (ReproError, EvaluationAborted) as exc:
            return self._failure(exc)
        try:
            with tracer.span(
                "serve.request", method=method, path=path,
                tenant=tenant_name, kind=kind,
            ) as span:
                try:
                    status, payload = await self._route(method, parts, body)
                except (ReproError, EvaluationAborted) as exc:
                    status, payload = self._failure(exc)
                span.set(status=status)
                return status, payload
        except (ReproError, EvaluationAborted) as exc:
            # A chaos fault on the span-entry site itself.
            return self._failure(exc)

    def _failure(self, exc: Exception) -> tuple[int, dict]:
        """Map a structured error to its HTTP status (counted)."""
        if isinstance(exc, UnknownTenant):
            self.rejected += 1
            return 404, {"error": str(exc)}
        if isinstance(exc, JournalUnavailable):
            # The write-ahead journal could not fsync within the retry
            # budget: the ingest was NOT acknowledged and nothing
            # mutated — retryable, so 503 rather than 400.  Degrading
            # to an unjournaled ingest here would silently reintroduce
            # the lost-acknowledged-write window the journal closes.
            self.aborted += 1
            return 503, {"error": str(exc), "retryable": True}
        if isinstance(exc, EvaluationAborted):
            self.aborted += 1
            return 503, aborted_payload(exc)
        self.rejected += 1
        return 400, {"error": str(exc)}

    @staticmethod
    def _kind(method: str, parts: list[str]) -> str:
        if parts and parts[0] == "programs":
            if len(parts) == 3:
                return parts[2]
            return "register" if method == "PUT" else "inspect"
        return parts[0] if parts else "root"

    async def _route(self, method: str, parts: list[str], body: object) -> tuple[int, dict]:
        if parts == ["healthz"]:
            self._require(method, "GET")
            return 200, await self._healthz()
        if parts == ["stats"]:
            self._require(method, "GET")
            return 200, await self._stats()
        if len(parts) == 2 and parts[0] == "programs":
            if method == "PUT":
                return await self._register(parts[1], self._json(body))
            self._require(method, "GET")
            return await self._inspect(parts[1])
        if len(parts) == 3 and parts[0] == "programs" and parts[2] in _TENANT_ACTIONS:
            self._require(method, "POST")
            if parts[2] == "query":
                return await self._query(parts[1], self._json(body))
            return await self._ingest(parts[1], self._json(body))
        raise UsageError(f"no such route: {method} /{'/'.join(parts)}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise UsageError(f"method {method} not allowed here (use {expected})")

    @staticmethod
    def _json(body: object) -> object:
        """Decode a raw request body (bytes/str) into JSON, if needed."""
        if body is None:
            return {}
        if isinstance(body, (bytes, bytearray)):
            try:
                body = body.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise UsageError(f"request body is not UTF-8: {exc}") from None
        if isinstance(body, str):
            if not body.strip():
                return {}
            try:
                return json.loads(body)
            except json.JSONDecodeError as exc:
                raise UsageError(f"request body is not valid JSON: {exc}") from None
        return body

    # ------------------------------------------------------------------
    async def _register(self, name: str, payload: object) -> tuple[int, dict]:
        request = parse_register(payload)
        if (
            request.workers is None
            and self.workers is not None
            and request.engine == "slots"
            and request.strategy == "seminaive"
        ):
            import dataclasses

            request = dataclasses.replace(request, workers=self.workers)
        tenant = self.registry.create(name, request)
        async with self.registry.lock.write_locked():
            outcome = await asyncio.get_running_loop().run_in_executor(
                None, tenant.materialize
            )
            self.registry.install(tenant)
        return 200, {
            "tenant": name,
            "mode": outcome.mode,
            "resumed_seq": outcome.resumed_seq,
            "idb_facts": sum(len(rel) for rel in outcome.result.idb.values()),
            "latest_round": outcome.result.stats.iterations,
            "fallbacks": [step.describe() for step in outcome.fallback_chain],
        }

    async def _inspect(self, name: str) -> tuple[int, dict]:
        async with self.registry.lock.read_locked():
            tenant = self.registry.get(name)
            async with tenant.lock.read_locked():
                return 200, {"tenant": name, **tenant.info()}

    async def _healthz(self) -> dict:
        """Readiness: liveness plus the fleet's degradation state.

        ``ok`` stays true as long as the daemon answers — a degraded
        tenant still serves correct (if slower) results — but the
        payload names the degraded tenants and totals the recovery
        counters so orchestrators can route around a limping instance.
        """
        degraded = []
        recovery = {"worker_restarts": 0, "shards_redispatched": 0, "degradations": 0}
        # Journal lag: acknowledged-but-not-yet-checkpointed ingest
        # records across the fleet — the work a kill right now would
        # replay on restart.  Durability is not at risk (the records
        # are fsynced), but a persistently growing lag means
        # checkpoints keep failing and restarts keep getting slower.
        journal = {"lag": 0, "replayed": 0}
        async with self.registry.lock.read_locked():
            for name in self.registry.names():
                tenant = self.registry.get(name)
                recovery["worker_restarts"] += tenant.worker_restarts
                recovery["shards_redispatched"] += tenant.shards_redispatched
                recovery["degradations"] += tenant.degradations
                info = tenant.session.journal_info()
                if info is not None:
                    journal["lag"] += info["lag"]
                journal["replayed"] += tenant.replayed
                if tenant.degraded:
                    degraded.append(name)
        return {
            "ok": True,
            "ready": True,
            "uptime_seconds": time.monotonic() - self.started_at,
            "tenants": len(self.registry),
            "degraded_tenants": degraded,
            "recovery": recovery,
            "journal": journal,
        }

    async def _stats(self) -> dict:
        recovery = {"worker_restarts": 0, "shards_redispatched": 0, "degradations": 0}
        journal = {"lag": 0, "replayed": 0}
        async with self.registry.lock.read_locked():
            tenants = {}
            for name in self.registry.names():
                tenant = self.registry.get(name)
                async with tenant.lock.read_locked():
                    tenants[name] = tenant.info()
                recovery["worker_restarts"] += tenant.worker_restarts
                recovery["shards_redispatched"] += tenant.shards_redispatched
                recovery["degradations"] += tenant.degradations
                per_tenant = tenants[name].get("journal")
                if per_tenant is not None:
                    journal["lag"] += per_tenant["lag"]
                journal["replayed"] += tenant.replayed
        return {
            "uptime_seconds": time.monotonic() - self.started_at,
            "requests": self.requests,
            "aborted": self.aborted,
            "rejected": self.rejected,
            "shed": self.shed,
            "governors_minted": self.governors.minted,
            "recovery": recovery,
            "journal": journal,
            "cache": self.cache.stats(),
            "tenants": tenants,
        }

    # ------------------------------------------------------------------
    async def _query(self, name: str, payload: object) -> tuple[int, dict]:
        request = parse_query(payload)
        async with self.registry.lock.read_locked():
            tenant = self.registry.get(name)
        # Admission control: a degraded tenant (its fleet fell down the
        # degradation ladder on the last evaluation) answers slower, so
        # concurrent load beyond the limit is shed with 429 and partial
        # diagnostics rather than queued behind a limping engine.
        if tenant.degraded and tenant.inflight >= self.degraded_inflight_limit:
            self.shed += 1
            tenant.shed += 1
            return 429, self._shed_payload(tenant)
        tenant.inflight += 1
        try:
            async with tenant.lock.read_locked():
                if request.goal.predicate not in tenant.program.idb_predicates:
                    raise UsageError(
                        f"query atom {request.goal} does not use an IDB predicate "
                        f"of program {name!r}"
                    )
                if request.mode == "materialized":
                    response = self._answer_materialized(tenant, request)
                else:
                    governor = self.governors.for_request(
                        timeout=request.timeout,
                        max_facts=request.max_facts,
                        max_iterations=request.max_iterations,
                    )
                    response = await asyncio.get_running_loop().run_in_executor(
                        None, self._answer_magic, tenant, request, governor
                    )
                tenant.queries += 1
        finally:
            tenant.inflight -= 1
        return 200, {"tenant": name, "goal": str(request.goal), **response}

    @staticmethod
    def _shed_payload(tenant: Tenant) -> dict:
        """The 429 body: why the load was shed, with what diagnostics."""
        payload: dict = {
            "error": (
                f"program {tenant.name!r} is degraded after fleet recovery "
                "exhaustion; concurrent query load is being shed"
            ),
            "degraded": True,
            "shed": True,
            "recovery": {
                "worker_restarts": tenant.worker_restarts,
                "shards_redispatched": tenant.shards_redispatched,
                "degradations": tenant.degradations,
            },
        }
        if tenant.materialized is not None:
            payload["fallbacks"] = [
                step.describe() for step in tenant.materialized.fallback_chain
            ]
            payload["latest_round"] = tenant.materialized.result.stats.iterations
        return payload

    def _answer_magic(self, tenant: Tenant, request: QueryRequest, governor) -> dict:
        report, cache_hit = specialize_pipeline(
            tenant.program,
            tenant.constraints,
            request.goal,
            order=request.order,
            sips_name=request.sips,
            cache=self.cache,
            budget=governor,
            cache_site="serve.cache",
        )
        if report.program is None:
            return {
                "mode": "magic",
                "order": request.order,
                "cache_hit": cache_hit,
                "satisfiable": False,
                "answers": [],
            }
        result = report.evaluation(
            tenant.database,
            engine=tenant.engine,
            plan_order=tenant.plan_order,
            budget=governor,
        )
        answers = frozenset(
            row for row in result.query_rows()
            if match_query_atom(row, request.goal)
        )
        return {
            "mode": "magic",
            "order": request.order,
            "cache_hit": cache_hit,
            "satisfiable": True,
            "answers": rows_payload(answers),
            "stats": {
                "facts_derived": result.stats.facts_derived,
                "iterations": result.stats.iterations,
                "rows_scanned": result.stats.rows_scanned,
                "probes": result.stats.probes,
            },
        }

    def _answer_materialized(self, tenant: Tenant, request: QueryRequest) -> dict:
        """Answer from the resident fixpoint — zero evaluation."""
        if tenant.materialized is None:
            raise UsageError(
                f"program {tenant.name!r} has no materialized fixpoint"
            )
        result = tenant.materialized.result
        rows = result.rows(request.goal.predicate)
        answers = frozenset(
            row for row in rows if match_query_atom(row, request.goal)
        )
        return {
            "mode": "materialized",
            "materialized_mode": tenant.mode,
            "answers": rows_payload(answers),
            "latest_round": result.stats.iterations,
        }

    async def _ingest(self, name: str, payload: object) -> tuple[int, dict]:
        request = parse_ingest(payload)
        async with self.registry.lock.read_locked():
            tenant = self.registry.get(name)
        async with tenant.lock.write_locked():
            try:
                outcome = await asyncio.get_running_loop().run_in_executor(
                    None, tenant.ingest, request.facts
                )
            except ValueError as exc:
                raise UsageError(str(exc)) from exc
        return 200, {
            "tenant": name,
            "mode": outcome.mode,
            "ingested": len(request.facts),
            "idb_facts": sum(len(rel) for rel in outcome.result.idb.values()),
            "latest_round": outcome.result.stats.iterations,
            "fallbacks": [step.describe() for step in outcome.fallback_chain],
        }
