"""The serving daemon: multi-tenant Datalog querying over HTTP.

``repro serve`` boots an asyncio HTTP daemon (stdlib only) that keeps
any number of registered programs ("tenants") resident and answers
bound query atoms against them with the full magic-sets pipeline,
specialized per request:

* :mod:`repro.serve.wire` — the JSON wire format: request parsing
  (shared, normalized diagnostics with the CLI) and response shaping;
* :mod:`repro.serve.cache` — the LRU artifact cache behind
  :func:`repro.magic.pipeline.specialize_pipeline`: repeated query
  *shapes* skip the semantic rewrite, adornment and magic transform;
* :mod:`repro.serve.registry` — tenant state (program, constraints,
  live database, materialized fixpoint) behind per-tenant
  reader-writer locks, with checkpoint-backed warm start;
* :mod:`repro.serve.app` — :class:`ServeApp`, the transport-free
  request handler (every route is an ``async`` method call, so tests
  drive it without sockets);
* :mod:`repro.serve.http` — the asyncio HTTP/1.1 layer;
* :mod:`repro.serve.client` — the blocking client used by
  ``repro client`` and the smoke scripts.

Every request runs under its own
:class:`~repro.robustness.budget.Governor` (the tighter of the server's
ceiling and the request's own limits); a tripped budget returns HTTP
503 carrying the same partial-result diagnostics the CLI prints on
exit code 1.
"""

from .app import ServeApp
from .cache import ArtifactCache
from .client import ServeClient, ServeClientError
from .http import ServeDaemon, run_server
from .registry import Tenant, TenantRegistry

__all__ = [
    "ServeApp",
    "ArtifactCache",
    "ServeClient",
    "ServeClientError",
    "ServeDaemon",
    "run_server",
    "Tenant",
    "TenantRegistry",
]
