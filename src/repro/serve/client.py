"""A small blocking client for the serving daemon (stdlib only).

Backs the ``repro client`` CLI command, the serving benchmark and the
``serve-smoke`` CI script.  One :class:`ServeClient` holds one
keep-alive connection; errors surface as :class:`ServeClientError`
carrying the HTTP status and the decoded JSON body, so callers can
distinguish bad input (400), unknown tenants (404), shed load (429)
and budget-tripped requests (503, with partial diagnostics) without
string matching.

Transport failures (a dropped keep-alive, a daemon mid-restart) are
retried under the shared :class:`~repro.persist.store.RetryPolicy` —
the same capped-exponential-backoff-with-seeded-jitter curve the
checkpoint store and the worker-fleet supervisor use — and the retry
counts are surfaced on the client (``retries_total``,
``last_retries``).
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection

from ..persist.store import RetryPolicy

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(Exception):
    """A non-2xx daemon response."""

    def __init__(self, status: int, payload: dict):
        super().__init__(payload.get("error", f"HTTP {status}"))
        self.status = status
        self.payload = payload


class ServeClient:
    """Blocking JSON client over one keep-alive HTTP connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8484,
        timeout: float = 60.0,
        *,
        retry: RetryPolicy | None = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        #: Transport retries across the client's lifetime / last request.
        self.retries_total = 0
        self.last_retries = 0
        self._conn: HTTPConnection | None = None

    @classmethod
    def from_url(cls, url: str, *, timeout: float = 60.0) -> "ServeClient":
        trimmed = url.removeprefix("http://").rstrip("/")
        host, _, port = trimmed.partition(":")
        return cls(host, int(port) if port else 8484, timeout)

    # ------------------------------------------------------------------
    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def _round_trip(self, method: str, path: str, body: "str | None"):
        conn = self._connection()
        conn.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"} if body else {},
        )
        response = conn.getresponse()
        return response, response.read()

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One round trip; raises :class:`ServeClientError` on >= 400.

        Transport failures (a dropped keep-alive, connection refused
        while the daemon restarts) retry on a fresh connection under
        the client's :class:`~repro.persist.store.RetryPolicy`: the
        backoff delays are capped-exponential with seeded jitter, and
        the attempt count is bounded — the final failure re-raises.
        """
        body = None if payload is None else json.dumps(payload)
        self.last_retries = 0
        delays = self.retry.delays()
        while True:
            try:
                response, raw = self._round_trip(method, path, body)
                break
            except (ConnectionError, OSError):
                self.close()
                delay = next(delays, None)
                if delay is None:
                    raise
                self.last_retries += 1
                self.retries_total += 1
                if delay > 0:
                    time.sleep(delay)
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
        if response.status >= 400:
            raise ServeClientError(response.status, decoded)
        if self.last_retries:
            # Only annotate when a retry actually happened, so clean
            # responses stay byte-identical to the daemon's payload.
            decoded["client_retries"] = self.last_retries
        return decoded

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def register(
        self,
        name: str,
        program: str,
        *,
        constraints: str | None = None,
        facts: str | None = None,
        query: str | None = None,
        engine: str | None = None,
        storage: str | None = None,
        workers: int | None = None,
    ) -> dict:
        payload: dict = {"program": program}
        if constraints is not None:
            payload["constraints"] = constraints
        if facts is not None:
            payload["facts"] = facts
        if query is not None:
            payload["query"] = query
        if engine is not None:
            payload["engine"] = engine
        if storage is not None:
            payload["storage"] = storage
        if workers is not None:
            payload["workers"] = workers
        return self.request("PUT", f"/programs/{name}", payload)

    def inspect(self, name: str) -> dict:
        return self.request("GET", f"/programs/{name}")

    def query(self, name: str, goal: str, **options: object) -> dict:
        payload: dict = {"goal": goal}
        payload.update({k: v for k, v in options.items() if v is not None})
        return self.request("POST", f"/programs/{name}/query", payload)

    def ingest(self, name: str, facts: str) -> dict:
        return self.request("POST", f"/programs/{name}/ingest", {"facts": facts})
