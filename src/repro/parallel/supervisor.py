"""Supervision policy for the sharded worker fleet.

The master supervises its workers with **deadline-based liveness
checks**: every barrier reply doubles as a heartbeat (dispatch and
merge both stamp per-worker liveness), and a worker that neither
replies nor dies within the straggler window is presumed stuck and
killed.  Recovery — respawn a warm replacement from the current master
state and re-dispatch the lost shard — runs under a bounded
:class:`~repro.persist.store.RetryPolicy`, reusing the checkpoint
store's capped-exponential-backoff-with-seeded-jitter semantics; when
the budget is exhausted the engine raises
:class:`~repro.parallel.engine.FleetExhausted` and the evaluation
ladder in :func:`~repro.datalog.evaluation.evaluate` degrades (half
the workers, then sequential columnar) instead of failing.

Shard re-dispatch is *safe* because shards are pure functions of
``(round, partition)``: the master's delta buffers hold the full
frontier, the replacement is warmed from the master's current IDB (a
superset of anything the dead worker knew), and re-running a task
produces byte-identical candidate rows — every counter in the
byte-identity invariant (digests, iterations, ``rule_firings``,
``rows_scanned``) is charged exactly once because a dead worker's
reply was, by definition, never merged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..persist.store import RetryPolicy

__all__ = ["SupervisionPolicy", "DEFAULT_SUPERVISION"]


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the master reacts to dead and stuck workers.

    ``retry`` bounds recovery for one evaluation run: each respawn
    consumes one backoff delay, so ``attempts=4`` allows three worker
    recoveries before :class:`~repro.parallel.engine.FleetExhausted`.

    ``straggler_grace`` is added to the governor's remaining deadline
    to form the per-barrier straggler window — a worker is given the
    same wall-clock slice it was dispatched with, plus this grace for
    shipping overhead, before the master presumes it stuck and kills
    it.  ``straggler_timeout`` is an absolute per-barrier cap that
    applies even without a governor (tests use it to detect a
    ``SIGSTOP``-ed worker deterministically); ``None`` disables it.
    Without either a deadline or ``straggler_timeout``, dead workers
    are still detected instantly (their pipe end closes) but a stuck,
    live worker blocks the barrier — stragglers need a clock.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    straggler_grace: float = 5.0
    straggler_timeout: float | None = None

    def straggler_limit(self, deadline: "float | None") -> "float | None":
        """The per-barrier wait cap given the dispatched deadline slice."""
        limit = None if deadline is None else deadline + self.straggler_grace
        if self.straggler_timeout is not None:
            limit = (
                self.straggler_timeout
                if limit is None
                else min(limit, self.straggler_timeout)
            )
        return limit


#: The engine default: the checkpoint store's retry curve, a generous
#: straggler grace, no absolute cap.
DEFAULT_SUPERVISION = SupervisionPolicy()
