"""The sharded semi-naive master: hash-partitioned multiprocess evaluation.

``evaluate_sharded`` mirrors the sequential seminaive driver of
:mod:`repro.datalog.evaluation` SCC by SCC, but farms every delta join
out to ``workers`` forked processes (:mod:`repro.parallel.worker`):

* **Sharding** — each semi-naive delta block is hash-partitioned by its
  full code row (``hash(codes) % workers``; int-tuple hashing is
  ``PYTHONHASHSEED``-independent, so the partition is deterministic).
  The compiled plans always scan the delta literal *first*, so
  partitioning delta rows partitions the join work exactly: per-rule
  ``rows_scanned`` sums across shards to the sequential count.
* **Barriers** — linear SCCs (no delta plan reads a same-SCC relation
  through a non-delta literal) synchronize once per round; nonlinear
  SCCs synchronize once per plan, with the facts accepted so far
  flushed to every mirror before the next plan fires — reproducing the
  sequential engine's live visibility and therefore its iteration
  counts and fixpoint digests byte for byte.
* **Lazy replication** — the master keeps an append-only accept log per
  IDB predicate and a ship cursor into it.  A barrier ships a
  predicate's unshipped suffix only if one of the plans it runs reads
  that predicate through a non-delta literal; predicates that are only
  delta-scanned and head-derived (the common transitive-closure shape)
  are never replicated at all, which is what makes the fleet's
  per-round traffic proportional to the *frontier*, not the fixpoint.
* **Authority** — workers pre-deduplicate candidate heads against
  their mirrors and against everything they have already shipped, but
  only the master accepts facts into the IDB; the accepted rows travel
  back to the workers through the accept log.
* **Governance** — one :class:`~repro.robustness.budget.Governor`
  rules the fleet: the master checks all limits at barriers with the
  cumulative stats, and every task carries the governor's *remaining*
  wall-clock slice as the worker-side budget.  Any worker trip aborts
  the fleet; the master folds the aborted workers' partial stats in
  via :meth:`EvaluationStats.merge` (order-independent by
  construction) and raises the usual
  :class:`~repro.robustness.errors.BudgetExceededError` carrying a
  merged partial fixpoint — a subset of the true one, because every
  shipped head row is a sound derivation.

The worker warm-start reuses the PR 5 checkpoint envelope (workload
digest + IDB seed + checksum) and ships the EDB with its interner, so
code columns mean the same thing in every process.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import time
from collections import defaultdict
from multiprocessing.connection import wait as _conn_wait
from typing import Callable

from ..datalog.atoms import Literal
from ..datalog.database import Database, Interner, Relation
from ..datalog.evaluation import (
    EvaluationResult,
    EvaluationSnapshot,
    EvaluationStats,
    _check_plan_order,
    _check_resume,
    _ColumnarSlotEngine,
    _resolve_storage,
    _sccs,
)
from ..datalog.program import Program
from ..datalog.terms import Constant, Variable
from ..digest import workload_digest
from ..observability.trace import Tracer, get_tracer
from ..persist.checkpoint import Checkpoint
from ..robustness.budget import Budget, CancellationToken, Governor
from ..robustness.errors import (
    BudgetExceededError,
    EvaluationAborted,
    InjectedFault,
    ReproError,
)
from .supervisor import DEFAULT_SUPERVISION, SupervisionPolicy
from .worker import worker_main

__all__ = [
    "FleetExhausted",
    "SupervisionPolicy",
    "WorkerFailure",
    "WorkerPool",
    "evaluate_sharded",
]


class WorkerFailure(ReproError):
    """A shard worker died or broke protocol (not a budget trip).

    Budget trips inside workers travel the normal
    :class:`~repro.robustness.errors.BudgetExceededError` path (CLI
    exit 1, partial fixpoint attached); this error is for crashes and
    protocol violations the supervision layer could not (or was not
    allowed to) recover from.  Raised out of ``evaluate_sharded``
    directly it maps to exit code 2, but the public
    ``evaluate(..., workers=N)`` entry point catches it and *degrades*
    down the fleet ladder instead — see ``docs/parallel.md``.

    ``recovery`` carries the worker-restart / shard-re-dispatch
    counters accumulated before the failure, so the degradation ladder
    can fold them into the final result's stats.
    """

    def __init__(self, message: str, *, recovery: "dict | None" = None):
        super().__init__(message)
        self.recovery: dict = dict(recovery or {})


class FleetExhausted(WorkerFailure):
    """The supervision retry budget ran out for this evaluation run.

    Every respawn consumes one :class:`~repro.persist.store.RetryPolicy`
    backoff delay; when the iterator runs dry the fleet is declared
    unrecoverable at its current size and this error asks the caller to
    degrade (``evaluate`` halves the worker count, then falls back to
    the sequential columnar engine).
    """


def _fork_context():
    # Fork keeps warm-start cheap (the program and EDB payloads still
    # travel the pipe, but the interpreter state does not have to be
    # re-imported); fall back to the platform default where fork is
    # unavailable.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _pre_intern_head_constants(program: Program, database: Database) -> None:
    """Intern every rule-head constant into the database's dictionary.

    Derivation is the only place evaluation *creates* interner codes
    (body constants probe without inserting).  Minting them all before
    the warm payload is built means the shipped value table is closed
    under derivation: workers never assign a code the master has not,
    so the dictionaries stay identical for the whole run.
    """
    interner = database.interner
    for rule in program.rules:
        for arg in rule.head.args:
            if isinstance(arg, Constant):
                interner.intern(arg.value)


def _columns_of(rows) -> list[list[int]]:
    """Transpose code tuples into per-position columns for shipping."""
    return [list(column) for column in zip(*rows)]


def _rows_of(n: int, columns) -> list[tuple[int, ...]]:
    if not columns:
        return [()] * n
    return list(zip(*columns))


class _DeltaBuffer:
    """A semi-naive frontier on the master: ordered rows + a seen-set.

    The master never joins against its own delta (the workers do), so
    the frontier does not need columnar storage, indexes or decoded
    caches — just insertion order for deterministic sharding and a set
    for deduplication.  Implements the slivers of the Relation API the
    driver touches (``add``/``add_codes`` for the exit-rule sink and
    resume seeding, ``rows`` for checkpoint snapshots, ``code_rows``
    for sharding).
    """

    __slots__ = ("arity", "interner", "row_list", "seen")

    def __init__(self, arity: int, interner: Interner):
        self.arity = arity
        self.interner = interner
        self.row_list: list[tuple[int, ...]] = []
        self.seen: set[tuple[int, ...]] = set()

    def __len__(self) -> int:
        return len(self.row_list)

    def add(self, row) -> bool:
        intern = self.interner.intern
        return self.add_codes(tuple(intern(value) for value in row))

    def add_codes(self, codes: tuple[int, ...]) -> bool:
        if codes in self.seen:
            return False
        self.seen.add(codes)
        self.row_list.append(codes)
        return True

    def extend(self, rows) -> None:
        """Bulk-append rows already deduplicated by the caller."""
        self.row_list.extend(rows)
        self.seen.update(rows)

    def code_rows(self):
        return self.row_list

    def rows(self) -> frozenset:
        decode = self.interner.decode
        return frozenset(
            tuple(decode(code) for code in codes) for codes in self.row_list
        )


class _ShardedEngine(_ColumnarSlotEngine):
    """The master's local engine: columnar derive that records accepts.

    Non-recursive SCCs and exit rules run on the master (they fire once
    — forking them buys nothing); every code row the master accepts is
    appended to the per-predicate accept log so later barriers can
    replicate it into whichever worker mirrors turn out to need it.
    """

    name = "sharded"

    def __init__(self, program, database, idb, plan_order, tracer, accept_log):
        super().__init__(program, database, idb, plan_order, tracer)
        self.accept_log = accept_log

    def derive(self, plan, results, head_relation, sink_delta, prov, stats):
        n, cols = results
        if not n:
            return 0
        head_pred = plan.rule.head.predicate
        intern = self.interner.intern
        head_cols = [
            cols[p] if s else [intern(p)] * n for s, p in plan.head_layout
        ]
        keys = zip(*head_cols) if head_cols else iter([()] * n)
        live = head_relation.code_rows()
        add_codes = head_relation.add_codes
        sink = None if sink_delta is None else sink_delta[head_pred].add_codes
        out = self.accept_log[head_pred]
        new = 0
        for codes in keys:
            if codes in live:
                continue
            add_codes(codes)
            new += 1
            out.append(codes)
            if sink is not None:
                sink(codes)
        stats.facts_derived += new
        return new


def _shard_rows(rows, workers: int, column: "int | None" = None):
    """Partition code rows into per-worker buckets.

    ``column=None`` hashes the full code row (mirror mode); an int
    hashes that single position (aligned mode, so all rows of one
    partition land on the worker that owns it).  Int and int-tuple
    hashing are both ``PYTHONHASHSEED``-independent.
    """
    shards = [[] for _ in range(workers)]
    if workers == 1:
        shards[0].extend(rows)
        return shards
    if column is None:
        for codes in rows:
            shards[hash(codes) % workers].append(codes)
    else:
        for codes in rows:
            shards[hash(codes[column]) % workers].append(codes)
    return shards


def _alignment(delta_rules, members, program: Program) -> "dict[str, int] | None":
    """A partition column per member predicate, if the SCC admits one.

    Aligned sharding needs every delta derivation to land on the worker
    that owns its head row: for each delta rule there must be a
    variable shared between the delta literal (at its partition column)
    and the head (at the head predicate's partition column).  The
    choice must be consistent across all the SCC's delta rules; the
    search is brute force over the (tiny) product of member arities.
    Returns ``None`` — mirror mode — when no assignment exists.
    """
    if not delta_rules:
        return None
    constraints = []
    for _, rule, pos in delta_rules:
        delta_literal = rule.body[pos]
        pairs = set()
        for ci, arg in enumerate(delta_literal.args):
            if not isinstance(arg, Variable):
                continue
            for cj, head_arg in enumerate(rule.head.args):
                if head_arg == arg:
                    pairs.add((ci, cj))
        if not pairs:
            return None
        constraints.append((delta_literal.predicate, rule.head.predicate, pairs))
    preds = sorted(members)
    arities = [program.arity_of(pred) for pred in preds]
    combos = 1
    for arity in arities:
        combos *= arity
        if combos > 256:
            return None
    for choice in itertools.product(*(range(arity) for arity in arities)):
        columns = dict(zip(preds, choice))
        if all(
            (columns[dp], columns[hp]) in pairs for dp, hp, pairs in constraints
        ):
            return columns
    return None


class WorkerPool:
    """A fleet of warmed shard workers bound to one program + EDB.

    Construction forks the processes and performs the warm-start
    hand-off (program, EDB with interner, checkpoint envelope); both
    are the per-run fixed cost the benchmarks report separately as
    ``shard_overhead_seconds``.  The pool is a context manager; it is
    single-use per evaluation but a benchmark may construct it ahead
    of the timed region and pass it to ``evaluate(..., workers=N)``
    via ``evaluate_sharded(..., pool=...)``.
    """

    def __init__(
        self,
        program: Program,
        database: Database,
        workers: int,
        *,
        plan_order: str = "cost",
        idb: "dict[str, Relation] | None" = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if database.storage != "columnar":
            raise ValueError("WorkerPool requires a columnar database")
        self.program = program
        self.database = database
        self.workers = workers
        self.plan_order = plan_order
        _pre_intern_head_constants(program, database)
        warm = self._warm_payload(idb)
        self._ctx = _fork_context()
        self.conns = []
        self.procs = []
        self._closed = False
        try:
            for index in range(workers):
                proc, conn = self._spawn()
                self.conns.append(conn)
                self.procs.append(proc)
            for index, conn in enumerate(self.conns):
                conn.send(("warm", {**warm, "index": index}))
            for index in range(workers):
                self._check_ready(index)
        except BaseException:
            self.close()
            raise
        # Values shipped so far; take_intern_extension() sends the rest.
        self.sent_values = len(database.interner)

    # ------------------------------------------------------------------
    def _warm_payload(self, idb: "dict[str, Relation] | None") -> dict:
        """The warm-start hand-off, built from the *current* state.

        Called at construction and again on every :meth:`respawn`: a
        replacement worker is warmed from the master's live IDB and
        interner (a superset of anything the dead worker knew), so its
        mirrors are complete up to the current barrier and re-shipped
        accept-log suffixes deduplicate as no-ops.
        """
        interner = self.database.interner
        snapshot = EvaluationSnapshot(
            strategy="seminaive",
            completed_sccs=0,
            scc_index=None,
            iteration=0,
            idb={
                pred: relation.rows()
                for pred, relation in (idb or {}).items()
                if len(relation)
            },
            delta=None,
            stats=EvaluationStats(),
            complete=False,
            interner=tuple(interner.values),
        )
        envelope, _ = Checkpoint(
            seq=0,
            workload=workload_digest(self.program, self.database),
            snapshot=snapshot,
        ).encode()
        self.interner_digest = interner.digest()
        return {
            "workers": self.workers,
            "program": self.program,
            "plan_order": self.plan_order,
            "edb": self.database.to_dict(include_interner=True),
            "envelope": envelope,
            "interner_digest": self.interner_digest,
        }

    def _spawn(self):
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _check_ready(self, index: int) -> None:
        kind, payload = self._recv(index)
        if kind != "ready":
            raise WorkerFailure(
                f"worker {index} failed to warm up: "
                f"{payload.get('message', kind)}"
            )
        if payload.get("interner_digest") != self.interner_digest:
            raise WorkerFailure(
                f"worker {index} warm-start interner digest mismatch"
            )

    def kill(self, index: int) -> None:
        """SIGKILL worker ``index`` and reap it (the chaos kill lever)."""
        proc = self.procs[index]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)

    def respawn(self, index: int, *, idb: "dict[str, Relation] | None" = None) -> object:
        """Reap worker ``index`` and warm a replacement in its slot.

        The replacement is warmed from the master's *current* IDB and
        interner (``idb`` is the live relation map), which is exactly
        the state a worker is held to at a barrier boundary: mid-merge
        the round's accepted rows are not yet flushed, so the envelope
        captures barrier-start state and the in-flight task's update
        suffixes re-absorb idempotently.  Returns the new connection;
        raises :class:`WorkerFailure` if the replacement fails to warm.
        """
        self.kill(index)
        try:
            self.conns[index].close()
        except OSError:  # pragma: no cover - already closed
            pass
        warm = self._warm_payload(idb)
        proc, conn = self._spawn()
        self.procs[index] = proc
        self.conns[index] = conn
        conn.send(("warm", {**warm, "index": index}))
        self._check_ready(index)
        return conn

    def take_intern_extension(self) -> list:
        """Values interned by the master since the last barrier."""
        values = self.database.interner.values
        extension = list(values[self.sent_values :])
        self.sent_values = len(values)
        return extension

    def _recv(self, index: int):
        try:
            return self.conns[index].recv()
        except (EOFError, OSError) as exc:
            raise WorkerFailure(
                f"worker {index} died mid-protocol ({exc.__class__.__name__})"
            ) from exc

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self.conns:
            try:
                conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - terminate-resistant
                proc.kill()
                proc.join(timeout=1.0)
        for conn in self.conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        # The joins above reaped every exit status; close() releases the
        # Process objects' OS resources too, so an aborted round leaves
        # no dead or zombie worker behind in the pool.
        for proc in self.procs:
            try:
                proc.close()
            except ValueError:  # pragma: no cover - still-running straggler
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def evaluate_sharded(
    program: Program,
    database: Database,
    *,
    workers: int,
    pool: WorkerPool | None = None,
    provenance: bool = False,
    max_iterations: int | None = None,
    strategy: str = "seminaive",
    tracer: Tracer | None = None,
    plan_order: str = "cost",
    storage: str | None = None,
    budget: "Budget | Governor | None" = None,
    cancellation: CancellationToken | None = None,
    checkpoint_every: int = 0,
    checkpoint_sink: "Callable[[EvaluationSnapshot], None] | None" = None,
    resume_from: EvaluationSnapshot | None = None,
    supervision: "SupervisionPolicy | None" = None,
) -> EvaluationResult:
    """Semi-naive evaluation sharded across ``workers`` processes.

    The public entry point is ``evaluate(..., workers=N)``; benchmarks
    call this directly with a pre-built ``pool`` so fork + EDB shipping
    stays outside the timed region.  Results — fixpoint, digests,
    ``iterations``, ``rule_firings``, ``facts_derived``,
    ``rows_scanned`` (total and per rule) — are byte-identical to the
    sequential columnar engine; the per-process counters (``probes``,
    ``block_probes``, ``env_allocations``, ``index_builds``) report
    fleet totals and therefore exceed the sequential values.

    Restrictions: ``strategy`` must be ``"seminaive"`` (delta sharding
    is meaningless under naive re-evaluation) and ``provenance`` is
    unsupported (support tuples are process-local).  ``checkpoint_*``
    and ``resume_from`` work exactly as in the sequential engine.

    Worker deaths and stragglers are handled by the supervision layer
    (``supervision``, a :class:`SupervisionPolicy`): the dead worker is
    respawned warm from the master's current state and its shard
    re-dispatched — byte-identical results, because shards are pure
    functions of ``(round, partition)`` and a dead worker's reply was
    never merged.  Recovery is bounded by the policy's retry budget;
    exhausting it raises :class:`FleetExhausted`, which the public
    ``evaluate`` entry point turns into a degradation-ladder rung.
    """
    if not isinstance(workers, int) or workers < 1:
        raise ValueError(f"workers must be a positive int, got {workers!r}")
    if provenance:
        raise ValueError(
            "workers=N cannot record provenance (support tuples are "
            "process-local); use the sequential engine for derivation trees"
        )
    if strategy != "seminaive":
        raise ValueError(
            f"workers=N requires strategy='seminaive', got {strategy!r} "
            "(delta sharding has no meaning under naive re-evaluation)"
        )
    if tracer is None:
        tracer = get_tracer()
    _check_plan_order(plan_order)
    governor = Governor.of(budget, cancellation)
    _check_resume(resume_from, "seminaive", provenance)
    database = _resolve_storage(database, storage).to_storage("columnar")
    policy = supervision if supervision is not None else DEFAULT_SUPERVISION
    # One backoff iterator per run: every worker recovery consumes one
    # delay, so the whole evaluation is bounded to ``attempts - 1``
    # respawns before FleetExhausted asks the caller to degrade.
    retry_delays = policy.retry.delays()

    trace_on = tracer.enabled
    started = time.perf_counter()
    started_cpu = time.process_time()
    stats = EvaluationStats()
    base_wall = 0.0
    interner = database.interner
    idb: dict[str, Relation] = {
        pred: database.new_relation(program.arity_of(pred))
        for pred in program.idb_predicates
    }
    if resume_from is not None:
        stats.merge(resume_from.stats)
        base_wall = stats.wall_time_seconds
        if resume_from.interner is not None:
            for value in resume_from.interner:
                interner.intern(value)
        for pred, rows in resume_from.idb.items():
            if pred in idb:
                for row in rows:
                    idb[pred].add(row)
    base_intern = stats.intern_hits
    hits0 = interner.hits

    def sync_intern_hits() -> None:
        stats.intern_hits = base_intern + interner.hits - hits0

    # Every code row ever accepted into the IDB, in acceptance order,
    # plus the per-predicate cursor up to which the workers have been
    # told.  Rows seeded from a resume snapshot are excluded on purpose:
    # they ride the warm-start envelope instead.
    accept_log: "defaultdict[str, list[tuple]]" = defaultdict(list)
    shipped_upto: "defaultdict[str, int]" = defaultdict(int)
    eng = _ShardedEngine(program, database, idb, plan_order, tracer, accept_log)
    checkpointing = checkpoint_sink is not None and checkpoint_every > 0

    own_pool = pool is None
    if own_pool:
        pool = WorkerPool(
            program, database, workers, plan_order=plan_order, idb=idb
        )
    else:
        if resume_from is not None:
            raise ValueError(
                "a pre-built pool cannot resume from a snapshot; let "
                "evaluate_sharded construct its own pool"
            )
        if pool.workers != workers:
            raise ValueError(
                f"pool has {pool.workers} workers, evaluation asked for {workers}"
            )
        if pool.database is not database or pool.program is not program:
            raise ValueError(
                "pool was built for a different program/database object"
            )
        if pool.plan_order != plan_order:
            raise ValueError(
                f"pool was built with plan_order={pool.plan_order!r}, "
                f"evaluation asked for {plan_order!r}"
            )

    idb_preds = program.idb_predicates
    # Per-worker dispatch heartbeat (``time.monotonic`` at the last
    # successful send): merge-side liveness checks measure straggler
    # time from here.
    sent_at = [0.0] * pool.workers

    # Per-worker accounting and the modeled critical path.  Both sides
    # report CPU time (``time.process_time``), which is immune to core
    # contention: the master's own CPU is its serial work (dispatch
    # pickling, merge, dedup — it runs while workers idle), and on a
    # machine with >= ``workers`` free cores the fleet's wall clock
    # converges to ``master_cpu + sum over barriers of max(worker
    # cpu)``, so the benchmarks report that quantity
    # (``critical_path_seconds``) alongside raw wall time.
    worker_report = [
        {"tasks": 0, "cpu_seconds": 0.0, "wall_seconds": 0.0, "results": 0, "accepted": 0}
        for _ in range(pool.workers)
    ]
    path = {"barrier_max_cpu": 0.0}

    def shard_report() -> dict:
        master_serial = max(0.0, time.process_time() - started_cpu)
        return {
            "workers": pool.workers,
            "per_worker": [
                {key: round(val, 6) if isinstance(val, float) else val
                 for key, val in report.items()}
                for report in worker_report
            ],
            "master_serial_seconds": round(master_serial, 6),
            "critical_path_seconds": round(
                master_serial + path["barrier_max_cpu"], 6
            ),
        }

    def make_snapshot(
        completed: int,
        scc_index: "int | None",
        iteration: int,
        delta: "dict[str, _DeltaBuffer] | None",
        complete: bool = False,
    ) -> EvaluationSnapshot:
        sync_intern_hits()
        snap_stats = stats.copy()
        snap_stats.wall_time_seconds = base_wall + (time.perf_counter() - started)
        return EvaluationSnapshot(
            strategy="seminaive",
            completed_sccs=completed,
            scc_index=scc_index,
            iteration=iteration,
            idb={pred: rel.rows() for pred, rel in idb.items()},
            delta=None
            if delta is None
            else {pred: rel.rows() for pred, rel in delta.items()},
            stats=snap_stats,
            complete=complete,
            interner=tuple(interner.values),
        )

    def relation_of(predicate: str, arity: int) -> Relation:
        if predicate in idb_preds:
            return idb[predicate]
        return database.relation(predicate, arity)

    def fire_rule(plan, delta_relation, sink_delta, scc_index, iteration) -> None:
        """Run one rule locally on the master (exit / non-recursive)."""
        head_relation = idb[plan.rule.head.predicate]

        def run() -> None:
            rows_before = stats.rows_scanned
            results = eng.run(plan, relation_of, delta_relation, stats, governor)
            stats.rule_firings += eng.result_count(results)
            key = plan.rule_key
            stats.rows_scanned_by_rule[key] = (
                stats.rows_scanned_by_rule.get(key, 0)
                + stats.rows_scanned
                - rows_before
            )
            eng.derive(plan, results, head_relation, sink_delta, None, stats)
            if governor is not None:
                governor.check("evaluate", stats)

        if not trace_on:
            run()
            return
        before = (
            stats.probes,
            stats.rows_scanned,
            stats.facts_derived,
            stats.rule_firings,
            stats.index_builds,
        )
        with tracer.span(
            "rule",
            predicate=plan.rule.head.predicate,
            rule=plan.rule_key,
            scc=scc_index,
            iteration=iteration,
            delta=delta_relation is not None,
        ) as span:
            run()
            span.set(
                firings=stats.rule_firings - before[3],
                probes=stats.probes - before[0],
                rows_scanned=stats.rows_scanned - before[1],
                facts_derived=stats.facts_derived - before[2],
                index_builds=stats.index_builds - before[4],
            )

    def barrier(
        run_plan_ids,
        delta_by_pred,
        compile_specs,
        plan_meta,
        needed,
        new_delta,
        scc_index,
        iteration,
        compile_cache,
        aligned_cols=None,
        ship_delta=True,
    ) -> None:
        """One fleet synchronization: dispatch tasks, merge replies.

        ``plan_meta`` maps plan id -> (rule_key, head_pred) for stats
        attribution and head acceptance; ``needed`` is the set of IDB
        predicates the dispatched plans read through non-delta literals
        (only their accept-log suffixes are shipped).  In aligned mode
        (``aligned_cols`` set) the delta ships only on the SCC's first
        round (``ship_delta``) — afterwards each worker's frontier *is*
        its shard — and replies are accepted without re-deduplication,
        because partition ownership makes the workers' mirror checks
        exact.

        ``compile_cache`` retains the SCC's compile payload past its
        first barrier so a replacement worker (which has no compiled
        plans) can be re-dispatched mid-SCC.  Worker deaths, protocol
        errors and stragglers are *recovered* — respawn plus shard
        re-dispatch under the run's retry budget — raising
        :class:`FleetExhausted` only when the budget runs dry; worker
        budget trips still raise the usual abort.
        """
        extension = pool.take_intern_extension()
        updates = []
        for pred in sorted(needed):
            log = accept_log[pred]
            cursor = shipped_upto[pred]
            if len(log) > cursor:
                fresh = log[cursor:]
                updates.append((pred, len(fresh), _columns_of(fresh)))
            shipped_upto[pred] = len(log)
        compile_payload = None
        if compile_specs is not None:
            # The workers compile against the master's sizes at this
            # exact point — right after the SCC's exit rules, the same
            # point the sequential engine compiles at — so cost-based
            # plan orders (and with them per-rule ``rows_scanned``)
            # match a sequential run's even when the worker mirrors are
            # lazily behind.
            compile_payload = {
                "specs": compile_specs,
                "sizes": {pred: len(rel) for pred, rel in idb.items()},
                "aligned": aligned_cols,
            }
            compile_cache["payload"] = compile_payload
        deadline = None if governor is None else governor.remaining()
        task = {
            "intern": extension,
            "updates": updates,
            "compile": compile_payload,
            "plans": run_plan_ids,
            "deadline": deadline,
        }
        shared = pickle.dumps(task, pickle.HIGHEST_PROTOCOL)
        shard_by_pred = {}
        if ship_delta:
            shard_by_pred = {
                pred: _shard_rows(
                    rel.code_rows(),
                    pool.workers,
                    None if aligned_cols is None else aligned_cols[pred],
                )
                for pred, rel in delta_by_pred.items()
                if len(rel)
            }
        update_rows = sum(n for _, n, _ in updates)
        straggler_limit = policy.straggler_limit(deadline)

        def recovery_shard(index: int) -> list:
            """The lost shard, recomputed for a replacement worker.

            Shards are pure functions of ``(round, partition)``: the
            master's delta buffers hold the full current-round frontier
            (in aligned mode too — ``new_delta`` accumulates every
            accepted row), so the replacement's bucket comes out
            byte-identical to the one the dead worker held, even when
            the original dispatch shipped no delta at all
            (``ship_delta=False``: live workers keep their own
            frontier, but a replacement lost its).
            """
            shard = []
            for pred, rel in delta_by_pred.items():
                if not len(rel):
                    continue
                column = None if aligned_cols is None else aligned_cols[pred]
                bucket = _shard_rows(rel.code_rows(), pool.workers, column)[index]
                if bucket:
                    shard.append((pred, len(bucket), _columns_of(bucket)))
            return shard

        def recover(index: int, reason: str) -> None:
            """Respawn worker ``index`` and re-dispatch its shard.

            Loops until the replacement is warm and dispatched or the
            retry budget runs dry (:class:`FleetExhausted`).  Each
            attempt consumes one backoff delay, clamped to the
            governor's remaining deadline — recovery never outlives
            ``--timeout``.
            """
            while True:
                if governor is not None:
                    governor.check("evaluate", stats)
                delay = next(retry_delays, None)
                if delay is None:
                    raise FleetExhausted(
                        f"worker {index} unrecoverable: retry budget of "
                        f"{policy.retry.attempts - 1} restart(s) exhausted "
                        f"({reason})",
                        recovery={
                            "worker_restarts": stats.worker_restarts,
                            "shards_redispatched": stats.shards_redispatched,
                        },
                    )
                if trace_on:
                    tracer.event(
                        "shard.retry",
                        worker=index,
                        scc=scc_index,
                        iteration=iteration,
                        delay=round(delay, 6),
                        reason=reason,
                    )
                remaining = None if governor is None else governor.remaining()
                if remaining is not None:
                    delay = max(0.0, min(delay, remaining))
                if delay > 0:
                    time.sleep(delay)
                try:
                    conn = pool.respawn(index, idb=idb)
                except WorkerFailure as exc:
                    reason = f"respawn failed: {exc}"
                    continue
                stats.worker_restarts += 1
                if trace_on:
                    tracer.event(
                        "shard.respawn",
                        worker=index,
                        scc=scc_index,
                        iteration=iteration,
                        reason=reason,
                    )
                # The recovery task always carries the SCC's compile
                # payload (the replacement has no plans) and a fresh
                # deadline slice; interner extension and accept-log
                # updates re-absorb idempotently on top of the warm
                # envelope.
                blob = pickle.dumps(
                    {
                        **task,
                        "compile": compile_cache.get("payload"),
                        "deadline": None
                        if governor is None
                        else governor.remaining(),
                    },
                    pickle.HIGHEST_PROTOCOL,
                )
                try:
                    conn.send(("task", blob, recovery_shard(index)))
                except (BrokenPipeError, OSError) as exc:
                    reason = f"re-dispatch failed ({exc.__class__.__name__})"
                    continue
                stats.shards_redispatched += 1
                sent_at[index] = time.monotonic()
                return

        for index in range(pool.workers):
            shard = [
                (pred, len(bucket), _columns_of(bucket))
                for pred, buckets in shard_by_pred.items()
                for bucket in (buckets[index],)
                if bucket
            ]
            if trace_on:
                try:
                    tracer.event(
                        "shard.dispatch",
                        worker=index,
                        scc=scc_index,
                        iteration=iteration,
                        plans=len(run_plan_ids),
                        delta_rows=sum(n for _, n, _ in shard),
                        update_rows=update_rows,
                    )
                except InjectedFault:
                    # The chaos harness's worker-kill site: an armed
                    # fault at ``shard.dispatch`` kills this worker
                    # instead of aborting the run — the dead pipe on
                    # the send below engages recovery.
                    pool.kill(index)
            try:
                pool.conns[index].send(("task", shared, shard))
                sent_at[index] = time.monotonic()
            except (BrokenPipeError, OSError) as exc:
                # A worker that died between barriers (or was killed by
                # the chaos site above) surfaces here, on the dispatch
                # send.
                recover(index, f"died before dispatch ({exc.__class__.__name__})")

        # Merge replies in arrival order, overlapping the master's
        # dedup work with the slower workers' compute.  Every decision
        # below is content-based (sets and sums), so arrival order
        # cannot change what is accepted — only which worker a
        # duplicate is attributed to in the trace.
        aborted: "dict | None" = None
        round_max_cpu = 0.0
        firings_by_plan: "defaultdict[int, int]" = defaultdict(int)
        rows_by_plan: "defaultdict[int, int]" = defaultdict(int)
        accepted_by_plan: "defaultdict[int, int]" = defaultdict(int)
        accepted_rows: "dict[str, list[tuple]]" = {}
        batch_seen: "dict[str, set]" = {}
        outstanding = set(range(pool.workers))
        while outstanding:
            # Deadline-based liveness: without a straggler limit the
            # wait blocks (a dead worker's pipe closes and wakes it);
            # with one, the wait polls so silent-but-alive workers can
            # be declared stuck, killed and recovered.
            by_conn = {pool.conns[i]: i for i in outstanding}
            ready = _conn_wait(
                list(by_conn), None if straggler_limit is None else 0.05
            )
            if not ready:
                now = time.monotonic()
                for index in sorted(by_conn.values()):
                    if not pool.procs[index].is_alive():
                        recover(index, "died mid-round")
                    elif (
                        straggler_limit is not None
                        and now - sent_at[index] > straggler_limit
                    ):
                        pool.kill(index)
                        recover(
                            index,
                            f"straggler exceeded {straggler_limit:.3f}s",
                        )
                continue
            for conn in ready:
                index = by_conn[conn]
                try:
                    kind, payload = conn.recv()
                except (EOFError, OSError) as exc:
                    recover(
                        index, f"died mid-protocol ({exc.__class__.__name__})"
                    )
                    continue
                if kind == "error":
                    # A protocol break (worker traceback) is treated
                    # like a crash: kill the broken worker, recover.
                    pool.kill(index)
                    recover(
                        index,
                        f"worker error: {payload.get('message', '').strip().splitlines()[-1] if payload.get('message') else 'unknown'}",
                    )
                    continue
                outstanding.discard(index)
                cpu = payload.get("cpu", 0.0)
                report = worker_report[index]
                report["tasks"] += 1
                report["cpu_seconds"] += cpu
                report["wall_seconds"] += payload.get("elapsed", 0.0)
                round_max_cpu = max(round_max_cpu, cpu)
                if kind == "abort":
                    # Fold the tripped worker's partial counters in
                    # through the order-independent merge; its head rows
                    # are sound derivations, merged below like any
                    # other reply's.
                    stats.merge(EvaluationStats.from_dict(payload["stats"]))
                    aborted = payload
                else:
                    wstats = payload["stats"]
                    stats.probes += wstats["probes"]
                    stats.env_allocations += wstats["env_allocations"]
                    stats.block_probes += wstats["block_probes"]
                    stats.index_builds += wstats["index_builds"]
                    for plan_id, count, rows in payload["plans"]:
                        stats.rule_firings += count
                        stats.rows_scanned += rows
                        firings_by_plan[plan_id] += count
                        rows_by_plan[plan_id] += rows
                        key = plan_meta[plan_id][0]
                        stats.rows_scanned_by_rule[key] = (
                            stats.rows_scanned_by_rule.get(key, 0) + rows
                        )
                results = 0
                accepted = 0
                for plan_id, n, cols in payload.get("heads", ()):
                    head_pred = plan_meta[plan_id][1]
                    results += n
                    if aligned_cols is not None:
                        # Partition ownership: the shipping worker is
                        # the only process that can derive these rows
                        # and its mirror is complete for its partition,
                        # so every row is fresh by construction.
                        acc = accepted_rows.setdefault(head_pred, [])
                        acc.extend(_rows_of(n, cols))
                        accepted += n
                        accepted_by_plan[plan_id] += n
                        continue
                    live = idb[head_pred].code_rows()
                    seen = batch_seen.get(head_pred)
                    if seen is None:
                        seen = batch_seen[head_pred] = set()
                        accepted_rows[head_pred] = []
                    acc = accepted_rows[head_pred]
                    for codes in _rows_of(n, cols):
                        if codes in live or codes in seen:
                            continue
                        seen.add(codes)
                        acc.append(codes)
                        accepted += 1
                        accepted_by_plan[plan_id] += 1
                report["results"] += results
                report["accepted"] += accepted
                if trace_on:
                    try:
                        tracer.event(
                            "shard.merge",
                            worker=index,
                            scc=scc_index,
                            iteration=iteration,
                            results=results,
                            accepted=accepted,
                            elapsed=round(payload.get("elapsed", 0.0), 6),
                            aborted=kind == "abort",
                        )
                    except InjectedFault:
                        # Chaos worker-kill at the merge ack: the reply
                        # was already folded in, so the kill costs
                        # nothing this round — the dead pipe engages
                        # recovery at the next dispatch.
                        pool.kill(index)
        path["barrier_max_cpu"] += round_max_cpu
        for pred, acc in accepted_rows.items():
            if not acc:
                continue
            idb[pred].extend_codes(acc)
            accept_log[pred].extend(acc)
            new_delta[pred].extend(acc)
            stats.facts_derived += len(acc)
        if trace_on:
            for plan_id in run_plan_ids:
                if not (
                    firings_by_plan[plan_id]
                    or rows_by_plan[plan_id]
                    or accepted_by_plan[plan_id]
                ):
                    continue
                key, head_pred = plan_meta[plan_id]
                with tracer.span(
                    "rule",
                    predicate=head_pred,
                    rule=key,
                    scc=scc_index,
                    iteration=iteration,
                    delta=True,
                ) as span:
                    span.set(
                        firings=firings_by_plan[plan_id],
                        rows_scanned=rows_by_plan[plan_id],
                        facts_derived=accepted_by_plan[plan_id],
                    )
        if aborted is not None:
            raise BudgetExceededError(
                aborted.get("message")
                or "worker budget slice exhausted; fleet aborted",
                limit=aborted.get("limit") or "timeout",
            )
        if governor is not None:
            governor.check("evaluate", stats)

    def partial_result() -> EvaluationResult:
        return EvaluationResult(
            idb=idb,
            stats=stats,
            program=program,
            database=database,
            provenance=None,
            shards=shard_report(),
        )

    try:
        with tracer.span(
            "evaluate",
            strategy="seminaive",
            engine=eng.name,
            rules=len(program.rules),
            workers=pool.workers,
        ) as root:
            graph = program.dependency_graph()
            components = _sccs(graph)
            for scc_index, component in enumerate(components):
                if resume_from is not None and scc_index < resume_from.completed_sccs:
                    continue
                resuming_here = (
                    resume_from is not None
                    and resume_from.scc_index == scc_index
                    and resume_from.delta is not None
                )
                if governor is not None:
                    governor.check("evaluate", stats)
                members = set(component)
                recursive = len(component) > 1 or any(
                    head in graph.get(head, set()) for head in component
                )
                indexed_rules = [
                    (index, rule)
                    for index, rule in enumerate(program.rules)
                    if rule.head.predicate in members
                ]
                with tracer.span(
                    "scc",
                    index=scc_index,
                    members=",".join(sorted(members)),
                    recursive=recursive,
                ):
                    if not recursive:
                        for _, rule in indexed_rules:
                            fire_rule(
                                eng.make_plan(rule, None), None, None, scc_index, None
                            )
                        continue
                    exit_rules = []
                    delta_rules: "list[tuple[int, Rule, int]]" = []
                    for rule_index, rule in indexed_rules:
                        recursive_positions = [
                            i
                            for i, item in enumerate(rule.body)
                            if isinstance(item, Literal)
                            and item.positive
                            and item.predicate in members
                        ]
                        if not recursive_positions:
                            exit_rules.append(rule)
                        else:
                            for pos in recursive_positions:
                                delta_rules.append((rule_index, rule, pos))
                    if resuming_here:
                        assert resume_from is not None and resume_from.delta is not None
                        delta = {}
                        for pred in members:
                            buf = _DeltaBuffer(program.arity_of(pred), interner)
                            for row in resume_from.delta.get(pred, ()):
                                buf.add(row)
                            delta[pred] = buf
                        iterations = resume_from.iteration
                    else:
                        delta = {
                            pred: _DeltaBuffer(program.arity_of(pred), interner)
                            for pred in members
                        }
                        for rule in exit_rules:
                            fire_rule(
                                eng.make_plan(rule, None), None, delta, scc_index, None
                            )
                        iterations = 0
                    compile_specs = [
                        (rule_index, pos) for rule_index, _, pos in delta_rules
                    ]
                    plan_meta = {
                        plan_id: (repr(rule), rule.head.predicate)
                        for plan_id, (_, rule, pos) in enumerate(delta_rules)
                    }
                    delta_pred_of = {
                        plan_id: rule.body[pos].predicate
                        for plan_id, (_, rule, pos) in enumerate(delta_rules)
                    }
                    # The IDB predicates each plan reads through
                    # non-delta literals (positive or negated): exactly
                    # the mirrors that must be current before it runs.
                    needed_of = [
                        {
                            item.predicate
                            for i, item in enumerate(rule.body)
                            if i != pos
                            and isinstance(item, Literal)
                            and item.predicate in idb_preds
                        }
                        for _, rule, pos in delta_rules
                    ]
                    # A delta plan that reads a same-SCC relation through
                    # a non-delta literal sees facts derived earlier in
                    # the same round; those SCCs barrier per plan so the
                    # mirrors can be refreshed in between.
                    nonlinear = any(
                        i != pos
                        and isinstance(item, Literal)
                        and item.positive
                        and item.predicate in members
                        for _, rule, pos in delta_rules
                        for i, item in enumerate(rule.body)
                    )
                    # Aligned sharding needs the workers' mirrors to be
                    # exact for their partitions, which nonlinear SCCs
                    # (reading whole same-SCC relations) cannot give.
                    aligned_cols = (
                        None if nonlinear else _alignment(delta_rules, members, program)
                    )
                    first_round = True
                    # Retained past the SCC's first barrier so recovery
                    # can re-dispatch the compile payload to replacement
                    # workers that never saw it.
                    compile_cache: dict = {}
                    while any(len(d) for d in delta.values()):
                        iterations += 1
                        if max_iterations is not None and iterations > max_iterations:
                            break
                        stats.iterations += 1
                        if governor is not None:
                            governor.check("evaluate", stats)
                        if trace_on:
                            tracer.event(
                                "iteration",
                                scc=scc_index,
                                index=iterations,
                                delta_in=sum(len(d) for d in delta.values()),
                            )
                        new_delta: dict[str, _DeltaBuffer] = {
                            pred: _DeltaBuffer(program.arity_of(pred), interner)
                            for pred in members
                        }
                        if nonlinear:
                            for plan_id in range(len(delta_rules)):
                                delta_rel = delta[delta_pred_of[plan_id]]
                                if not len(delta_rel):
                                    continue
                                barrier(
                                    [plan_id],
                                    {delta_pred_of[plan_id]: delta_rel},
                                    compile_specs,
                                    plan_meta,
                                    needed_of[plan_id],
                                    new_delta,
                                    scc_index,
                                    iterations,
                                    compile_cache,
                                )
                                compile_specs = None
                        else:
                            run_ids = [
                                plan_id
                                for plan_id in range(len(delta_rules))
                                if len(delta[delta_pred_of[plan_id]])
                            ]
                            needed = set()
                            for plan_id in run_ids:
                                needed |= needed_of[plan_id]
                            barrier(
                                run_ids,
                                delta,
                                compile_specs,
                                plan_meta,
                                needed,
                                new_delta,
                                scc_index,
                                iterations,
                                compile_cache,
                                aligned_cols,
                                aligned_cols is None or first_round,
                            )
                            compile_specs = None
                        first_round = False
                        delta = new_delta
                        if checkpointing and stats.iterations % checkpoint_every == 0:
                            checkpoint_sink(
                                make_snapshot(scc_index, scc_index, iterations, delta)
                            )
            if checkpoint_sink is not None:
                checkpoint_sink(
                    make_snapshot(
                        len(components), None, stats.iterations, None, complete=True
                    )
                )
            if trace_on:
                root.set(
                    **{k: v for k, v in stats.as_dict().items() if isinstance(v, int)}
                )
    except EvaluationAborted as exc:
        stats.budget_trips += 1
        sync_intern_hits()
        stats.wall_time_seconds = base_wall + (time.perf_counter() - started)
        if trace_on:
            tracer.event(
                "budget.trip",
                phase=exc.phase or "evaluate",
                limit=exc.limit or "",
                facts_derived=stats.facts_derived,
                iterations=stats.iterations,
            )
        raise exc.with_context(
            phase="evaluate", partial=partial_result(), stats=stats
        ) from None
    finally:
        if own_pool:
            pool.close()
    sync_intern_hits()
    stats.wall_time_seconds = base_wall + (time.perf_counter() - started)
    return partial_result()
