"""Multiprocess sharded semi-naive evaluation.

``evaluate(..., workers=N)`` (:mod:`repro.datalog.evaluation`)
dispatches here: each semi-naive delta is hash-partitioned by code row
across ``N`` forked worker processes, which run the columnar block
kernels over their shard and ship candidate head rows back; the master
merges frontiers at round boundaries.  Fixpoints, digests and the join
work counters are byte-identical to the sequential engines — see
``docs/parallel.md`` for the sharding scheme, the barrier protocol,
governor slicing and the failure modes.

Worker deaths, protocol breaks and stragglers are supervised: the
master respawns warm replacements and re-dispatches the lost shard
under a bounded retry budget (:class:`SupervisionPolicy`), raising
:class:`FleetExhausted` only when the budget runs dry — at which point
the evaluation ladder degrades (half the workers, then sequential
columnar) instead of failing.
"""

from .engine import FleetExhausted, WorkerFailure, WorkerPool, evaluate_sharded
from .supervisor import DEFAULT_SUPERVISION, SupervisionPolicy

__all__ = [
    "DEFAULT_SUPERVISION",
    "FleetExhausted",
    "SupervisionPolicy",
    "WorkerFailure",
    "WorkerPool",
    "evaluate_sharded",
]
