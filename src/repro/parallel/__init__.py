"""Multiprocess sharded semi-naive evaluation.

``evaluate(..., workers=N)`` (:mod:`repro.datalog.evaluation`)
dispatches here: each semi-naive delta is hash-partitioned by code row
across ``N`` forked worker processes, which run the columnar block
kernels over their shard and ship candidate head rows back; the master
merges frontiers at round boundaries.  Fixpoints, digests and the join
work counters are byte-identical to the sequential engines — see
``docs/parallel.md`` for the sharding scheme, the barrier protocol,
governor slicing and the failure modes.
"""

from .engine import WorkerFailure, WorkerPool, evaluate_sharded

__all__ = ["WorkerFailure", "WorkerPool", "evaluate_sharded"]
