"""The shard worker: one process of the sharded semi-naive fleet.

A worker is a *mirror* of the master's evaluation state.  It is warmed
exactly once with the program, the EDB (shipped as
``Database.to_dict(include_interner=True)``, so dictionary codes are
reproduced verbatim) and a PR 5 checkpoint envelope binding the
workload digest and the IDB seed.  After that it answers barrier tasks:

1. apply the interner extension (values the master interned since the
   last barrier — normally empty, because the master pre-interns every
   rule-head constant before warm-up),
2. apply the IDB updates — code rows the master accepted since its
   per-predicate ship cursor.  The master ships a predicate's rows
   only for barriers whose plans actually *read* that predicate
   through a non-delta literal, and the worker materializes them into
   the columnar mirror relation lazily, on the first read: predicates
   that are only ever delta-scanned and head-derived (plain transitive
   closures, say) cost the fleet nothing to keep in sync,
3. optionally compile the delta plans of the SCC about to iterate.
   The compile message carries the master's relation sizes at its own
   compile point, so cost-based plan orders come out identical in
   every process — which is what makes per-rule ``rows_scanned``
   byte-identical to the sequential engine,
4. run its delta shard through the requested plans via the columnar
   block kernels (:meth:`~repro.datalog.plan.RulePlan.run_blocks`) and
   ship back candidate head rows, pre-deduplicated against its mirror
   and against everything it has already shipped.

Workers never assign new interner codes (the guard in
:meth:`_WorkerState.run_task` turns a violation into a loud protocol
error instead of a silent digest divergence) and never accept facts
from their own results — the master is the single authority on which
facts are new; acceptance comes back as a later barrier's updates.

Row payloads travel as columns (``(n, [column, ...])`` of int codes):
lists of small ints pickle several times faster than lists of tuples,
and both ends transpose cheaply.

The per-task ``deadline`` is the master governor's remaining wall-clock
slice; a worker that trips it replies ``("abort", ...)`` with whatever
head rows it had already produced (every one of them is a sound
derivation, so the master may fold them into the partial fixpoint).
"""

from __future__ import annotations

import pickle
import signal
import time
import traceback

from ..datalog.database import Database
from ..datalog.evaluation import EvaluationStats
from ..datalog.plan import DEFAULT_IDB_ESTIMATE, compile_rule
from ..digest import workload_digest
from ..persist.checkpoint import Checkpoint
from ..robustness.budget import Budget, Governor
from ..robustness.errors import EvaluationAborted

__all__ = ["worker_main"]


def _rows_of(n: int, columns) -> list[tuple[int, ...]]:
    """Transpose shipped columns back into code tuples."""
    if not columns:
        return [()] * n
    return list(zip(*columns))


def _columns_of(rows) -> list[list[int]]:
    return [list(column) for column in zip(*rows)]


class _WorkerState:
    """Everything one worker process keeps between barriers."""

    def __init__(self, payload: dict):
        self.index: int = payload["index"]
        self.workers: int = payload["workers"]
        self.program = payload["program"]
        self.plan_order: str = payload["plan_order"]
        database = Database.from_dict(payload["edb"])
        if database.storage != "columnar":
            database = database.to_storage("columnar")
        self.database = database
        self.interner = database.interner
        envelope = Checkpoint.decode(payload["envelope"])
        if envelope.workload != workload_digest(self.program, self.database):
            raise ValueError(
                "worker warm-start envelope does not match the shipped "
                "program/EDB (workload digest mismatch)"
            )
        expected = payload.get("interner_digest")
        if expected is not None and self.interner.digest() != expected:
            raise ValueError(
                "worker interner diverged from master during warm-start "
                "(value-table digest mismatch)"
            )
        # Per-IDB-predicate mirror state: the materialized columnar
        # relation the block kernels read, the authoritative row set
        # (updates land here immediately), and the backlog of rows not
        # yet flushed into the relation.
        self.idb: dict = {}
        self.mirror: dict[str, set] = {}
        self.stale: dict[str, list] = {}
        # Everything this worker has ever shipped as a candidate head:
        # shipping a row twice is pure waste (the master either accepted
        # it — it can never become new again — or deduplicated it).
        self.shipped: dict[str, set] = {}
        for pred in self.program.idb_predicates:
            relation = database.new_relation(self.program.arity_of(pred))
            for row in envelope.snapshot.idb.get(pred, ()):
                relation.add(row)
            self.idb[pred] = relation
            self.mirror[pred] = set(relation.code_rows())
            self.stale[pred] = []
            self.shipped[pred] = set()
        self.plans: list = []
        self.sizes: dict[str, int] = {}
        # Aligned mode (set per SCC by the compile message): partition
        # column per member predicate, plus the locally-retained
        # frontier — the candidates this worker accepted last round,
        # which *are* its delta shard for the next round.
        self.aligned: "dict[str, int] | None" = None
        self.frontier: dict[str, list] = {}

    # -- plan compilation ------------------------------------------------
    def _size_of(self, literal) -> float:
        size = self.sizes.get(literal.predicate)
        if size is not None:
            return float(size) or float(DEFAULT_IDB_ESTIMATE)
        return float(
            len(self.database.relation(literal.predicate, literal.atom.arity))
        )

    def _compile(self, compile_payload: dict) -> None:
        # The master's IDB sizes at its compile point, so cost-based
        # orders match a sequential run's exactly (the local mirrors may
        # be lazily behind for predicates no plan reads).
        self.sizes = compile_payload["sizes"]
        self.aligned = compile_payload.get("aligned")
        self.frontier = {}
        self.plans = [
            compile_rule(
                self.program.rules[rule_index],
                delta_index,
                order=self.plan_order,
                size_of=self._size_of,
            )
            for rule_index, delta_index in compile_payload["specs"]
        ]

    def _absorb(self, predicate: str, rows) -> None:
        """Record accepted rows in the mirror (and the flush backlog)."""
        mirror = self.mirror[predicate]
        backlog = self.stale[predicate]
        for codes in rows:
            if codes not in mirror:
                mirror.add(codes)
                backlog.append(codes)

    def _relation_of(self, predicate: str, arity: int):
        relation = self.idb.get(predicate)
        if relation is None:
            return self.database.relation(predicate, arity)
        backlog = self.stale[predicate]
        if backlog:
            relation.extend_codes(backlog)
            backlog.clear()
        return relation

    # -- one barrier task ------------------------------------------------
    def run_task(self, task: dict) -> tuple:
        task_started = time.perf_counter()
        task_cpu0 = time.process_time()
        interner = self.interner
        for value in task.get("intern", ()):
            interner.intern(value)
        for pred, n, columns in task.get("updates", ()):
            self._absorb(pred, _rows_of(n, columns))
        if task.get("compile") is not None:
            self._compile(task["compile"])
        aligned = self.aligned

        stats = EvaluationStats()
        plan_results: list[tuple[int, int, int]] = []
        heads: list[tuple[int, int, list[list[int]]]] = []
        plan_ids = task.get("plans") or ()
        if not plan_ids:
            return ("ok", self._reply(plan_results, heads, stats, task_started, task_cpu0))

        deadline = task.get("deadline")
        governor = None
        if deadline is not None:
            # The master's remaining wall-clock slice.  A non-positive
            # slice still constructs a governor: its first tick trips,
            # which is exactly the abort the fleet wants.
            governor = Governor(Budget(timeout=max(deadline, 1e-9)))

        delta_rows: dict[str, list] = {}
        for pred, n, columns in task.get("delta", ()):
            rows = _rows_of(n, columns)
            if aligned is not None:
                # Shipped shards in aligned mode are accepted facts
                # (the exit layer, or a resumed frontier): absorbing
                # them completes this worker's partition of the mirror,
                # which is what makes the local dedup exact.
                self._absorb(pred, rows)
            delta_rows.setdefault(pred, []).extend(rows)
        if aligned is not None and self.frontier:
            for pred, rows in self.frontier.items():
                if rows:
                    delta_rows.setdefault(pred, []).extend(rows)
            self.frontier = {}
        delta = {}
        for pred, rows in delta_rows.items():
            relation = self.database.new_relation(self.program.arity_of(pred))
            relation.extend_codes(rows)
            delta[pred] = relation

        # Workers must never mint codes: every value a plan can produce
        # (head constants included) was pre-interned by the master, so
        # any growth here means the mirrors have diverged.
        expected_values = len(interner)
        try:
            for plan_id in plan_ids:
                plan = self.plans[plan_id]
                delta_relation = delta.get(plan.delta_predicate)
                if delta_relation is None or not len(delta_relation):
                    continue
                rows_before = stats.rows_scanned
                n, cols = plan.run_blocks(
                    self._relation_of,
                    delta_relation,
                    interner,
                    stats,
                    governor=governor,
                )
                plan_results.append(
                    (plan_id, n, stats.rows_scanned - rows_before)
                )
                if not n:
                    continue
                intern = interner.intern
                head_cols = [
                    cols[p] if s else [intern(p)] * n
                    for s, p in plan.head_layout
                ]
                keys = zip(*head_cols) if head_cols else iter([()] * n)
                head_pred = plan.rule.head.predicate
                mirror = self.mirror[head_pred]
                fresh: list[tuple] = []
                if aligned is not None:
                    # This worker owns the head row's partition, so the
                    # mirror check is exact: fresh here means fresh on
                    # the master too.  Accepted rows join the mirror at
                    # once (round-local dedup across plans, like the
                    # sequential engine's immediate IDB insert) and the
                    # frontier (next round's local delta shard).
                    backlog = self.stale[head_pred]
                    front = self.frontier.setdefault(head_pred, [])
                    for codes in keys:
                        if codes in mirror:
                            continue
                        mirror.add(codes)
                        backlog.append(codes)
                        front.append(codes)
                        fresh.append(codes)
                else:
                    shipped = self.shipped[head_pred]
                    for codes in keys:
                        if codes in mirror or codes in shipped:
                            continue
                        shipped.add(codes)
                        fresh.append(codes)
                if fresh:
                    heads.append((plan_id, len(fresh), _columns_of(fresh)))
        except EvaluationAborted as exc:
            reply = self._reply(plan_results, heads, stats, task_started, task_cpu0)
            reply["limit"] = exc.limit or "timeout"
            reply["message"] = str(exc)
            return ("abort", reply)
        if len(interner) != expected_values:
            raise RuntimeError(
                "worker interned "
                f"{len(interner) - expected_values} new value(s) during a "
                "task; master and worker dictionaries have diverged"
            )
        return ("ok", self._reply(plan_results, heads, stats, task_started, task_cpu0))

    @staticmethod
    def _reply(plan_results, heads, stats: EvaluationStats, started: float, cpu0: float) -> dict:
        return {
            "plans": plan_results,
            "heads": heads,
            "elapsed": time.perf_counter() - started,
            "cpu": time.process_time() - cpu0,
            "stats": {
                "probes": stats.probes,
                "env_allocations": stats.env_allocations,
                "block_probes": stats.block_probes,
                "index_builds": stats.index_builds,
                "rows_scanned": stats.rows_scanned,
            },
        }


def worker_main(conn) -> None:
    """The worker process entry point: a warm-then-serve message loop.

    The protocol is strictly synchronous — the master sends one message
    per worker per barrier and then receives one reply per worker — so
    a plain blocking loop over the pipe is deadlock-free.  Task
    messages arrive as ``("task", shared_blob, shard)``: the shared
    part (updates, compile specs, deadline) is pickled once by the
    master and broadcast; only the delta shard differs per worker.
    SIGINT is ignored: on Ctrl-C the master coordinates shutdown by
    closing the pipes (recv raises EOFError and the worker exits).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    state: _WorkerState | None = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            return
        try:
            if kind == "warm":
                state = _WorkerState(message[1])
                conn.send(
                    (
                        "ready",
                        {
                            "index": state.index,
                            "values": len(state.interner),
                            "interner_digest": state.interner.digest(),
                        },
                    )
                )
            elif kind == "task":
                if state is None:
                    raise RuntimeError("task received before warm-start")
                task = pickle.loads(message[1])
                task["delta"] = message[2]
                conn.send(state.run_task(task))
            else:
                raise RuntimeError(f"unknown message kind {kind!r}")
        except Exception:
            try:
                conn.send(("error", {"message": traceback.format_exc()}))
            except (BrokenPipeError, OSError):
                return
