"""Integrity constraints: rules with empty heads (paper, Section 2).

An ic ``:- b1, ..., bn`` forbids any instantiation of its body: a
database *satisfies* a set of ic's when no body can be satisfied by the
EDB facts together with the dense order on the domain.  Bodies contain
EDB atoms (never IDB), optionally negated EDB atoms and order atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..datalog.atoms import Atom, BodyItem, Literal, OrderAtom, body_variables
from ..datalog.database import Database
from ..datalog.evaluation import evaluate
from ..datalog.program import Program
from ..datalog.rules import Rule, UnsafeRuleError, limited_variables
from ..datalog.terms import Constant, Substitution, Variable

__all__ = [
    "IntegrityConstraint",
    "database_satisfies",
    "violations",
    "check_no_idb",
]

_VIOLATION = "__violation__"


@dataclass(frozen=True)
class IntegrityConstraint:
    """An integrity constraint ``:- body.`` (a rule deriving false)."""

    body: tuple[BodyItem, ...]

    def __init__(self, body: Iterable[BodyItem]):
        object.__setattr__(self, "body", tuple(body))
        if not self.body:
            raise ValueError("an integrity constraint needs a nonempty body")
        unlimited = self._must_be_limited() - limited_variables(self.body)
        if unlimited:
            raise UnsafeRuleError(
                f"unsafe integrity constraint {self}: unlimited variables "
                f"{sorted(v.name for v in unlimited)}"
            )

    def _must_be_limited(self) -> set[Variable]:
        needed: set[Variable] = set()
        for item in self.body:
            if isinstance(item, OrderAtom) or (isinstance(item, Literal) and not item.positive):
                needed |= item.variables()
        return needed

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def positive_atoms(self) -> tuple[Atom, ...]:
        """The positive EDB atoms of the body, in declaration order."""
        return tuple(i.atom for i in self.body if isinstance(i, Literal) and i.positive)

    @property
    def negative_atoms(self) -> tuple[Atom, ...]:
        return tuple(i.atom for i in self.body if isinstance(i, Literal) and not i.positive)

    @property
    def order_atoms(self) -> tuple[OrderAtom, ...]:
        return tuple(i for i in self.body if isinstance(i, OrderAtom))

    def variables(self) -> set[Variable]:
        return body_variables(self.body)

    def constants(self) -> set[Constant]:
        consts: set[Constant] = set()
        for item in self.body:
            consts |= item.constants()
        return consts

    def predicates(self) -> set[str]:
        return {i.predicate for i in self.body if isinstance(i, Literal)}

    # ------------------------------------------------------------------
    # Classification (Section 2 notation)
    # ------------------------------------------------------------------
    def has_order_atoms(self) -> bool:
        return bool(self.order_atoms)

    def has_negation(self) -> bool:
        return bool(self.negative_atoms)

    def classification(self) -> frozenset[str]:
        """Class tag: subset of ``{"theta", "not"}``."""
        tags: set[str] = set()
        if self.has_order_atoms():
            tags.add("theta")
        if self.has_negation():
            tags.add("not")
        return frozenset(tags)

    def is_plain(self) -> bool:
        """Neither order atoms nor negated atoms (a plain ic)."""
        return not self.classification()

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def substitute(self, theta: Substitution) -> "IntegrityConstraint":
        return IntegrityConstraint(tuple(item.substitute(theta) for item in self.body))

    def as_rule(self, head_predicate: str = _VIOLATION) -> Rule:
        """The ic as a rule deriving a 0-ary violation flag."""
        return Rule(Atom(head_predicate, ()), self.body)

    def __repr__(self) -> str:
        inner = ", ".join(repr(item) for item in self.body)
        return f":- {inner}."


def check_no_idb(constraints: Sequence[IntegrityConstraint], program: Program) -> None:
    """Enforce the paper's assumption that ic bodies have no IDB predicates."""
    idb = program.idb_predicates
    for ic in constraints:
        bad = ic.predicates() & idb
        if bad:
            raise ValueError(f"integrity constraint {ic} uses IDB predicates {sorted(bad)}")


def violations(ic: IntegrityConstraint, database: Database) -> int:
    """The number of body instantiations of ``ic`` satisfied by ``database``."""
    head_vars = tuple(sorted(ic.variables(), key=lambda v: v.name))
    rule = Rule(Atom(_VIOLATION, head_vars), ic.body)
    program = Program([rule], _VIOLATION)
    result = evaluate(program, database)
    return len(result.relation(_VIOLATION))


def database_satisfies(
    constraints: Sequence[IntegrityConstraint], database: Database
) -> bool:
    """Whether ``database`` is consistent with every constraint."""
    return all(violations(ic, database) == 0 for ic in constraints)
