"""Classical data dependencies as integrity constraints.

The paper's introduction: "Using ic's it is possible to express a
variety of constraints, such as data dependencies (functional
dependencies, multivalued dependencies and inclusion dependencies) as
well as constraints involving comparisons."  This module provides the
standard builders:

* :func:`functional_dependency` — ``A -> B`` on a relation, the exact
  shape of Theorem 5.5 (``:- e(X, Y1, Z1), e(X, Y2, Z2), Z1 != Z2``);
* :func:`inclusion_dependency` — ``r[positions] ⊆ s[positions]`` via a
  negated EDB atom;
* :func:`multivalued_dependency` — ``X ->> Y`` via a negated witness
  atom (the tuple the MVD demands must exist);
* :func:`domain_constraint` — bounds on an attribute;
* :func:`key_constraint` — an FD from a key to every other position;
* :func:`disjointness_constraint` — two relations share no tuples.

Each returns an :class:`IntegrityConstraint` usable with the whole
optimizer stack (note Theorem 5.5: satisfiability w.r.t. fd's alone is
already undecidable for ``{!=}``-programs, so the query-tree pipeline
treats their ``!=`` atoms as non-local and they flow into residue
injection only).
"""

from __future__ import annotations

from typing import Sequence

from ..datalog.atoms import Atom, Literal, OrderAtom
from ..datalog.terms import Constant, Term, Variable
from .integrity import IntegrityConstraint

__all__ = [
    "functional_dependency",
    "key_constraint",
    "inclusion_dependency",
    "multivalued_dependency",
    "domain_constraint",
    "disjointness_constraint",
]


def _vars(prefix: str, arity: int) -> list[Variable]:
    return [Variable(f"{prefix}{i}") for i in range(arity)]


def functional_dependency(
    predicate: str,
    arity: int,
    determinant: Sequence[int],
    dependent: int,
) -> IntegrityConstraint:
    """The fd ``determinant -> dependent`` on ``predicate``.

    Two tuples agreeing on the determinant positions must agree on the
    dependent position: ``:- p(..), p(..), Z1 != Z2`` with the
    determinant variables shared (Theorem 5.5's form).
    """
    if dependent in determinant:
        raise ValueError("the dependent position cannot be part of the determinant")
    _validate_positions(arity, [*determinant, dependent])
    first = _vars("A", arity)
    second = _vars("B", arity)
    for position in determinant:
        second[position] = first[position]
    return IntegrityConstraint(
        (
            Literal(Atom(predicate, tuple(first))),
            Literal(Atom(predicate, tuple(second))),
            OrderAtom(first[dependent], "!=", second[dependent]),
        )
    )


def key_constraint(
    predicate: str, arity: int, key: Sequence[int]
) -> list[IntegrityConstraint]:
    """One fd per non-key position: the key determines the whole tuple."""
    _validate_positions(arity, key)
    return [
        functional_dependency(predicate, arity, key, position)
        for position in range(arity)
        if position not in key
    ]


def inclusion_dependency(
    source: str,
    source_arity: int,
    source_positions: Sequence[int],
    target: str,
    target_arity: int,
    target_positions: Sequence[int],
) -> IntegrityConstraint:
    """``source[source_positions] ⊆ target[target_positions]``.

    Expressed with a negated EDB atom whose non-shared positions are
    covered by... Datalog safety requires every variable of the negated
    atom to be bound, so the target's other positions must be
    existential — the standard ic encoding uses the *full-width* target
    only when ``target_positions`` covers it.  For partial-width
    inclusions, project the target into a dedicated predicate first (as
    deductive databases do); this builder enforces full coverage.
    """
    _validate_positions(source_arity, source_positions)
    _validate_positions(target_arity, target_positions)
    if len(source_positions) != len(target_positions):
        raise ValueError("position lists must have equal length")
    if len(set(target_positions)) != target_arity:
        raise ValueError(
            "inclusion dependencies need the target positions to cover the "
            "target relation (project it into a helper predicate otherwise)"
        )
    source_vars = _vars("S", source_arity)
    target_vars: list[Term] = [Variable(f"T{i}") for i in range(target_arity)]
    for s_pos, t_pos in zip(source_positions, target_positions):
        target_vars[t_pos] = source_vars[s_pos]
    return IntegrityConstraint(
        (
            Literal(Atom(source, tuple(source_vars))),
            Literal(Atom(target, tuple(target_vars)), positive=False),
        )
    )


def multivalued_dependency(
    predicate: str,
    arity: int,
    determinant: Sequence[int],
    dependent: Sequence[int],
) -> IntegrityConstraint:
    """The mvd ``determinant ->> dependent``.

    For any two tuples agreeing on the determinant, the swap tuple
    (dependent values from the first, the rest from the second) must be
    present — enforced by a negated EDB atom.
    """
    _validate_positions(arity, [*determinant, *dependent])
    if set(determinant) & set(dependent):
        raise ValueError("determinant and dependent positions must be disjoint")
    first = _vars("A", arity)
    second = _vars("B", arity)
    for position in determinant:
        second[position] = first[position]
    witness: list[Term] = []
    for position in range(arity):
        if position in determinant or position in dependent:
            witness.append(first[position])
        else:
            witness.append(second[position])
    return IntegrityConstraint(
        (
            Literal(Atom(predicate, tuple(first))),
            Literal(Atom(predicate, tuple(second))),
            Literal(Atom(predicate, tuple(witness)), positive=False),
        )
    )


def domain_constraint(
    predicate: str,
    arity: int,
    position: int,
    *,
    lower: object | None = None,
    upper: object | None = None,
    strict_lower: bool = False,
    strict_upper: bool = False,
) -> list[IntegrityConstraint]:
    """Bounds on one attribute: violations are values outside [lower, upper]."""
    _validate_positions(arity, [position])
    if lower is None and upper is None:
        raise ValueError("at least one bound is required")
    variables = _vars("X", arity)
    constraints: list[IntegrityConstraint] = []
    if lower is not None:
        op = "<=" if strict_lower else "<"
        constraints.append(
            IntegrityConstraint(
                (
                    Literal(Atom(predicate, tuple(variables))),
                    OrderAtom(variables[position], op, Constant(lower)),
                )
            )
        )
    if upper is not None:
        op = ">=" if strict_upper else ">"
        constraints.append(
            IntegrityConstraint(
                (
                    Literal(Atom(predicate, tuple(variables))),
                    OrderAtom(variables[position], op, Constant(upper)),
                )
            )
        )
    return constraints


def disjointness_constraint(
    first: str, second: str, arity: int
) -> IntegrityConstraint:
    """No tuple belongs to both relations."""
    variables = _vars("X", arity)
    return IntegrityConstraint(
        (
            Literal(Atom(first, tuple(variables))),
            Literal(Atom(second, tuple(variables))),
        )
    )


def _validate_positions(arity: int, positions: Sequence[int]) -> None:
    for position in positions:
        if not 0 <= position < arity:
            raise ValueError(f"position {position} out of range for arity {arity}")
