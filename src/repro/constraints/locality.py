"""Locality of order atoms and negated atoms inside ic's (paper, Section 2).

An order atom (or negated EDB atom) ``A`` in the body of an ic is
*local* when at least one positive EDB atom of the body contains all of
``A``'s variables.  The decidability frontier of the paper runs exactly
along this line: the Section 4.2 algorithm handles ic's whose order and
negated atoms are all local, while non-local atoms make satisfiability
(and hence complete semantic query optimization) undecidable
(Theorems 5.3-5.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from ..datalog.atoms import Atom, Literal, OrderAtom
from .integrity import IntegrityConstraint

__all__ = [
    "LocalAtom",
    "is_local",
    "local_atoms",
    "nonlocal_atoms",
    "is_fully_local",
    "anchor_candidates",
    "choose_anchor",
]

#: A local atom is an order atom or a (positive rendering of a) negated EDB atom.
LocalAtomBody = Union[OrderAtom, Atom]


@dataclass(frozen=True)
class LocalAtom:
    """A local atom ``l`` paired with its anchoring EDB atom ``a``.

    Section 4.2 "associates each local atom l with one EDB atom a (from
    the same ic) such that a includes all the variables of l" and then
    works with the pair ``(a, l)``.  ``is_order`` distinguishes order
    atoms from negated EDB atoms (whose ``atom`` field stores the
    positive form).
    """

    anchor: Atom
    atom: LocalAtomBody
    is_order: bool

    def __repr__(self) -> str:
        rendered = repr(self.atom) if self.is_order else f"not {self.atom!r}"
        return f"({self.anchor!r}, {rendered})"


def _candidate_atoms(ic: IntegrityConstraint) -> list[tuple[LocalAtomBody, bool]]:
    """The order atoms and negated atoms of the ic, tagged by kind."""
    found: list[tuple[LocalAtomBody, bool]] = []
    for item in ic.body:
        if isinstance(item, OrderAtom):
            found.append((item, True))
        elif isinstance(item, Literal) and not item.positive:
            found.append((item.atom, False))
    return found


def anchor_candidates(ic: IntegrityConstraint, atom: LocalAtomBody) -> list[Atom]:
    """Positive EDB atoms of the ic containing all variables of ``atom``."""
    needed = atom.variables()
    return [
        positive for positive in ic.positive_atoms if needed <= positive.variables()
    ]


def is_local(ic: IntegrityConstraint, atom: LocalAtomBody) -> bool:
    """Whether ``atom`` is local within ``ic``."""
    return bool(anchor_candidates(ic, atom))


def choose_anchor(ic: IntegrityConstraint, atom: LocalAtomBody) -> Atom:
    """Deterministically pick the anchoring EDB atom for a local atom.

    The first candidate in body order is chosen, which keeps rewrites
    stable across runs.
    """
    candidates = anchor_candidates(ic, atom)
    if not candidates:
        raise ValueError(f"atom {atom} is not local in {ic}")
    return candidates[0]


def local_atoms(ic: IntegrityConstraint) -> list[LocalAtom]:
    """All local atoms of the ic, paired with their anchors."""
    pairs: list[LocalAtom] = []
    for atom, is_order in _candidate_atoms(ic):
        if is_local(ic, atom):
            pairs.append(LocalAtom(choose_anchor(ic, atom), atom, is_order))
    return pairs


def nonlocal_atoms(ic: IntegrityConstraint) -> list[LocalAtomBody]:
    """Order/negated atoms of the ic that are *not* local."""
    return [atom for atom, _ in _candidate_atoms(ic) if not is_local(ic, atom)]


def is_fully_local(ic: IntegrityConstraint) -> bool:
    """Whether every order and negated atom of the ic is local.

    Plain ic's are trivially fully local.
    """
    return not nonlocal_atoms(ic)


def all_fully_local(constraints: Iterable[IntegrityConstraint]) -> bool:
    """Whether every ic in the collection is fully local."""
    return all(is_fully_local(ic) for ic in constraints)
