"""Integrity constraints, dense-order reasoning and locality analysis."""

from .dense_order import OrderConstraintSet, UnsatisfiableError
from .dependencies import (
    disjointness_constraint,
    domain_constraint,
    functional_dependency,
    inclusion_dependency,
    key_constraint,
    multivalued_dependency,
)
from .integrity import (
    IntegrityConstraint,
    check_no_idb,
    database_satisfies,
    violations,
)
from .locality import (
    LocalAtom,
    all_fully_local,
    anchor_candidates,
    choose_anchor,
    is_fully_local,
    is_local,
    local_atoms,
    nonlocal_atoms,
)

__all__ = [
    "OrderConstraintSet",
    "UnsatisfiableError",
    "disjointness_constraint",
    "domain_constraint",
    "functional_dependency",
    "inclusion_dependency",
    "key_constraint",
    "multivalued_dependency",
    "IntegrityConstraint",
    "check_no_idb",
    "database_satisfies",
    "violations",
    "LocalAtom",
    "all_fully_local",
    "anchor_candidates",
    "choose_anchor",
    "is_fully_local",
    "is_local",
    "local_atoms",
    "nonlocal_atoms",
]
