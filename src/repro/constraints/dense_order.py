"""Decision procedures for conjunctions of dense-order atoms.

The paper's order atoms ``gamma theta delta`` (Section 2) are interpreted
over a dense total order without endpoints.  This module provides, for a
conjunction of such atoms over variables and constants:

* :meth:`OrderConstraintSet.is_satisfiable` — exact satisfiability,
* :meth:`OrderConstraintSet.entails` — exact entailment (by refutation),
* :meth:`OrderConstraintSet.implied_equalities` — the partition of terms
  forced equal (used to substitute ``X`` for ``Y`` whenever the order
  atoms of a rule imply ``X = Y``, as the algorithm of Section 4.1
  assumes),
* :meth:`OrderConstraintSet.model` — a satisfying assignment of rational
  values to variables (used to instantiate symbolic derivations and to
  build canonical databases),
* :meth:`OrderConstraintSet.project` — the strongest entailed atoms over
  a given set of terms (used by order-constraint propagation).

The algorithm is the classic one: merge ``=`` classes with union-find,
build the strict/weak inequality digraph (with the true order among the
constants added), condense to strongly connected components, and declare
unsatisfiability exactly when an SCC contains a strict edge or the two
sides of a ``!=`` atom.  Over dense orders without endpoints this test
is sound and complete.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Sequence

from ..datalog.atoms import OrderAtom, evaluate_comparison
from ..datalog.terms import Constant, Term, Variable
from ..robustness.errors import ReproError

__all__ = ["OrderConstraintSet", "UnsatisfiableError"]


class UnsatisfiableError(ReproError, ValueError):
    """Raised by operations that require a satisfiable constraint set."""


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float, Fraction)) and not isinstance(value, bool)


class _Structure:
    """The condensed constraint structure shared by all queries."""

    __slots__ = (
        "terms",
        "class_of",
        "classes",
        "edges",
        "neq_pairs",
        "satisfiable",
        "scc_of",
        "scc_members",
    )

    def __init__(self, atoms: Sequence[OrderAtom]):
        self.terms: list[Term] = []
        seen: set[Term] = set()
        for atom in atoms:
            for term in (atom.left, atom.right):
                if term not in seen:
                    seen.add(term)
                    self.terms.append(term)
        parent: dict[Term, Term] = {t: t for t in self.terms}

        def find(term: Term) -> Term:
            root = term
            while parent[root] != root:
                root = parent[root]
            while parent[term] != term:
                parent[term], term = root, parent[term]
            return root

        def union(a: Term, b: Term) -> None:
            ra, rb = find(a), find(b)
            if ra == rb:
                return
            # Prefer constants as representatives.
            if isinstance(ra, Constant):
                parent[rb] = ra
            else:
                parent[ra] = rb

        satisfiable = True
        for atom in atoms:
            if atom.op == "=":
                left, right = atom.left, atom.right
                if isinstance(left, Constant) and isinstance(right, Constant):
                    if left.value != right.value:
                        satisfiable = False
                union(left, right)
        # Detect a class holding two constants with different values.
        const_of_class: dict[Term, Constant] = {}
        for term in self.terms:
            if isinstance(term, Constant):
                root = find(term)
                existing = const_of_class.get(root)
                if existing is not None and existing.value != term.value:
                    satisfiable = False
                const_of_class.setdefault(root, term)

        self.class_of = {t: find(t) for t in self.terms}
        self.classes = sorted({find(t) for t in self.terms}, key=str)
        self.edges: set[tuple[Term, Term, bool]] = set()  # (src, dst, strict)
        self.neq_pairs: set[frozenset[Term]] = set()
        for atom in atoms:
            op, left, right = atom.op, find(atom.left), find(atom.right)
            if op in (">", ">="):
                op = "<" if op == ">" else "<="
                left, right = right, left
            if op == "<":
                self.edges.add((left, right, True))
            elif op == "<=":
                self.edges.add((left, right, False))
            elif op == "!=":
                if left == right:
                    satisfiable = False
                self.neq_pairs.add(frozenset((left, right)))
        # Add the true order among comparable constant classes.
        const_classes = [c for c in self.classes if c in const_of_class]
        for i, ca in enumerate(const_classes):
            for cb in const_classes[i + 1:]:
                va, vb = const_of_class[ca].value, const_of_class[cb].value
                if _is_numeric(va) == _is_numeric(vb):
                    if evaluate_comparison(va, vb, "<"):
                        self.edges.add((ca, cb, True))
                    elif evaluate_comparison(vb, va, "<"):
                        self.edges.add((cb, ca, True))
                    # equal constant values in distinct classes cannot
                    # happen: they were unioned above
                else:
                    # Different families: distinct domain elements.
                    self.neq_pairs.add(frozenset((ca, cb)))

        self.scc_of, components = _condense(self.classes, self.edges)
        self.scc_members = components
        if satisfiable:
            for src, dst, strict in self.edges:
                if strict and self.scc_of[src] == self.scc_of[dst]:
                    satisfiable = False
                    break
        if satisfiable:
            for pair in self.neq_pairs:
                items = tuple(pair)
                first = items[0]
                second = items[1] if len(items) == 2 else items[0]
                if self.scc_of[first] == self.scc_of[second]:
                    satisfiable = False
                    break
        self.satisfiable = satisfiable


def _condense(
    nodes: Sequence[Term], edges: set[tuple[Term, Term, bool]]
) -> tuple[dict[Term, int], list[list[Term]]]:
    """Tarjan SCC condensation; returns (node -> scc id, components in reverse topo order)."""
    adjacency: dict[Term, list[Term]] = {n: [] for n in nodes}
    for src, dst, _ in edges:
        adjacency[src].append(dst)
    index: dict[Term, int] = {}
    low: dict[Term, int] = {}
    on_stack: set[Term] = set()
    stack: list[Term] = []
    counter = [0]
    scc_of: dict[Term, int] = {}
    components: list[list[Term]] = []

    for start in nodes:
        if start in index:
            continue
        work: list[tuple[Term, Iterator[Term]]] = [(start, iter(adjacency[start]))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                low[work[-1][0]] = min(low[work[-1][0]], low[node])
            if low[node] == index[node]:
                component: list[Term] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc_of[member] = len(components)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return scc_of, components


class OrderConstraintSet:
    """An immutable conjunction of dense-order atoms with decision procedures."""

    __slots__ = ("atoms", "_structure")

    def __init__(self, atoms: Iterable[OrderAtom] = ()):
        self.atoms: tuple[OrderAtom, ...] = tuple(atoms)
        self._structure: _Structure | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def with_atoms(self, more: Iterable[OrderAtom]) -> "OrderConstraintSet":
        return OrderConstraintSet(self.atoms + tuple(more))

    def __repr__(self) -> str:
        return "{" + ", ".join(repr(a) for a in self.atoms) + "}"

    def _struct(self) -> _Structure:
        if self._structure is None:
            self._structure = _Structure(self.atoms)
        return self._structure

    # ------------------------------------------------------------------
    # Decision procedures
    # ------------------------------------------------------------------
    def is_satisfiable(self) -> bool:
        """Exact satisfiability over a dense total order without endpoints."""
        return self._struct().satisfiable

    def entails(self, atom: OrderAtom) -> bool:
        """Exact entailment, decided by refutation.

        ``C |= a`` iff ``C and not a`` is unsatisfiable.  An unsatisfiable
        set entails everything.
        """
        if not self.is_satisfiable():
            return True
        return not self.with_atoms([atom.negated()]).is_satisfiable()

    def implied_equalities(self) -> list[frozenset[Term]]:
        """Groups of terms forced equal (size >= 2 groups only).

        Raises :class:`UnsatisfiableError` on an unsatisfiable set, where
        "forced equal" is vacuous.
        """
        structure = self._struct()
        if not structure.satisfiable:
            raise UnsatisfiableError("constraint set is unsatisfiable")
        groups: dict[int, set[Term]] = {}
        for term in structure.terms:
            root = structure.class_of[term]
            groups.setdefault(structure.scc_of[root], set()).add(term)
        return [frozenset(g) for g in groups.values() if len(g) >= 2]

    def equality_substitution(self) -> dict[Variable, Term]:
        """A substitution realizing the implied equalities.

        Each forced-equal group maps its variables to the group's
        constant if it has one, otherwise to the lexicographically first
        variable.  Applying it to a rule performs the paper's "substitute
        X for Y whenever the order atoms imply X = Y" preprocessing step.
        """
        mapping: dict[Variable, Term] = {}
        for group in self.implied_equalities():
            constants = sorted((t for t in group if isinstance(t, Constant)), key=str)
            variables = sorted((t for t in group if isinstance(t, Variable)), key=lambda v: v.name)
            representative: Term = constants[0] if constants else variables[0]
            for var in variables:
                if var != representative:
                    mapping[var] = representative
        return mapping

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------
    def model(self) -> dict[Variable, object] | None:
        """A satisfying assignment, or ``None`` when unsatisfiable.

        Variables constrained only through ``=``/``!=`` with string
        constants receive those strings; all other variables receive
        :class:`fractions.Fraction` values.  All weak edges are
        strengthened to strict ones (always possible on a dense order
        once forced equalities are merged), which also discharges every
        ``!=`` atom.
        """
        structure = self._struct()
        if not structure.satisfiable:
            return None
        scc_count = len(structure.scc_members)
        # Value per SCC.  SCCs holding a constant are pinned to it.
        pinned: dict[int, object] = {}
        for component in range(scc_count):
            for member in structure.scc_members[component]:
                if isinstance(member, Constant):
                    pinned[component] = member.value
        # Build the SCC DAG.
        successors: dict[int, set[int]] = {i: set() for i in range(scc_count)}
        predecessors: dict[int, set[int]] = {i: set() for i in range(scc_count)}
        for src, dst, _ in structure.edges:
            a, b = structure.scc_of[src], structure.scc_of[dst]
            if a != b:
                successors[a].add(b)
                predecessors[b].add(a)
        # Order edges through non-numeric constants would need a merged
        # order over mixed families; restrict models to the numeric case.
        for src, dst, _ in structure.edges:
            for end in (src, dst):
                node = structure.scc_of[end]
                value = pinned.get(node)
                if value is not None and not _is_numeric(value):
                    raise NotImplementedError(
                        "model() supports non-numeric constants only in =/!= atoms"
                    )
        # scc ids from Tarjan come in reverse topological order.
        topo_order = list(reversed(range(scc_count)))
        # Upper bounds: the least pinned numeric value reachable from each SCC.
        upper: dict[int, Fraction | None] = {i: None for i in range(scc_count)}
        for node in reversed(topo_order):
            bound = None
            value = pinned.get(node)
            if value is not None and _is_numeric(value):
                bound = Fraction(value)
            for succ in successors[node]:
                succ_bound = upper[succ]
                if succ_bound is not None and (bound is None or succ_bound < bound):
                    bound = succ_bound
            upper[node] = bound
        # Assign each class a value strictly above all its predecessors and
        # strictly below its least pinned upper bound, avoiding every value
        # already taken (all weak edges were strengthened to strict after
        # condensation, which also discharges the != atoms).  The interval
        # is nonempty because strict cycles were excluded, and density
        # guarantees room around the finitely many forbidden points.
        values: dict[int, object] = {}
        taken: set[Fraction] = {
            Fraction(p) for p in pinned.values() if _is_numeric(p)
        }
        for node in topo_order:
            if node in pinned:
                values[node] = pinned[node]
                continue
            lower: Fraction | None = None
            for pred in predecessors[node]:
                pred_value = values.get(pred)
                if pred_value is not None and _is_numeric(pred_value):
                    candidate = Fraction(pred_value)
                    if lower is None or candidate > lower:
                        lower = candidate
            hi = upper[node]
            if lower is None and hi is None:
                value = Fraction(0)
            elif lower is None:
                value = hi - 1  # type: ignore[operand-type]
            elif hi is None:
                value = lower + 1
            else:
                value = (lower + hi) / 2
            while value in taken:
                if hi is None:
                    value += 1
                else:
                    value = (value + hi) / 2
            taken.add(value)
            values[node] = value
        assignment: dict[Variable, object] = {}
        for term in structure.terms:
            if isinstance(term, Variable):
                node = structure.scc_of[structure.class_of[term]]
                assignment[term] = values[node]
        return assignment

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def project(self, terms: Sequence[Term]) -> frozenset[OrderAtom]:
        """The strongest entailed atoms among ``terms`` (canonical form).

        For every unordered pair the single strongest relation is
        emitted: ``=`` beats ``<`` beats ``<=``/``!=`` (the latter two
        can co-occur only as ``<``).  The result uses normalized
        orientation so syntactic comparisons of projections are stable.
        """
        if not self.is_satisfiable():
            raise UnsatisfiableError("projection of an unsatisfiable set is undefined")
        entailed: set[OrderAtom] = set()
        items = list(dict.fromkeys(terms))
        for i, left in enumerate(items):
            for right in items[i + 1:]:
                if left == right:
                    continue
                if self.entails(OrderAtom(left, "=", right)):
                    entailed.add(OrderAtom(left, "=", right).normalized())
                    continue
                if self.entails(OrderAtom(left, "<", right)):
                    entailed.add(OrderAtom(left, "<", right).normalized())
                elif self.entails(OrderAtom(right, "<", left)):
                    entailed.add(OrderAtom(right, "<", left).normalized())
                else:
                    if self.entails(OrderAtom(left, "<=", right)):
                        entailed.add(OrderAtom(left, "<=", right).normalized())
                    elif self.entails(OrderAtom(right, "<=", left)):
                        entailed.add(OrderAtom(right, "<=", left).normalized())
                    if self.entails(OrderAtom(left, "!=", right)):
                        entailed.add(OrderAtom(left, "!=", right).normalized())
        return frozenset(entailed)
