"""Homomorphism search between sets of atoms.

A homomorphism maps the variables of a *source* atom set to terms of a
*target* atom set so that every source atom lands on some target atom.
Target variables are treated as (frozen) constants — the standard
canonical-database view.  This is the workhorse behind:

* residue computation (partial mappings of an ic into a rule body),
* conjunctive-query containment,
* the complete-mapping test that detects unsatisfiable rules.

The search is backtracking with target atoms indexed by predicate, most
constrained source atom first.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..datalog.atoms import Atom
from ..datalog.terms import Constant, Substitution, Term, Variable

__all__ = [
    "find_homomorphism",
    "all_homomorphisms",
    "extend_homomorphism",
    "homomorphism_exists",
]


def _match_into(
    source: Atom, target: Atom, binding: dict[Variable, Term]
) -> dict[Variable, Term] | None:
    """Try to map ``source`` onto ``target`` extending ``binding``.

    Source constants must match target terms exactly; source variables
    bind to target terms (variables of the target are frozen names).
    """
    if source.predicate != target.predicate or source.arity != target.arity:
        return None
    extended = dict(binding)
    for s_arg, t_arg in zip(source.args, target.args):
        if isinstance(s_arg, Constant):
            if s_arg != t_arg:
                return None
        else:
            bound = extended.get(s_arg)
            if bound is None:
                extended[s_arg] = t_arg
            elif bound != t_arg:
                return None
    return extended


def extend_homomorphism(
    source_atoms: Sequence[Atom],
    target_atoms: Sequence[Atom],
    initial: Mapping[Variable, Term] | None = None,
) -> Iterator[Substitution]:
    """Yield every homomorphism of ``source_atoms`` into ``target_atoms``.

    ``initial`` pre-binds some source variables.  Yielded substitutions
    cover exactly the variables of the source atoms plus the initial
    bindings.  The same target atom may serve several source atoms.
    """
    by_predicate: dict[str, list[Atom]] = {}
    for atom in target_atoms:
        by_predicate.setdefault(atom.predicate, []).append(atom)
    # Most-constrained-first: fewer candidate targets first, ties by
    # arity descending so joins bind more variables early.
    ordered = sorted(
        source_atoms,
        key=lambda a: (len(by_predicate.get(a.predicate, ())), -a.arity),
    )

    def search(index: int, binding: dict[Variable, Term]) -> Iterator[dict[Variable, Term]]:
        if index == len(ordered):
            yield binding
            return
        atom = ordered[index]
        for target in by_predicate.get(atom.predicate, ()):
            extended = _match_into(atom, target, binding)
            if extended is not None:
                yield from search(index + 1, extended)

    start = dict(initial) if initial else {}
    for result in search(0, start):
        yield Substitution(result)


def find_homomorphism(
    source_atoms: Sequence[Atom],
    target_atoms: Sequence[Atom],
    initial: Mapping[Variable, Term] | None = None,
) -> Substitution | None:
    """The first homomorphism found, or ``None``."""
    for hom in extend_homomorphism(source_atoms, target_atoms, initial):
        return hom
    return None


def all_homomorphisms(
    source_atoms: Sequence[Atom],
    target_atoms: Sequence[Atom],
    initial: Mapping[Variable, Term] | None = None,
) -> list[Substitution]:
    """All homomorphisms, materialized (deduplicated)."""
    seen: set[Substitution] = set()
    result: list[Substitution] = []
    for hom in extend_homomorphism(source_atoms, target_atoms, initial):
        if hom not in seen:
            seen.add(hom)
            result.append(hom)
    return result


def homomorphism_exists(
    source_atoms: Iterable[Atom],
    target_atoms: Sequence[Atom],
    initial: Mapping[Variable, Term] | None = None,
) -> bool:
    """Whether any homomorphism exists."""
    return find_homomorphism(list(source_atoms), target_atoms, initial) is not None
