"""Conjunctive queries: homomorphisms, containment, minimization."""

from .conjunctive import ConjunctiveQuery, FrozenBody, UnionOfConjunctiveQueries
from .containment import (
    ContainmentTooLargeError,
    cq_contained,
    cq_contained_in_union,
    cq_equivalent,
    ucq_contained,
)
from .homomorphism import (
    all_homomorphisms,
    extend_homomorphism,
    find_homomorphism,
    homomorphism_exists,
)
from .minimize import is_minimal, minimize_cq

__all__ = [
    "ConjunctiveQuery",
    "FrozenBody",
    "UnionOfConjunctiveQueries",
    "ContainmentTooLargeError",
    "cq_contained",
    "cq_contained_in_union",
    "cq_equivalent",
    "ucq_contained",
    "all_homomorphisms",
    "extend_homomorphism",
    "find_homomorphism",
    "homomorphism_exists",
    "is_minimal",
    "minimize_cq",
]
