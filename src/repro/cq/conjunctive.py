"""Conjunctive queries and unions of conjunctive queries.

A :class:`ConjunctiveQuery` is a single nonrecursive rule (select-
project-join); a :class:`UnionOfConjunctiveQueries` is a finite set of
CQs sharing one head predicate.  Queries may carry order atoms and
negated EDB atoms, matching the classes the paper's Section 5 relates
to satisfiability.

Canonical databases (*freezing*) are produced here: variables become
fresh constants, optionally after merging variables according to a
partition — the ingredient of the containment tests in
:mod:`repro.cq.containment`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..datalog.atoms import Atom, BodyItem, Literal, OrderAtom
from ..datalog.database import Database, Row
from ..datalog.evaluation import evaluate
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Substitution, Term, Variable

__all__ = ["ConjunctiveQuery", "UnionOfConjunctiveQueries", "FrozenBody"]


@dataclass(frozen=True)
class FrozenBody:
    """The result of freezing a CQ body under a substitution.

    ``database`` holds the frozen positive atoms; ``forbidden`` the
    frozen negated atoms (facts that must stay absent); ``order_atoms``
    the ground order atoms that the freezing must satisfy; ``head_row``
    the frozen head tuple.
    """

    database: Database
    forbidden: tuple[Atom, ...]
    order_atoms: tuple[OrderAtom, ...]
    head_row: Row
    assignment: Substitution


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``head :- body`` (nonrecursive, single rule)."""

    head: Atom
    body: tuple[BodyItem, ...]

    def __init__(self, head: Atom, body: Iterable[BodyItem]):
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))

    @classmethod
    def from_rule(cls, rule: Rule) -> "ConjunctiveQuery":
        return cls(rule.head, rule.body)

    def as_rule(self) -> Rule:
        return Rule(self.head, self.body)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def positive_atoms(self) -> tuple[Atom, ...]:
        return tuple(i.atom for i in self.body if isinstance(i, Literal) and i.positive)

    @property
    def negative_atoms(self) -> tuple[Atom, ...]:
        return tuple(i.atom for i in self.body if isinstance(i, Literal) and not i.positive)

    @property
    def order_atoms(self) -> tuple[OrderAtom, ...]:
        return tuple(i for i in self.body if isinstance(i, OrderAtom))

    def variables(self) -> set[Variable]:
        variables = set(self.head.variables())
        for item in self.body:
            variables |= item.variables()
        return variables

    def terms(self) -> list[Term]:
        """All distinct terms of the query, in first-occurrence order."""
        ordered: list[Term] = []
        seen: set[Term] = set()
        for atom in (self.head, *self.positive_atoms, *self.negative_atoms):
            for term in atom.args:
                if term not in seen:
                    seen.add(term)
                    ordered.append(term)
        for order_atom in self.order_atoms:
            for term in (order_atom.left, order_atom.right):
                if term not in seen:
                    seen.add(term)
                    ordered.append(term)
        return ordered

    def classification(self) -> frozenset[str]:
        tags: set[str] = set()
        if self.order_atoms:
            tags.add("theta")
        if self.negative_atoms:
            tags.add("not")
        return frozenset(tags)

    def is_plain(self) -> bool:
        return not self.classification()

    def substitute(self, theta: Substitution) -> "ConjunctiveQuery":
        return ConjunctiveQuery(
            self.head.substitute(theta),
            tuple(item.substitute(theta) for item in self.body),
        )

    # ------------------------------------------------------------------
    # Evaluation and freezing
    # ------------------------------------------------------------------
    def answers(self, database: Database) -> frozenset[Row]:
        """Evaluate the CQ over a database."""
        program = Program([self.as_rule()], self.head.predicate)
        return evaluate(program, database).query_rows()

    def freeze(self, merge: Substitution | None = None) -> FrozenBody | None:
        """Freeze the body into a canonical database.

        ``merge`` optionally pre-identifies variables (a variable
        partition).  Remaining variables become fresh symbolic constants
        ``_c0, _c1, ...``.  Returns ``None`` when the freezing is
        internally inconsistent: a frozen negated atom coincides with a
        frozen positive atom (an atom would appear both positively and
        negatively), or constants clash under ``merge``.  Ground order
        atoms are *not* checked here (symbolic freeze constants carry no
        order); callers handling order atoms use
        :class:`~repro.constraints.dense_order.OrderConstraintSet`
        directly.
        """
        query = self.substitute(merge) if merge is not None else self
        mapping: dict[Variable, Term] = {}
        counter = itertools.count()
        for var in sorted(query.variables(), key=lambda v: v.name):
            mapping[var] = Constant(f"_c{next(counter)}")
        theta = Substitution(mapping)
        positives = [a.substitute(theta) for a in query.positive_atoms]
        negatives = [a.substitute(theta) for a in query.negative_atoms]
        if set(positives) & set(negatives):
            return None
        database = Database(positives)
        head = query.head.substitute(theta)
        if not head.is_ground():
            return None
        head_row = tuple(arg.value for arg in head.args)  # type: ignore[union-attr]
        order_atoms = tuple(a.substitute(theta) for a in query.order_atoms)
        return FrozenBody(database, tuple(negatives), order_atoms, head_row, theta)

    def __repr__(self) -> str:
        inner = ", ".join(repr(item) for item in self.body)
        return f"{self.head!r} :- {inner}."


@dataclass(frozen=True)
class UnionOfConjunctiveQueries:
    """A union of CQs over one head predicate."""

    queries: tuple[ConjunctiveQuery, ...]

    def __init__(self, queries: Iterable[ConjunctiveQuery]):
        queries = tuple(queries)
        if not queries:
            raise ValueError("a union of conjunctive queries needs at least one CQ")
        heads = {(q.head.predicate, q.head.arity) for q in queries}
        if len(heads) != 1:
            raise ValueError(f"mismatched heads in union: {sorted(heads)}")
        object.__setattr__(self, "queries", queries)

    @property
    def head_predicate(self) -> str:
        return self.queries[0].head.predicate

    @property
    def head_arity(self) -> int:
        return self.queries[0].head.arity

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def answers(self, database: Database) -> frozenset[Row]:
        rows: set[Row] = set()
        for query in self.queries:
            rows |= query.answers(database)
        return frozenset(rows)

    def classification(self) -> frozenset[str]:
        tags: set[str] = set()
        for query in self.queries:
            tags |= query.classification()
        return frozenset(tags)

    def __repr__(self) -> str:
        return "\n".join(repr(q) for q in self.queries)
