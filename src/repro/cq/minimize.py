"""Minimization of conjunctive queries.

For plain CQs the minimal equivalent query is the *core*: repeatedly
drop a positive atom and keep the reduction whenever the smaller query
is still equivalent.  For CQs with order atoms or negation the same
greedy loop runs on top of the exact (exponential) containment test of
:mod:`repro.cq.containment`; the result is subset-minimal though not
necessarily a core in the classical sense.
"""

from __future__ import annotations

from ..datalog.atoms import Literal
from .conjunctive import ConjunctiveQuery
from .containment import cq_equivalent

__all__ = ["minimize_cq", "is_minimal"]


def _without_atom(query: ConjunctiveQuery, index: int) -> ConjunctiveQuery | None:
    """Drop the ``index``-th positive literal; None when that breaks safety."""
    positives = [
        (i, item)
        for i, item in enumerate(query.body)
        if isinstance(item, Literal) and item.positive
    ]
    drop_position = positives[index][0]
    body = tuple(item for i, item in enumerate(query.body) if i != drop_position)
    reduced = ConjunctiveQuery(query.head, body)
    remaining_vars = set()
    for item in body:
        if isinstance(item, Literal) and item.positive:
            remaining_vars |= item.variables()
    needed = set(query.head.variables())
    for item in body:
        if isinstance(item, Literal) and not item.positive:
            needed |= item.variables()
        elif not isinstance(item, Literal):
            needed |= item.variables()
    if not needed <= remaining_vars:
        return None
    return reduced


def minimize_cq(query: ConjunctiveQuery, *, max_terms: int = 10) -> ConjunctiveQuery:
    """A subset-minimal CQ equivalent to ``query``.

    Greedy: repeatedly remove one positive atom while equivalence holds.
    For plain CQs this computes the core (up to isomorphism).
    """
    current = query
    progress = True
    while progress:
        progress = False
        count = len(current.positive_atoms)
        for index in range(count):
            candidate = _without_atom(current, index)
            if candidate is None:
                continue
            if cq_equivalent(current, candidate, max_terms=max_terms):
                current = candidate
                progress = True
                break
    return current


def is_minimal(query: ConjunctiveQuery, *, max_terms: int = 10) -> bool:
    """Whether no positive atom can be dropped without changing the query."""
    return len(minimize_cq(query, max_terms=max_terms).positive_atoms) == len(
        query.positive_atoms
    )
