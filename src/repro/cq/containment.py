"""Containment of (unions of) conjunctive queries.

Three regimes, matching the paper's Section 5 complexity landscape:

* **plain** CQs (no order atoms, no negation): the classic NP test —
  ``q ⊑ ∪ Qi`` iff some ``Qi`` maps homomorphically into ``q`` with the
  heads aligned [SY81];
* **order atoms** present: the Klug-style case analysis — enumerate the
  ordered partitions (linearizations) of the terms of ``q`` consistent
  with the real order of the constants, and require that each
  linearization satisfying ``q``'s order atoms admits some ``Qi`` whose
  order atoms are entailed by it (Pi2p) [Klu88];
* **negated EDB atoms** in the right-hand side: additionally enumerate
  the databases over the canonical domain that extend ``q``'s frozen
  positive body with facts over the predicates occurring negatively in
  the right-hand side (the countermodel may need extra facts exactly to
  block a negated subgoal) [LS93].

All three are exact on their fragments; the general procedure is
exponential by necessity.  :class:`ContainmentTooLargeError` guards
against blow-ups beyond ``max_terms``.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from ..datalog.atoms import Atom, OrderAtom
from ..datalog.terms import Constant, Term, Variable
from .configurations import Config, freeze_atoms, linearizations, partitions
from .conjunctive import ConjunctiveQuery, UnionOfConjunctiveQueries
from .homomorphism import extend_homomorphism
from ..robustness.errors import ReproError

__all__ = [
    "cq_contained",
    "cq_contained_in_union",
    "ucq_contained",
    "cq_equivalent",
    "ContainmentTooLargeError",
]


class ContainmentTooLargeError(ReproError, ValueError):
    """The case analysis would exceed the configured size bound."""


# ----------------------------------------------------------------------
# Fast path: plain conjunctive queries
# ----------------------------------------------------------------------
def _plain_contained_in(query: ConjunctiveQuery, candidate: ConjunctiveQuery) -> bool:
    """``query ⊑ candidate`` for plain CQs via head-aligned homomorphism."""
    initial: dict[Variable, Term] = {}
    for c_arg, q_arg in zip(candidate.head.args, query.head.args):
        if isinstance(c_arg, Constant):
            if c_arg != q_arg:
                return False
        else:
            bound = initial.get(c_arg)
            if bound is None:
                initial[c_arg] = q_arg
            elif bound != q_arg:
                return False
    for _ in extend_homomorphism(candidate.positive_atoms, query.positive_atoms, initial):
        return True
    return False


# ----------------------------------------------------------------------
# The general containment procedure
# ----------------------------------------------------------------------
def _candidate_produces(
    candidate: ConjunctiveQuery,
    database_atoms: list[Atom],
    database_set: set[Atom],
    head_classes: tuple[int, ...],
    config: Config,
    extra_constant_classes: dict[Constant, int],
) -> bool:
    """Whether ``candidate`` yields the canonical head row on the database."""
    # Candidate constants must denote classes of the configuration.
    local_class_of = dict(config.class_of)
    for atom in (candidate.head, *candidate.positive_atoms, *candidate.negative_atoms):
        for term in atom.args:
            if isinstance(term, Constant) and term not in local_class_of:
                cls = extra_constant_classes.get(term)
                if cls is None:
                    return False  # constant absent from the canonical domain
                local_class_of[term] = cls
    for order_atom in candidate.order_atoms:
        for term in (order_atom.left, order_atom.right):
            if isinstance(term, Constant) and term not in local_class_of:
                cls = extra_constant_classes.get(term)
                if cls is None:
                    return False
                local_class_of[term] = cls

    initial: dict[Variable, Term] = {}
    for c_arg, head_cls in zip(candidate.head.args, head_classes):
        if isinstance(c_arg, Constant):
            if local_class_of[c_arg] != head_cls:
                return False
        else:
            target = Constant(head_cls)
            bound = initial.get(c_arg)
            if bound is None:
                initial[c_arg] = target
            elif bound != target:
                return False
    frozen_positives = [
        Atom(a.predicate, tuple(
            Constant(local_class_of[t]) if isinstance(t, Constant) else t
            for t in a.args
        ))
        for a in candidate.positive_atoms
    ]
    for hom in extend_homomorphism(frozen_positives, database_atoms, initial):
        def image_class(term: Term) -> int:
            if isinstance(term, Constant):
                return local_class_of[term]
            value = hom.apply(term)
            assert isinstance(value, Constant)
            return value.value  # type: ignore[return-value]

        ok = True
        for order_atom in candidate.order_atoms:
            lc, rc = image_class(order_atom.left), image_class(order_atom.right)
            if config.position is None:
                if order_atom.op == "=" and lc != rc:
                    ok = False
                elif order_atom.op == "!=" and lc == rc:
                    ok = False
                elif order_atom.op not in ("=", "!="):
                    raise ValueError("order atom met without a linearization")
            else:
                lp, rp = config.position[lc], config.position[rc]
                holds = {
                    "<": lp < rp, "<=": lp <= rp, ">": lp > rp,
                    ">=": lp >= rp, "=": lc == rc, "!=": lc != rc,
                }[order_atom.op]
                if not holds:
                    ok = False
            if not ok:
                break
        if not ok:
            continue
        negated_present = False
        for atom in candidate.negative_atoms:
            ground = Atom(atom.predicate, tuple(
                Constant(image_class(t)) for t in atom.args
            ))
            if ground in database_set:
                negated_present = True
                break
        if not negated_present:
            return True
    return False


def cq_contained_in_union(
    query: ConjunctiveQuery,
    union: UnionOfConjunctiveQueries | Iterable[ConjunctiveQuery],
    *,
    max_terms: int = 10,
) -> bool:
    """Exact test of ``query ⊑ union`` over all databases (and dense orders).

    Raises :class:`ContainmentTooLargeError` when the term universe
    exceeds ``max_terms`` and a non-plain case analysis is required.
    """
    if not isinstance(union, UnionOfConjunctiveQueries):
        union = UnionOfConjunctiveQueries(tuple(union))
    if query.head.predicate != union.head_predicate or query.head.arity != union.head_arity:
        return False

    q_tags = query.classification()
    u_tags = union.classification()
    if not q_tags and not u_tags:
        return any(_plain_contained_in(query, candidate) for candidate in union)

    need_order = "theta" in (q_tags | u_tags)
    rhs_negated_predicates: set[str] = set()
    for candidate in union:
        rhs_negated_predicates |= {a.predicate for a in candidate.negative_atoms}

    terms = list(query.terms())
    union_constants: list[Constant] = []
    for candidate in union:
        for atom in (candidate.head, *candidate.positive_atoms, *candidate.negative_atoms):
            union_constants.extend(t for t in atom.args if isinstance(t, Constant))
        for order_atom in candidate.order_atoms:
            union_constants.extend(
                t for t in (order_atom.left, order_atom.right) if isinstance(t, Constant)
            )
    for constant in union_constants:
        if constant not in terms:
            terms.append(constant)
    if len(terms) > max_terms:
        raise ContainmentTooLargeError(
            f"{len(terms)} terms exceed max_terms={max_terms}; "
            "raise the bound explicitly for larger case analyses"
        )

    negated_arities: dict[str, int] = {}
    for candidate in union:
        for atom in candidate.negative_atoms:
            negated_arities[atom.predicate] = atom.arity

    for class_of in partitions(terms):
        configs: Iterable[Config]
        if need_order:
            configs = (Config(class_of, pos) for pos in linearizations(class_of))
        else:
            configs = (Config(class_of, None),)
        for config in configs:
            # Does the query produce its head row under this configuration?
            satisfied = True
            for order_atom in query.order_atoms:
                if not config.compare(order_atom.left, order_atom.right, order_atom.op):
                    satisfied = False
                    break
            if not satisfied:
                continue
            positives = set(freeze_atoms(query.positive_atoms, class_of))
            forbidden = set(freeze_atoms(query.negative_atoms, class_of))
            if positives & forbidden:
                continue  # the query body is inconsistent here
            head_classes = tuple(class_of[t] for t in query.head.args)
            extra_constant_classes = {
                t: cls for t, cls in class_of.items() if isinstance(t, Constant)
            }

            # Candidate extra facts: only predicates negated on the rhs matter.
            class_ids = sorted(set(class_of.values()))
            extras_universe: list[Atom] = []
            for predicate in sorted(rhs_negated_predicates):
                arity = negated_arities[predicate]
                for combo in itertools.product(class_ids, repeat=arity):
                    atom = Atom(predicate, tuple(Constant(c) for c in combo))
                    if atom not in positives and atom not in forbidden:
                        extras_universe.append(atom)
            if len(extras_universe) > 16:
                raise ContainmentTooLargeError(
                    f"{len(extras_universe)} candidate extra facts exceed the "
                    "2^16 enumeration bound"
                )

            produced_everywhere = True
            for mask in range(1 << len(extras_universe)):
                extras = [
                    extras_universe[i]
                    for i in range(len(extras_universe))
                    if mask & (1 << i)
                ]
                database_atoms = sorted(positives | set(extras), key=repr)
                database_set = set(database_atoms)
                if any(
                    _candidate_produces(
                        candidate, database_atoms, database_set,
                        head_classes, config, extra_constant_classes,
                    )
                    for candidate in union
                ):
                    continue
                produced_everywhere = False
                break
            if not produced_everywhere:
                return False
    return True


def cq_contained(
    first: ConjunctiveQuery, second: ConjunctiveQuery, *, max_terms: int = 10
) -> bool:
    """``first ⊑ second`` (exact, all fragments)."""
    return cq_contained_in_union(
        first, UnionOfConjunctiveQueries((second,)), max_terms=max_terms
    )


def cq_equivalent(
    first: ConjunctiveQuery, second: ConjunctiveQuery, *, max_terms: int = 10
) -> bool:
    """Mutual containment."""
    return cq_contained(first, second, max_terms=max_terms) and cq_contained(
        second, first, max_terms=max_terms
    )


def ucq_contained(
    first: UnionOfConjunctiveQueries,
    second: UnionOfConjunctiveQueries,
    *,
    max_terms: int = 10,
) -> bool:
    """``first ⊑ second``: every member contained in the union."""
    return all(
        cq_contained_in_union(query, second, max_terms=max_terms) for query in first
    )
