"""Canonical-database configurations: partitions and linearizations.

Shared by the containment tests (:mod:`repro.cq.containment`) and the
emptiness/satisfiability case analyses (:mod:`repro.core.emptiness`).
A *configuration* identifies some terms (a partition into classes, where
distinct constants never merge) and, when order atoms are in play,
totally orders the classes consistently with the real order among the
constants (a linearization over the dense domain).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from ..datalog.atoms import Atom, OrderAtom
from ..datalog.terms import Constant, Term, Variable

__all__ = ["Config", "partitions", "linearizations", "freeze_atoms"]


class Config:
    """One configuration: a partition plus an optional linearization."""

    __slots__ = ("class_of", "position")

    def __init__(self, class_of: dict[Term, int], position: dict[int, int] | None):
        self.class_of = class_of
        self.position = position

    def compare(self, left: Term, right: Term, op: str) -> bool:
        """Evaluate ``left op right`` under this configuration."""
        lc, rc = self.class_of[left], self.class_of[right]
        return self.compare_classes(lc, rc, op)

    def compare_classes(self, lc: int, rc: int, op: str) -> bool:
        if op == "=":
            return lc == rc
        if op == "!=":
            return lc != rc
        if self.position is None:
            raise ValueError("order comparison without a linearization")
        lp, rp = self.position[lc], self.position[rc]
        if op == "<":
            return lp < rp
        if op == "<=":
            return lp <= rp
        if op == ">":
            return lp > rp
        if op == ">=":
            return lp >= rp
        raise ValueError(f"unknown comparison {op!r}")

    def satisfies(self, order_atoms: Sequence[OrderAtom]) -> bool:
        return all(self.compare(a.left, a.right, a.op) for a in order_atoms)


def partitions(terms: Sequence[Term]) -> Iterator[dict[Term, int]]:
    """Enumerate identifications of the terms.

    Each distinct constant owns its class and constants never merge;
    variables may join any existing class or open a new one.
    """
    constants = [t for t in terms if isinstance(t, Constant)]
    variables = [t for t in terms if isinstance(t, Variable)]
    base: dict[Term, int] = {c: i for i, c in enumerate(constants)}

    def assign(index: int, class_of: dict[Term, int], next_id: int) -> Iterator[dict[Term, int]]:
        if index == len(variables):
            yield dict(class_of)
            return
        var = variables[index]
        for existing in range(next_id):
            class_of[var] = existing
            yield from assign(index + 1, class_of, next_id)
        class_of[var] = next_id
        yield from assign(index + 1, class_of, next_id + 1)
        del class_of[var]

    yield from assign(0, dict(base), len(constants))


def _constant_order_ok(class_of: dict[Term, int], position: dict[int, int]) -> bool:
    """The linearization must respect the real order among the constants."""
    constant_classes: dict[int, Constant] = {}
    for term, cls in class_of.items():
        if isinstance(term, Constant):
            constant_classes[cls] = term
    items = sorted(constant_classes.items(), key=lambda kv: position[kv[0]])
    for (_, const_a), (_, const_b) in zip(items, items[1:]):
        if not const_a.comparable_with(const_b):
            continue
        if not OrderAtom(const_a, "<", const_b).holds():
            return False
    return True


def linearizations(class_of: dict[Term, int]) -> Iterator[dict[int, int]]:
    """All total orders of the classes consistent with the constants."""
    classes = sorted(set(class_of.values()))
    for perm in itertools.permutations(classes):
        position = {cls: i for i, cls in enumerate(perm)}
        if _constant_order_ok(class_of, position):
            yield position


def freeze_atoms(atoms: Sequence[Atom], class_of: dict[Term, int]) -> list[Atom]:
    """Atoms over class-id constants (the canonical database encoding)."""
    return [
        Atom(atom.predicate, tuple(Constant(class_of[t]) for t in atom.args))
        for atom in atoms
    ]
