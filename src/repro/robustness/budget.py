"""Budgets, deadlines and cooperative cancellation for long-running phases.

The engine's inputs are adversarial by nature: satisfiability w.r.t.
integrity constraints is undecidable for ``{theta,not}``-programs
(Theorem 5.1), the adornment phase is worst-case doubly exponential,
and fixpoint evaluation — polynomial in data — is unbounded in practice
on generated workloads.  This module supplies the standard production
guardrails:

* :class:`Budget` — a declarative bundle of limits (wall-clock timeout,
  semi-naive iterations, derived facts, rows scanned, symbolic
  expansions);
* :class:`CancellationToken` — a thread-safe flag an outside caller can
  set to stop a run at its next checkpoint;
* :class:`Governor` — the runtime object threaded through the phases.
  Phases call :meth:`Governor.check` at round boundaries (with their
  live :class:`~repro.datalog.evaluation.EvaluationStats`) and the
  cheap strided :meth:`Governor.tick` / :meth:`Governor.expand` inside
  tight symbolic loops.  A violated limit raises
  :class:`~repro.robustness.errors.BudgetExceededError` (or
  :class:`~repro.robustness.errors.Cancelled`), which the engine driver
  enriches with the partial fixpoint on the way out.

A single :class:`Governor` may be shared across phases (rewrite, then
magic, then evaluation) so ``--timeout`` bounds the whole command, not
each phase separately; every ``budget=`` parameter in the package also
accepts a pre-started governor for exactly this reason.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .errors import BudgetExceededError, Cancelled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalog.evaluation import EvaluationStats

__all__ = ["Budget", "CancellationToken", "Governor", "FallbackStep"]


@dataclass(frozen=True)
class Budget:
    """Declarative resource limits for one governed run.

    Every field defaults to ``None`` (unlimited).  ``timeout`` is
    wall-clock seconds from the moment the :class:`Governor` starts;
    ``max_iterations`` bounds the *total* semi-naive rounds across all
    SCCs (unlike the legacy per-SCC ``max_iterations`` argument of
    :func:`~repro.datalog.evaluation.evaluate`, which truncates
    silently); ``max_facts`` / ``max_rows_scanned`` bound the derived
    facts and join rows scanned; ``max_expansions`` bounds symbolic
    work — adornment enumeration steps and query-tree node expansions.
    """

    timeout: float | None = None
    max_iterations: int | None = None
    max_facts: int | None = None
    max_rows_scanned: int | None = None
    max_expansions: int | None = None

    @property
    def unlimited(self) -> bool:
        return (
            self.timeout is None
            and self.max_iterations is None
            and self.max_facts is None
            and self.max_rows_scanned is None
            and self.max_expansions is None
        )


class CancellationToken:
    """A cooperative cancellation flag, safe to set from another thread."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        return f"<CancellationToken {'cancelled' if self.cancelled else 'live'}>"


@dataclass(frozen=True)
class FallbackStep:
    """One rung of a degradation ladder, recorded for reports.

    ``stage`` names the strategy that was abandoned, ``fell_back_to``
    the strategy tried next, and ``reason`` the one-line cause (the
    message of the aborting exception).
    """

    stage: str
    fell_back_to: str
    reason: str

    def describe(self) -> str:
        return f"{self.stage} -> {self.fell_back_to} ({self.reason})"


class Governor:
    """The runtime enforcer of one :class:`Budget` (plus cancellation).

    The deadline is anchored when the governor is constructed.  Checks
    are cooperative and cheap: an inactive governor (no limits, no
    token) reduces every call to one attribute read, and the strided
    :meth:`tick` touches the clock only every ``stride`` calls.
    """

    __slots__ = (
        "budget",
        "token",
        "deadline",
        "started_at",
        "active",
        "expansions",
        "tripped",
        "_clock",
        "_stride",
        "_ticks",
    )

    def __init__(
        self,
        budget: Budget | None = None,
        cancellation: CancellationToken | None = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
        stride: int = 256,
    ):
        self.budget = budget if budget is not None else Budget()
        self.token = cancellation
        self._clock = clock
        self._stride = max(1, stride)
        self._ticks = 0
        self.started_at = clock()
        self.deadline = (
            None if self.budget.timeout is None else self.started_at + self.budget.timeout
        )
        self.active = cancellation is not None or not self.budget.unlimited
        self.expansions = 0
        self.tripped: BudgetExceededError | Cancelled | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def of(
        budget: "Budget | Governor | None",
        cancellation: CancellationToken | None = None,
    ) -> "Governor | None":
        """Normalize a ``budget=`` argument into a governor (or ``None``).

        Accepts a :class:`Budget` (a fresh governor is started now), an
        already-running :class:`Governor` (shared deadlines across
        phases), or ``None`` — which yields a governor only when a
        cancellation token was given.
        """
        if isinstance(budget, Governor):
            return budget
        if budget is None and cancellation is None:
            return None
        return Governor(budget, cancellation)

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return self._clock() - self.started_at

    def remaining(self) -> float | None:
        """Seconds until the deadline (``None`` without a timeout)."""
        if self.deadline is None:
            return None
        return self.deadline - self._clock()

    def _trip(self, cls, phase: str, limit: str, message: str) -> None:
        exc = cls(message, phase=phase, limit=limit)
        self.tripped = exc
        raise exc

    def _check_clock_and_token(self, phase: str) -> None:
        if self.token is not None and self.token.cancelled:
            self._trip(Cancelled, phase, "cancelled", f"{phase} was cancelled")
        if self.deadline is not None and self._clock() > self.deadline:
            self._trip(
                BudgetExceededError,
                phase,
                "timeout",
                f"{phase} exceeded the {self.budget.timeout}s deadline",
            )

    def check(self, phase: str, stats: "EvaluationStats | None" = None) -> None:
        """Full checkpoint: cancellation, deadline and stats limits.

        Called at round boundaries (per SCC, per semi-naive iteration,
        per rule execution) with the evaluation's live stats.
        """
        if not self.active:
            return
        self._check_clock_and_token(phase)
        budget = self.budget
        if stats is None:
            return
        if (
            budget.max_iterations is not None
            and stats.iterations > budget.max_iterations
        ):
            self._trip(
                BudgetExceededError,
                phase,
                "max_iterations",
                f"{phase} exceeded the {budget.max_iterations}-iteration budget",
            )
        if budget.max_facts is not None and stats.facts_derived > budget.max_facts:
            self._trip(
                BudgetExceededError,
                phase,
                "max_facts",
                f"{phase} derived more than {budget.max_facts} facts",
            )
        if (
            budget.max_rows_scanned is not None
            and stats.rows_scanned > budget.max_rows_scanned
        ):
            self._trip(
                BudgetExceededError,
                phase,
                "max_rows_scanned",
                f"{phase} scanned more than {budget.max_rows_scanned} rows",
            )

    def tick(self, phase: str) -> None:
        """Strided checkpoint for tight loops: clock and token only.

        Touches the clock once per ``stride`` calls, so it is safe to
        call per emitted row or per symbolic combination.
        """
        if not self.active:
            return
        self._ticks += 1
        if self._ticks % self._stride:
            return
        self._check_clock_and_token(phase)

    def expand(self, phase: str) -> None:
        """Count one symbolic expansion and enforce ``max_expansions``."""
        if not self.active:
            return
        self.expansions += 1
        limit = self.budget.max_expansions
        if limit is not None and self.expansions > limit:
            self._trip(
                BudgetExceededError,
                phase,
                "max_expansions",
                f"{phase} exceeded the {limit}-expansion budget",
            )
        self.tick(phase)
