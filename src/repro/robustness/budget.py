"""Budgets, deadlines and cooperative cancellation for long-running phases.

The engine's inputs are adversarial by nature: satisfiability w.r.t.
integrity constraints is undecidable for ``{theta,not}``-programs
(Theorem 5.1), the adornment phase is worst-case doubly exponential,
and fixpoint evaluation — polynomial in data — is unbounded in practice
on generated workloads.  This module supplies the standard production
guardrails:

* :class:`Budget` — a declarative bundle of limits (wall-clock timeout,
  semi-naive iterations, derived facts, rows scanned, symbolic
  expansions);
* :class:`CancellationToken` — a thread-safe flag an outside caller can
  set to stop a run at its next checkpoint;
* :class:`Governor` — the runtime object threaded through the phases.
  Phases call :meth:`Governor.check` at round boundaries (with their
  live :class:`~repro.datalog.evaluation.EvaluationStats`) and the
  cheap strided :meth:`Governor.tick` / :meth:`Governor.expand` inside
  tight symbolic loops.  A violated limit raises
  :class:`~repro.robustness.errors.BudgetExceededError` (or
  :class:`~repro.robustness.errors.Cancelled`), which the engine driver
  enriches with the partial fixpoint on the way out.

A single :class:`Governor` may be shared across phases (rewrite, then
magic, then evaluation) so ``--timeout`` bounds the whole command, not
each phase separately; every ``budget=`` parameter in the package also
accepts a pre-started governor for exactly this reason.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .errors import BudgetExceededError, Cancelled, UsageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalog.evaluation import EvaluationStats

__all__ = [
    "Budget",
    "CancellationToken",
    "Governor",
    "FallbackStep",
    "RequestGovernorFactory",
    "parse_timeout_value",
    "parse_limit_value",
]


def parse_timeout_value(value: object, *, option: str = "timeout") -> float | None:
    """Normalize a caller-supplied timeout into seconds (or ``None``).

    Accepts a number or a numeric string; anything else — or a
    non-positive or non-finite value — raises
    :class:`~repro.robustness.errors.UsageError` with the one
    normalized message both the CLI (exit code 2) and the serving
    daemon (HTTP 400) report, so ``repro run --timeout banana`` and
    ``POST /query {"timeout": "banana"}`` diagnose identically.
    """
    if value is None:
        return None
    message = f"invalid {option} {value!r}: expected a positive number of seconds"
    if isinstance(value, bool):
        raise UsageError(message)
    try:
        seconds = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise UsageError(message) from None
    if not seconds > 0 or seconds != seconds or seconds == float("inf"):
        raise UsageError(message)
    return seconds


def parse_limit_value(value: object, *, option: str = "max-facts") -> int | None:
    """Normalize a caller-supplied count limit (or ``None``).

    The integer twin of :func:`parse_timeout_value`: accepts an int or
    an integer string, requires it positive, and raises
    :class:`~repro.robustness.errors.UsageError` with the shared
    CLI/daemon message otherwise.
    """
    if value is None:
        return None
    message = f"invalid {option} {value!r}: expected a positive integer"
    if isinstance(value, (bool, float)):
        raise UsageError(message)
    try:
        count = int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise UsageError(message) from None
    if count <= 0:
        raise UsageError(message)
    return count


@dataclass(frozen=True)
class Budget:
    """Declarative resource limits for one governed run.

    Every field defaults to ``None`` (unlimited).  ``timeout`` is
    wall-clock seconds from the moment the :class:`Governor` starts;
    ``max_iterations`` bounds the *total* semi-naive rounds across all
    SCCs (unlike the legacy per-SCC ``max_iterations`` argument of
    :func:`~repro.datalog.evaluation.evaluate`, which truncates
    silently); ``max_facts`` / ``max_rows_scanned`` bound the derived
    facts and join rows scanned; ``max_expansions`` bounds symbolic
    work — adornment enumeration steps and query-tree node expansions.
    """

    timeout: float | None = None
    max_iterations: int | None = None
    max_facts: int | None = None
    max_rows_scanned: int | None = None
    max_expansions: int | None = None

    @property
    def unlimited(self) -> bool:
        return (
            self.timeout is None
            and self.max_iterations is None
            and self.max_facts is None
            and self.max_rows_scanned is None
            and self.max_expansions is None
        )


class CancellationToken:
    """A cooperative cancellation flag, safe to set from another thread."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        return f"<CancellationToken {'cancelled' if self.cancelled else 'live'}>"


@dataclass(frozen=True)
class FallbackStep:
    """One rung of a degradation ladder, recorded for reports.

    ``stage`` names the strategy that was abandoned, ``fell_back_to``
    the strategy tried next, and ``reason`` the one-line cause (the
    message of the aborting exception).
    """

    stage: str
    fell_back_to: str
    reason: str

    def describe(self) -> str:
        return f"{self.stage} -> {self.fell_back_to} ({self.reason})"


class Governor:
    """The runtime enforcer of one :class:`Budget` (plus cancellation).

    The deadline is anchored when the governor is constructed.  Checks
    are cooperative and cheap: an inactive governor (no limits, no
    token) reduces every call to one attribute read, and the strided
    :meth:`tick` touches the clock only every ``stride`` calls.
    """

    __slots__ = (
        "budget",
        "token",
        "deadline",
        "started_at",
        "active",
        "expansions",
        "tripped",
        "_clock",
        "_stride",
        "_ticks",
    )

    def __init__(
        self,
        budget: Budget | None = None,
        cancellation: CancellationToken | None = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
        stride: int = 256,
    ):
        self.budget = budget if budget is not None else Budget()
        self.token = cancellation
        self._clock = clock
        self._stride = max(1, stride)
        self._ticks = 0
        self.started_at = clock()
        self.deadline = (
            None if self.budget.timeout is None else self.started_at + self.budget.timeout
        )
        self.active = cancellation is not None or not self.budget.unlimited
        self.expansions = 0
        self.tripped: BudgetExceededError | Cancelled | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def of(
        budget: "Budget | Governor | None",
        cancellation: CancellationToken | None = None,
    ) -> "Governor | None":
        """Normalize a ``budget=`` argument into a governor (or ``None``).

        Accepts a :class:`Budget` (a fresh governor is started now), an
        already-running :class:`Governor` (shared deadlines across
        phases), or ``None`` — which yields a governor only when a
        cancellation token was given.
        """
        if isinstance(budget, Governor):
            return budget
        if budget is None and cancellation is None:
            return None
        return Governor(budget, cancellation)

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return self._clock() - self.started_at

    def remaining(self) -> float | None:
        """Seconds until the deadline (``None`` without a timeout)."""
        if self.deadline is None:
            return None
        return self.deadline - self._clock()

    def _trip(self, cls, phase: str, limit: str, message: str) -> None:
        exc = cls(message, phase=phase, limit=limit)
        self.tripped = exc
        raise exc

    def _check_clock_and_token(self, phase: str) -> None:
        if self.token is not None and self.token.cancelled:
            self._trip(Cancelled, phase, "cancelled", f"{phase} was cancelled")
        if self.deadline is not None and self._clock() > self.deadline:
            self._trip(
                BudgetExceededError,
                phase,
                "timeout",
                f"{phase} exceeded the {self.budget.timeout}s deadline",
            )

    def check(self, phase: str, stats: "EvaluationStats | None" = None) -> None:
        """Full checkpoint: cancellation, deadline and stats limits.

        Called at round boundaries (per SCC, per semi-naive iteration,
        per rule execution) with the evaluation's live stats.
        """
        if not self.active:
            return
        self._check_clock_and_token(phase)
        budget = self.budget
        if stats is None:
            return
        if (
            budget.max_iterations is not None
            and stats.iterations > budget.max_iterations
        ):
            self._trip(
                BudgetExceededError,
                phase,
                "max_iterations",
                f"{phase} exceeded the {budget.max_iterations}-iteration budget",
            )
        if budget.max_facts is not None and stats.facts_derived > budget.max_facts:
            self._trip(
                BudgetExceededError,
                phase,
                "max_facts",
                f"{phase} derived more than {budget.max_facts} facts",
            )
        if (
            budget.max_rows_scanned is not None
            and stats.rows_scanned > budget.max_rows_scanned
        ):
            self._trip(
                BudgetExceededError,
                phase,
                "max_rows_scanned",
                f"{phase} scanned more than {budget.max_rows_scanned} rows",
            )

    def tick(self, phase: str) -> None:
        """Strided checkpoint for tight loops: clock and token only.

        Touches the clock once per ``stride`` calls, so it is safe to
        call per emitted row or per symbolic combination.
        """
        if not self.active:
            return
        self._ticks += 1
        if self._ticks % self._stride:
            return
        self._check_clock_and_token(phase)

    def tick_batch(self, phase: str, count: int) -> None:
        """Batched :meth:`tick`: advance the stride counter by ``count``.

        The columnar block kernels emit whole result blocks per call
        instead of one row at a time; ticking once per row would put a
        Python call on the hot path the kernels exist to remove.  This
        advances the counter in one step and touches the clock exactly
        when the per-row ticks would have — whenever a stride boundary
        is crossed — so block evaluation stays as cancellable as
        row-at-a-time evaluation.
        """
        if not self.active or count <= 0:
            return
        before = self._ticks
        self._ticks = before + count
        if before // self._stride != self._ticks // self._stride:
            self._check_clock_and_token(phase)

    def expand(self, phase: str) -> None:
        """Count one symbolic expansion and enforce ``max_expansions``."""
        if not self.active:
            return
        self.expansions += 1
        limit = self.budget.max_expansions
        if limit is not None and self.expansions > limit:
            self._trip(
                BudgetExceededError,
                phase,
                "max_expansions",
                f"{phase} exceeded the {limit}-expansion budget",
            )
        self.tick(phase)


def _tightest(server: float | None, request: float | None) -> float | None:
    if server is None:
        return request
    if request is None:
        return server
    return min(server, request)


class RequestGovernorFactory:
    """Mints one fresh :class:`Governor` per serving request.

    The daemon configures *server defaults* (its SLO ceiling); each
    request may carry its own ``timeout`` / ``max_facts`` /
    ``max_iterations``, already normalized by
    :func:`parse_timeout_value` / :func:`parse_limit_value`.  The
    effective budget is the **tighter** of the two per limit — a tenant
    can always ask for less than the server allows, never more — and
    the governor's deadline is anchored at the moment the request
    starts, so one slow request can never eat a neighbour's budget (the
    whole point of per-request governance, vs. the CLI's one shared
    governor per command).
    """

    def __init__(self, defaults: Budget | None = None):
        self.defaults = defaults if defaults is not None else Budget()
        self.minted = 0

    def for_request(
        self,
        *,
        timeout: float | None = None,
        max_facts: int | None = None,
        max_iterations: int | None = None,
        cancellation: CancellationToken | None = None,
    ) -> Governor | None:
        """A fresh governor for one request (``None`` when unbounded)."""
        budget = Budget(
            timeout=_tightest(self.defaults.timeout, timeout),
            max_iterations=_tightest(self.defaults.max_iterations, max_iterations),
            max_facts=_tightest(self.defaults.max_facts, max_facts),
            max_rows_scanned=self.defaults.max_rows_scanned,
            max_expansions=self.defaults.max_expansions,
        )
        if budget.unlimited and cancellation is None:
            return None
        self.minted += 1
        return Governor(budget, cancellation)
