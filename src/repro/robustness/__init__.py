"""Resource-governed execution: budgets, deadlines, cancellation, chaos.

The robustness layer makes every long-running phase of the system
bounded, cancellable and degrade-gracefully (see ``docs/robustness.md``):

* :mod:`repro.robustness.errors` — the :class:`ReproError` taxonomy;
  aborted executions carry the tripped phase and the partial fixpoint;
* :mod:`repro.robustness.budget` — :class:`Budget`,
  :class:`CancellationToken` and the :class:`Governor` checked at round
  and expansion boundaries;
* :mod:`repro.robustness.faults` — the deterministic fault-injection
  harness armed at trace-event sites.
"""

from .budget import (
    Budget,
    CancellationToken,
    FallbackStep,
    Governor,
    RequestGovernorFactory,
    parse_limit_value,
    parse_timeout_value,
)
from .errors import (
    BudgetExceededError,
    Cancelled,
    EvaluationAborted,
    InjectedFault,
    ReproError,
    UsageError,
)
from .faults import ChaosTracer, FaultInjector, chaos

__all__ = [
    "Budget",
    "CancellationToken",
    "FallbackStep",
    "Governor",
    "RequestGovernorFactory",
    "parse_timeout_value",
    "parse_limit_value",
    "ReproError",
    "UsageError",
    "EvaluationAborted",
    "BudgetExceededError",
    "Cancelled",
    "InjectedFault",
    "FaultInjector",
    "ChaosTracer",
    "chaos",
]
