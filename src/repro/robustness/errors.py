"""The structured exception taxonomy of the resource-governance layer.

Every error this package raises deliberately derives from
:class:`ReproError`, so embedders (and the CLI) can catch one base class
and turn any input/usage problem into a clean diagnostic instead of a
traceback.  Two families matter:

* **input errors** — parse errors, unsafe rules, program-class
  violations, non-local constraints, ...  These subclass both
  :class:`ReproError` and the builtin they historically derived from
  (``ValueError``/``RuntimeError``), so existing ``except ValueError``
  call sites keep working.
* **aborted executions** — :class:`EvaluationAborted` and its
  subclasses :class:`BudgetExceededError`, :class:`Cancelled` and
  :class:`InjectedFault`.  These are *cooperative* interruptions raised
  at round/expansion boundaries; they carry the phase that tripped, the
  partial fixpoint computed so far (when the evaluation engine was
  running) and its :class:`~repro.datalog.evaluation.EvaluationStats`,
  so callers get partial results instead of nothing.

The input-error classes themselves stay defined next to the code that
raises them (:mod:`repro.datalog.parser`, :mod:`repro.datalog.rules`,
...); this module only provides the roots of the hierarchy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalog.evaluation import EvaluationResult, EvaluationStats

__all__ = [
    "ReproError",
    "UsageError",
    "EvaluationAborted",
    "BudgetExceededError",
    "Cancelled",
    "InjectedFault",
]


class ReproError(Exception):
    """Base class of every structured error raised by this package."""


class UsageError(ReproError):
    """Bad caller-supplied input: a malformed flag, goal or payload.

    Raised with an already-normalized, human-readable message.  The CLI
    reports it as ``error: ...`` with exit code 2; the serving daemon
    maps it to HTTP 400 with the *same* message text, so both surfaces
    diagnose bad input identically (see
    :func:`repro.robustness.budget.parse_timeout_value`).
    """


class EvaluationAborted(ReproError):
    """A long-running phase was interrupted at a cooperative checkpoint.

    ``phase`` names the phase that tripped (``"evaluate"``,
    ``"adornments"``, ``"querytree"``, ``"pipeline"``, ...); ``limit``
    names the resource that ran out (``"timeout"``, ``"max_facts"``,
    ``"cancelled"``, ``"fault"``, ...).  When the evaluation engine was
    running, ``partial`` holds the partial fixpoint as an
    :class:`~repro.datalog.evaluation.EvaluationResult` (a *subset* of
    the unbounded fixpoint — bottom-up evaluation only ever adds facts)
    and ``stats`` its work counters.
    """

    def __init__(
        self,
        message: str,
        *,
        phase: str | None = None,
        limit: str | None = None,
        partial: "EvaluationResult | None" = None,
        stats: "EvaluationStats | None" = None,
    ):
        super().__init__(message)
        self.phase = phase
        self.limit = limit
        self.partial = partial
        self.stats = stats

    def with_context(
        self,
        *,
        phase: str | None = None,
        partial: "EvaluationResult | None" = None,
        stats: "EvaluationStats | None" = None,
    ) -> "EvaluationAborted":
        """Fill in still-unknown context while the exception unwinds.

        The innermost frame knows the limit that tripped; the engine
        driver above it knows the partial fixpoint.  Existing values are
        never overwritten, so the most precise information wins.
        """
        if self.phase is None:
            self.phase = phase
        if self.partial is None:
            self.partial = partial
        if self.stats is None:
            self.stats = stats
        return self


class BudgetExceededError(EvaluationAborted):
    """A :class:`~repro.robustness.budget.Budget` limit was reached."""


class Cancelled(EvaluationAborted):
    """A :class:`~repro.robustness.budget.CancellationToken` fired."""


class InjectedFault(EvaluationAborted):
    """A fault armed by :class:`~repro.robustness.faults.FaultInjector`.

    Subclassing :class:`EvaluationAborted` is the point: injected
    faults travel the exact same partial-result and degradation paths
    real budget trips do, which is what the chaos tests verify.
    """

    def __init__(self, message: str, *, site: str, occurrence: int, **kwargs):
        super().__init__(message, limit="fault", **kwargs)
        self.site = site
        self.occurrence = occurrence
