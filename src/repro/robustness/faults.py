"""Deterministic fault injection at the engine's trace-event sites.

The observability layer already threads a :class:`~repro.observability
.trace.Tracer` through every interesting boundary of the system: plan
compilation (``plan`` events), lazy index construction
(``index_build``), semi-naive rounds (``iteration``), SCCs, the
optimizer phases (``optimize.adornments``, ``optimize.query_tree``
spans), query-tree expansion (``querytree.expand``), the pipeline
stages, ...  Those sites are exactly where a production engine fails —
so the chaos harness arms failures *there*, with zero new hooks in the
hot path:

* :class:`FaultInjector` holds the armed faults: by site name and
  occurrence number (``arm``), or pseudo-randomly by seed and
  probability (``arm_random``) — both fully deterministic for a
  deterministic workload, because trace emission order is
  deterministic;
* :class:`ChaosTracer` is a :class:`~repro.observability.trace.Tracer`
  that consults the injector on every event emission and every **span
  entry** (site ``span:<name>``), raising
  :class:`~repro.robustness.errors.InjectedFault` when an armed
  occurrence is reached;
* :func:`chaos` installs a chaos tracer globally for a ``with`` block,
  mirroring :func:`~repro.observability.trace.tracing`.

Because :class:`InjectedFault` subclasses
:class:`~repro.robustness.errors.EvaluationAborted`, an injected fault
exercises the *same* partial-result path of the evaluation engine and
the *same* degradation ladder of the optimizer that real budget trips
use — which is precisely what the chaos tests assert.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Iterator, Mapping

from ..observability.trace import RingBufferSink, Sink, Tracer, set_tracer
from .errors import InjectedFault

__all__ = ["FaultInjector", "ChaosTracer", "chaos"]


class FaultInjector:
    """Arms and fires deterministic faults at named trace sites.

    A *site* is a trace event name (``"plan"``, ``"index_build"``,
    ``"iteration"``, ``"querytree.expand"``, ...) or a span entry
    (``"span:evaluate"``, ``"span:scc"``, ``"span:optimize.adornments"``,
    ...).  Occurrences are counted per site starting at 1.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._armed: dict[str, set[int]] = {}
        self._random_rate: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.fired: list[tuple[str, int]] = []

    # ------------------------------------------------------------------
    def arm(self, site: str, *, at: int = 1, times: int = 1) -> "FaultInjector":
        """Fault occurrences ``at .. at+times-1`` of ``site``; chainable."""
        if at < 1:
            raise ValueError(f"occurrence numbers start at 1, got {at}")
        self._armed.setdefault(site, set()).update(range(at, at + times))
        return self

    def arm_random(self, site: str, *, rate: float) -> "FaultInjector":
        """Fault each occurrence of ``site`` with probability ``rate``.

        Draws come from the injector's seeded generator, so the same
        seed over the same workload faults the same occurrences.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self._random_rate[site] = rate
        return self

    # ------------------------------------------------------------------
    def observe(self, site: str, attrs: Mapping[str, object]) -> None:
        """Count one occurrence of ``site``; raise if an armed fault fires."""
        count = self.counts.get(site, 0) + 1
        self.counts[site] = count
        hit = count in self._armed.get(site, ())
        rate = self._random_rate.get(site)
        if not hit and rate is not None:
            hit = self._rng.random() < rate
        if hit:
            self.fired.append((site, count))
            raise InjectedFault(
                f"injected fault at {site} (occurrence {count}, seed {self.seed})",
                site=site,
                occurrence=count,
            )

    def tracer(self, *sinks: Sink) -> "ChaosTracer":
        """A chaos tracer over ``sinks`` (a fresh ring buffer if none)."""
        return ChaosTracer(self, sinks if sinks else (RingBufferSink(),))


class ChaosTracer(Tracer):
    """A tracer that consults a :class:`FaultInjector` at every site.

    Faults are raised *before* the underlying emission (and before a
    span is pushed on the stack), so the tracer's own state stays
    consistent while the exception unwinds through the instrumented
    code — the ``with tracer.span(...)`` blocks above the fault close
    normally and still reach the sinks.
    """

    __slots__ = ("injector",)

    def __init__(self, injector: FaultInjector, sinks=()):  # noqa: D107
        super().__init__(sinks, enabled=True)
        self.injector = injector

    def event(self, name: str, **attrs: object) -> None:
        self.injector.observe(name, attrs)
        super().event(name, **attrs)

    def _open(self, span) -> None:
        self.injector.observe(f"span:{span.name}", span.attrs)
        super()._open(span)


@contextmanager
def chaos(injector: FaultInjector, *sinks: Sink) -> Iterator[ChaosTracer]:
    """Install a chaos tracer globally for the duration of a block."""
    tracer = injector.tracer(*sinks)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
