"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``optimize``     rewrite a program to incorporate its constraints
``run``          evaluate a program (optionally optimized) over facts
``magic``        magic-sets transformation for a bound query atom
``pipeline``     chain the semantic rewrite and magic sets (either order)
``session``      durable evaluation: run / resume / recover / ingest / inspect
``serve``        boot the multi-tenant HTTP serving daemon
``client``       talk to a running daemon (register / query / ingest / stats)
``trace``        print the structured trace of a rewrite + evaluation
``profile``      per-rule / per-predicate hot-path breakdown
``bench``        engine benchmark suite (writes BENCH_results.json)
``report``       regenerate EXPERIMENTS.md from the benchmark suite
``check``        check a fact base against integrity constraints
``satisfiable``  decide satisfiability of the query predicate
``empty``        decide program emptiness (Proposition 5.2)
``contained``    decide containment of a program in a union of CQs

File formats: programs and constraints use the textual syntax of
:mod:`repro.datalog.parser` (rules ``head :- body.``, constraints
``:- body.``); fact files hold ground facts ``p(1, 2).``.  Program
files may also carry inline facts: a ground, body-less statement whose
predicate no rule derives is EDB data (see ``examples/good_path.dl``),
so ``run``/``trace``/``profile`` work without ``--data``.

``run``, ``magic`` and ``pipeline`` accept ``--trace``: the command
runs under an enabled tracer and appends a per-span work/time summary.

Examples::

    python -m repro optimize program.dl --constraints ics.dl --query goodPath --explain
    python -m repro run program.dl --constraints ics.dl --query p --data facts.dl --compare
    python -m repro magic program.dl --goal 'p(1, Y)' --data facts.dl --compare
    python -m repro pipeline program.dl --constraints ics.dl --goal 'p(1, Y)' \
        --order magic-first --data facts.dl --compare --trace
    python -m repro session run program.dl --query p --data facts.dl \
        --checkpoint-dir ./ckpts --checkpoint-every 1
    python -m repro session resume program.dl --query p --data facts.dl \
        --checkpoint-dir ./ckpts
    python -m repro session ingest program.dl --query p --data facts.dl \
        --facts new_facts.dl --checkpoint-dir ./ckpts
    python -m repro session inspect program.dl --query p --data facts.dl \
        --checkpoint-dir ./ckpts
    python -m repro trace examples/good_path.dl --query goodPath \
        --constraints examples/good_path_ics.dl
    python -m repro profile examples/good_path.dl --query goodPath --top 5
    python -m repro bench --json --quick
    python -m repro report --regenerate --check
    python -m repro check ics.dl --data facts.dl
    python -m repro satisfiable program.dl --constraints ics.dl --query p
    python -m repro contained program.dl --query t --ucq queries.dl
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .constraints.integrity import IntegrityConstraint, violations
from .core.containment import program_contained_in_ucq
from .core.emptiness import is_empty_program, unsatisfiable_initialization_rules
from .core.reachability import is_satisfiable
from .core.rewrite import optimize
from .cq.conjunctive import ConjunctiveQuery, UnionOfConjunctiveQueries
from .datalog.database import STORAGES, Database
from .datalog.evaluation import evaluate
from .datalog.parser import (
    parse_atom,
    parse_constraints,
    parse_facts,
    parse_program,
    parse_program_and_facts,
    parse_rules,
)
from .datalog.program import Program
from .magic import check_equivalence, get_sips, magic_transform, run_pipeline
from .magic.pipeline import PIPELINE_ORDERS
from .magic.sips import STRATEGIES
from .observability import (
    JsonlSink,
    RingBufferSink,
    profile_evaluation,
    regenerate_experiments,
    render_trace,
    trace_summary,
    tracing,
)
from .persist import CheckpointStore, Session
from .robustness import (
    Budget,
    EvaluationAborted,
    Governor,
    ReproError,
    UsageError,
    parse_limit_value,
    parse_timeout_value,
)

__all__ = ["main"]


def _read(path: str) -> str:
    return Path(path).read_text()


def _timeout_value(text: str) -> float:
    """argparse ``type=`` for ``--timeout``: shared CLI/daemon message."""
    return parse_timeout_value(text)  # type: ignore[return-value]


def _max_facts_value(text: str) -> int:
    return parse_limit_value(text, option="max-facts")  # type: ignore[return-value]


def _max_iterations_value(text: str) -> int:
    return parse_limit_value(text, option="max-iterations")  # type: ignore[return-value]


def _budget_from(args: argparse.Namespace) -> Governor | None:
    """One shared governor for the whole command (or ``None`` unbounded).

    The deadline is anchored here, before any work starts, so
    ``--timeout`` bounds rewrite + transform + evaluation together
    rather than each phase separately.
    """
    budget = Budget(
        timeout=getattr(args, "timeout", None),
        max_iterations=getattr(args, "max_iterations", None),
        max_facts=getattr(args, "max_facts", None),
    )
    if budget.unlimited:
        return None
    return Governor(budget)


def _workers_from(args: argparse.Namespace) -> "int | None":
    """Validate ``--workers`` against the other engine flags early, so
    misuse is a clean usage error (exit 2), not a traceback."""
    workers = getattr(args, "workers", None)
    if workers is None:
        return None
    if workers < 1:
        raise UsageError(f"--workers must be a positive integer, got {workers}")
    if getattr(args, "engine", "slots") != "slots":
        raise UsageError("--workers requires the compiled slot engine (--engine slots)")
    if getattr(args, "strategy", "seminaive") != "seminaive":
        raise UsageError("--workers requires --strategy seminaive")
    return workers


def _supervision_from(args: argparse.Namespace):
    """Build a :class:`SupervisionPolicy` from ``--worker-retries``.

    ``None`` means "use the default policy" (3 restarts); the flag only
    makes sense alongside ``--workers``, so misuse is a usage error.
    """
    retries = getattr(args, "worker_retries", None)
    if retries is None:
        return None
    if retries < 0:
        raise UsageError(f"--worker-retries must be >= 0, got {retries}")
    if getattr(args, "workers", None) is None:
        raise UsageError("--worker-retries requires --workers")
    from .parallel import SupervisionPolicy
    from .persist.store import RetryPolicy

    return SupervisionPolicy(retry=RetryPolicy(attempts=retries + 1))


def _load_program(args: argparse.Namespace) -> Program:
    program = parse_program(_read(args.program), query=args.query)
    if program.query is None:
        raise UsageError("--query is required for this command")
    return program


def _load_constraints(args: argparse.Namespace) -> list[IntegrityConstraint]:
    if not getattr(args, "constraints", None):
        return []
    return parse_constraints(_read(args.constraints))


def _load_database(path: str) -> Database:
    return Database(parse_facts(_read(path)))


def _database_from(args: argparse.Namespace, inline_facts) -> Database:
    """Combine a program file's inline facts with an optional --data file.

    Commands that expose ``--storage`` get their EDB built directly in
    the requested backend; the rest default to row storage.
    """
    facts = list(inline_facts)
    if getattr(args, "data", None):
        facts.extend(parse_facts(_read(args.data)))
    return Database(facts, storage=getattr(args, "storage", "rows"))


def _with_optional_trace(args: argparse.Namespace, body) -> int:
    """Run ``body`` under a tracer when ``--trace`` was given and append
    the per-span summary to the command's output."""
    if not getattr(args, "trace", False):
        return body()
    sink = RingBufferSink()
    with tracing(sink):
        code = body()
    print("\ntrace summary:")
    print(trace_summary(sink))
    return code


def _cmd_optimize(args: argparse.Namespace) -> int:
    program = _load_program(args)
    constraints = _load_constraints(args)
    report = optimize(program, constraints)
    if args.explain:
        print(report.explain())
    else:
        print(report.summary())
        print()
        if report.program is not None:
            print(report.program)
        else:
            print("% query unsatisfiable: the rewritten program is empty")
    if args.dot:
        from .core.visualize import querytree_dot

        Path(args.dot).write_text(querytree_dot(report.tree, include_labels=True))
        print(f"\nquery tree written to {args.dot} (render with dot -Tpng)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    program, inline_facts = parse_program_and_facts(_read(args.program), query=args.query)
    if program.query is None:
        raise UsageError("--query is required for this command")
    constraints = _load_constraints(args)
    database = _database_from(args, inline_facts)
    governor = _budget_from(args)
    workers = _workers_from(args)
    supervision = _supervision_from(args)

    def body() -> int:
        original = evaluate(
            program,
            database,
            engine=args.engine,
            plan_order=args.plan_order,
            workers=workers,
            supervision=supervision,
            budget=governor,
        )
        print(f"answers ({len(original.query_rows())}):")
        for row in sorted(original.query_rows(), key=repr):
            print(f"  {program.query}{row!r}")
        print(
            f"work: {original.stats.probes} probes, "
            f"{original.stats.rows_scanned} rows scanned, "
            f"{original.stats.facts_derived} facts derived"
        )
        if args.compare:
            report = optimize(program, constraints, budget=governor)
            for step in report.fallback_chain:
                print(f"fallback: {step.describe()}")
            rewritten = report.evaluation(database, budget=governor)
            if rewritten is None:
                print("optimized: query unsatisfiable (empty program)")
                return 0
            match = rewritten.query_rows() == original.query_rows()
            print(
                f"optimized work: {rewritten.stats.probes} probes, "
                f"{rewritten.stats.rows_scanned} rows scanned, "
                f"{rewritten.stats.facts_derived} facts derived "
                f"(answers {'match' if match else 'DIFFER — is the database consistent?'})"
            )
        return 0

    return _with_optional_trace(args, body)


def _load_goal(args: argparse.Namespace):
    try:
        return parse_atom(args.goal)
    except Exception as exc:
        raise UsageError(f"cannot parse --goal {args.goal!r}: {exc}") from exc


def _print_work(label: str, stats) -> None:
    print(
        f"{label}: {stats.probes} probes, {stats.rows_scanned} rows scanned, "
        f"{stats.facts_derived} facts derived"
    )


def _cmd_magic(args: argparse.Namespace) -> int:
    goal = _load_goal(args)
    program, inline_facts = parse_program_and_facts(
        _read(args.program), query=goal.predicate
    )
    governor = _budget_from(args)

    def body() -> int:
        mp = magic_transform(program, goal, sips=get_sips(args.sips))
        print(mp.summary())
        print()
        print(mp.program)
        if args.data or inline_facts:
            database = _database_from(args, inline_facts)
            check = check_equivalence(program, mp, goal, database, budget=governor)
            print(f"\nanswers ({len(check.transformed_answers)}):")
            for row in sorted(check.transformed_answers, key=repr):
                print(f"  {goal.predicate}{row!r}")
            _print_work("magic work", check.transformed_stats)
            if args.compare:
                _print_work("original work", check.original_stats)
                print("answers match" if check.equivalent else "answers DIFFER")
                return 0 if check.equivalent else 1
        return 0

    return _with_optional_trace(args, body)


def _cmd_pipeline(args: argparse.Namespace) -> int:
    goal = _load_goal(args)
    program, inline_facts = parse_program_and_facts(
        _read(args.program), query=goal.predicate
    )
    constraints = _load_constraints(args)
    governor = _budget_from(args)

    def body() -> int:
        report = run_pipeline(
            program,
            constraints,
            goal,
            order=args.order,
            sips=get_sips(args.sips),
            budget=governor,
        )
        print(report.summary())
        print()
        if report.program is None:
            print("% query unsatisfiable: the pipeline produced an empty program")
        else:
            print(report.program)
        if args.data or inline_facts:
            database = _database_from(args, inline_facts)
            check = check_equivalence(program, report, goal, database, budget=governor)
            print(f"\nanswers ({len(check.transformed_answers)}):")
            for row in sorted(check.transformed_answers, key=repr):
                print(f"  {goal.predicate}{row!r}")
            _print_work("pipeline work", check.transformed_stats)
            if args.compare:
                _print_work("original work", check.original_stats)
                print(
                    "answers match"
                    if check.equivalent
                    else "answers DIFFER — is the database consistent?"
                )
                return 0 if check.equivalent else 1
        return 0

    return _with_optional_trace(args, body)


def _session_from(args: argparse.Namespace) -> Session:
    program, inline_facts = parse_program_and_facts(_read(args.program), query=args.query)
    if program.query is None:
        raise UsageError("--query is required for this command")
    database = _database_from(args, inline_facts)
    journal: "IngestJournal | None | str" = "auto"
    if getattr(args, "no_journal", False):
        journal = None
    elif getattr(args, "journal_dir", None):
        from .persist import IngestJournal

        journal = IngestJournal(args.journal_dir)
    return Session(
        program,
        database,
        store=CheckpointStore(args.checkpoint_dir),
        journal=journal,
        checkpoint_every=args.checkpoint_every,
        strategy=args.strategy,
        engine=args.engine,
        plan_order=args.plan_order,
        workers=_workers_from(args),
        budget=_budget_from(args),
        throttle=args.throttle,
    )


def _print_session_outcome(session: Session, outcome) -> None:
    result = outcome.result
    program = result.program
    for step in outcome.fallback_chain:
        print(f"fallback: {step.describe()}")
    detail = "" if outcome.resumed_seq is None else f" from checkpoint {outcome.resumed_seq}"
    print(f"mode: {outcome.mode}{detail}")
    print(f"checkpoints written: {outcome.checkpoints_written}")
    rows = result.query_rows()
    print(f"answers ({len(rows)}):")
    for row in sorted(rows, key=repr):
        print(f"  {program.query}{row!r}")
    print(
        f"work (cumulative): {result.stats.iterations} iterations, "
        f"{result.stats.rows_scanned} rows scanned, "
        f"{result.stats.facts_derived} facts derived"
    )


def _cmd_session_run(args: argparse.Namespace) -> int:
    session = _session_from(args)
    _print_session_outcome(session, session.run())
    return 0


def _cmd_session_resume(args: argparse.Namespace) -> int:
    session = _session_from(args)
    _print_session_outcome(session, session.resume())
    return 0


def _cmd_session_recover(args: argparse.Namespace) -> int:
    session = _session_from(args)
    outcome = session.recover()
    _print_session_outcome(session, outcome)
    if outcome.replayed:
        print(f"journal records replayed: {outcome.replayed}")
    return 0


def _cmd_session_ingest(args: argparse.Namespace) -> int:
    session = _session_from(args)
    facts = parse_facts(_read(args.facts))
    if not facts:
        raise UsageError(f"--facts file {args.facts} holds no ground facts")
    outcome = session.ingest(facts)
    _print_session_outcome(session, outcome)
    print(
        "note: resumes must now see the ingested facts too "
        "(append them to the --data file)"
    )
    return 0


def _cmd_session_inspect(args: argparse.Namespace) -> int:
    import json as _json

    session = _session_from(args)
    print(_json.dumps(session.inspect(), indent=2, sort_keys=True))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeApp, run_server

    defaults = Budget(
        timeout=args.timeout,
        max_iterations=args.max_iterations,
        max_facts=args.max_facts,
    )
    if args.workers is not None and args.workers < 1:
        raise UsageError(f"--workers must be a positive integer, got {args.workers}")
    app = ServeApp(
        persist_root=None if args.persist_dir is None else Path(args.persist_dir),
        defaults=None if defaults.unlimited else defaults,
        cache_capacity=args.cache_capacity,
        workers=args.workers,
    )
    return run_server(app, host=args.host, port=args.port)


def _print_aborted_response(payload: dict) -> None:
    """Echo a daemon 503 body the way a local abort prints (exit 1)."""
    print(f"aborted: {payload.get('error')}", file=sys.stderr)
    partial = payload.get("partial")
    if partial:
        print(
            f"partial results: {partial.get('facts_derived', 0)} facts derived in "
            f"{partial.get('iterations', 0)} iterations "
            f"({partial.get('wall_time_seconds', 0.0):.3f}s, "
            f"{partial.get('rows_scanned', 0)} rows scanned)",
            file=sys.stderr,
        )
    if "partial_answers" in payload:
        print(f"partial answers: {payload['partial_answers']} rows", file=sys.stderr)


def _cmd_client(args: argparse.Namespace) -> int:
    import json as _json

    from .serve.client import ServeClient, ServeClientError

    with ServeClient.from_url(args.url) as client:
        try:
            if args.client_command == "health":
                payload = client.health()
            elif args.client_command == "stats":
                payload = client.stats()
            elif args.client_command == "register":
                payload = client.register(
                    args.name,
                    _read(args.program),
                    constraints=None if not args.constraints else _read(args.constraints),
                    facts=None if not args.data else _read(args.data),
                    query=args.query,
                    engine=args.engine,
                    storage=args.storage,
                    workers=args.workers,
                )
            elif args.client_command == "inspect":
                payload = client.inspect(args.name)
            elif args.client_command == "query":
                payload = client.query(
                    args.name,
                    args.goal,
                    mode=args.mode,
                    order=args.order,
                    sips=args.sips,
                    timeout=args.timeout,
                    max_facts=args.max_facts,
                    max_iterations=args.max_iterations,
                )
            else:  # ingest
                payload = client.ingest(args.name, _read(args.facts))
        except ServeClientError as exc:
            if exc.status == 503 and exc.payload.get("aborted"):
                _print_aborted_response(exc.payload)
                return 1
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (ConnectionError, OSError) as exc:
            print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
            return 2
    print(_json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    program, inline_facts = parse_program_and_facts(_read(args.program), query=args.query)
    constraints = _load_constraints(args)
    database = _database_from(args, inline_facts)

    sink = RingBufferSink()
    sinks = [sink]
    jsonl = None
    if args.jsonl:
        jsonl = JsonlSink(args.jsonl)
        sinks.append(jsonl)
    try:
        with tracing(*sinks):
            target = program
            if constraints:
                if program.query is None:
                    raise UsageError(
                        "--query is required to trace the semantic rewrite"
                    )
                report = optimize(program, constraints)
                target = report.program
            if target is not None:
                evaluate(target, database)
    finally:
        if jsonl is not None:
            jsonl.close()
    print(render_trace(sink, limit=args.limit))
    if args.jsonl:
        print(f"\n{len(sink)} events written to {args.jsonl}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    program, inline_facts = parse_program_and_facts(_read(args.program), query=args.query)
    database = _database_from(args, inline_facts)
    profile, result = profile_evaluation(
        program,
        database,
        strategy=args.strategy,
        engine=args.engine,
        plan_order=args.plan_order,
        workers=_workers_from(args),
        supervision=_supervision_from(args),
    )
    print(profile.render(top=args.top))
    if program.query is not None:
        print(f"\nanswers: {len(result.query_rows())} rows in {program.query}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import render_results, run_bench, write_results

    workloads = args.workloads.split(",") if args.workloads else None
    repeat = args.repeat if args.repeat is not None else (1 if args.quick else 3)
    try:
        payload = run_bench(
            workloads=workloads,
            quick=args.quick,
            repeat=repeat,
            timeout=args.timeout,
            max_iterations=args.max_iterations,
            max_facts=args.max_facts,
            storage=args.storage,
            workers=args.workers,
        )
    except ValueError as exc:
        raise UsageError(str(exc)) from exc
    print(render_results(payload))
    if args.json:
        write_results(payload, args.output)
        print(f"\nresults written to {args.output}")
    if payload.get("budget_exceeded"):
        return 1
    return 0 if payload["ok"] else 1


def _cmd_report(args: argparse.Namespace) -> int:
    if not args.regenerate:
        raise UsageError("pass --regenerate (optionally with --check)")
    stale, _content = regenerate_experiments(
        args.benchmarks, args.output, check=args.check
    )
    if args.check:
        if stale:
            print(
                f"{args.output} is stale — regenerate with: "
                "python -m repro report --regenerate"
            )
            return 1
        print(f"{args.output} is up to date")
        return 0
    print(f"{'regenerated' if stale else 'unchanged'}: {args.output}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    constraints = parse_constraints(_read(args.constraints_file))
    database = _load_database(args.data)
    bad = 0
    for ic in constraints:
        count = violations(ic, database)
        if count:
            bad += 1
            print(f"VIOLATED ({count} instantiation(s)): {ic}")
    if bad:
        print(f"{bad} of {len(constraints)} constraints violated")
        return 1
    print(f"all {len(constraints)} constraints satisfied")
    return 0


def _cmd_satisfiable(args: argparse.Namespace) -> int:
    program = _load_program(args)
    constraints = _load_constraints(args)
    answer = is_satisfiable(program, constraints)
    print("satisfiable" if answer else "unsatisfiable")
    return 0 if answer else 1


def _cmd_empty(args: argparse.Namespace) -> int:
    program = parse_program(_read(args.program))
    constraints = _load_constraints(args)
    if is_empty_program(program, constraints):
        print("empty: no IDB predicate is satisfiable")
        for rule in unsatisfiable_initialization_rules(program, constraints):
            print(f"  unsatisfiable initialization rule: {rule}")
        return 1
    print("nonempty")
    return 0


def _cmd_contained(args: argparse.Namespace) -> int:
    program = _load_program(args)
    rules = parse_rules(_read(args.ucq))
    union = UnionOfConjunctiveQueries(
        tuple(ConjunctiveQuery.from_rule(rule) for rule in rules)
    )
    answer = program_contained_in_ucq(program, union)
    print("contained" if answer else "not contained")
    return 0 if answer else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semantic query optimization in Datalog programs (PODS 1995)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def program_command(name: str, help_text: str):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("program", help="program file (Datalog rules)")
        cmd.add_argument("--constraints", help="integrity constraint file")
        cmd.add_argument("--query", help="query predicate name")
        return cmd

    cmd = program_command("optimize", "rewrite a program to incorporate its constraints")
    cmd.add_argument("--explain", action="store_true", help="print the full account")
    cmd.add_argument("--dot", help="write the query tree as a DOT file")
    cmd.set_defaults(func=_cmd_optimize)

    def trace_flag(cmd) -> None:
        cmd.add_argument(
            "--trace", action="store_true",
            help="run under a tracer and append a per-span summary",
        )

    def engine_flags(cmd) -> None:
        cmd.add_argument(
            "--engine", default="slots", choices=("slots", "interpreted"),
            help="join engine: compiled slot plans (default) or the interpreter",
        )
        cmd.add_argument(
            "--plan-order", default="cost", choices=("cost", "greedy"),
            help="compiled-plan body order: cost-based (default) or greedy",
        )
        cmd.add_argument(
            "--storage", default="rows", choices=STORAGES,
            help="fact storage: per-row tuple sets (default) or "
            "dictionary-encoded column arrays with block-at-a-time joins",
        )
        cmd.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="shard semi-naive evaluation across N forked worker "
            "processes (requires the slot engine; evaluation runs on "
            "columnar storage — see docs/parallel.md)",
        )
        cmd.add_argument(
            "--worker-retries", type=int, default=None, metavar="N",
            help="worker-fleet supervision retry budget: total worker "
            "restarts allowed per evaluation before degrading to fewer "
            "workers and finally sequential (default 3; requires "
            "--workers — see docs/robustness.md)",
        )

    def budget_flags(cmd) -> None:
        # The type= callables raise UsageError with the same normalized
        # message the serving daemon returns as HTTP 400, so CLI and
        # daemon diagnose malformed limits identically.
        cmd.add_argument(
            "--timeout", type=_timeout_value, default=None, metavar="SECONDS",
            help="wall-clock budget for the whole command; on expiry the "
            "rewrite degrades and evaluation stops with partial results "
            "(exit code 1)",
        )
        cmd.add_argument(
            "--max-facts", type=_max_facts_value, default=None, metavar="N",
            help="stop evaluation after deriving more than N facts (exit code 1)",
        )
        cmd.add_argument(
            "--max-iterations", type=_max_iterations_value, default=None, metavar="N",
            help="stop evaluation after N semi-naive iterations, total "
            "across SCCs (exit code 1)",
        )

    cmd = program_command("run", "evaluate a program over a fact base")
    cmd.add_argument("--data", help="fact file (inline program facts also count)")
    cmd.add_argument(
        "--compare", action="store_true", help="also run the optimized program"
    )
    trace_flag(cmd)
    engine_flags(cmd)
    budget_flags(cmd)
    cmd.set_defaults(func=_cmd_run)

    cmd = sub.add_parser("magic", help="magic-sets transformation for a bound query atom")
    cmd.add_argument("program", help="program file (Datalog rules)")
    cmd.add_argument("--goal", required=True, help="query atom, e.g. 'p(1, Y)'")
    cmd.add_argument(
        "--sips", default="left-to-right", choices=sorted(STRATEGIES),
        help="sideways information passing strategy",
    )
    cmd.add_argument("--data", help="fact file (evaluate the magic program)")
    cmd.add_argument(
        "--compare", action="store_true",
        help="also evaluate the original program and compare answers",
    )
    trace_flag(cmd)
    budget_flags(cmd)
    cmd.set_defaults(func=_cmd_magic)

    cmd = sub.add_parser(
        "pipeline", help="semantic rewrite + magic sets, chained in either order"
    )
    cmd.add_argument("program", help="program file (Datalog rules)")
    cmd.add_argument("--constraints", help="integrity constraint file")
    cmd.add_argument("--goal", required=True, help="query atom, e.g. 'p(1, Y)'")
    cmd.add_argument(
        "--order", default="semantic-first", choices=PIPELINE_ORDERS,
        help="stage ordering",
    )
    cmd.add_argument(
        "--sips", default="left-to-right", choices=sorted(STRATEGIES),
        help="sideways information passing strategy",
    )
    cmd.add_argument("--data", help="fact file (evaluate the final program)")
    cmd.add_argument(
        "--compare", action="store_true",
        help="also evaluate the original program and compare answers",
    )
    trace_flag(cmd)
    budget_flags(cmd)
    cmd.set_defaults(func=_cmd_pipeline)

    session = sub.add_parser(
        "session",
        help="durable evaluation sessions: run / resume / recover / ingest / inspect",
    )
    session_sub = session.add_subparsers(dest="session_command", required=True)

    def session_command(name: str, help_text: str, func):
        cmd = session_sub.add_parser(name, help=help_text)
        cmd.add_argument("program", help="program file (Datalog rules, inline facts allowed)")
        cmd.add_argument("--query", help="query predicate name")
        cmd.add_argument("--data", help="fact file (inline program facts also count)")
        cmd.add_argument(
            "--checkpoint-dir", required=True, metavar="DIR",
            help="checkpoint directory (created if missing)",
        )
        cmd.add_argument(
            "--checkpoint-every", type=int, default=1, metavar="N",
            help="checkpoint after every N semi-naive rounds (default 1; "
            "0 = only the final complete checkpoint)",
        )
        cmd.add_argument(
            "--strategy", default="seminaive", choices=("seminaive", "naive"),
            help="evaluation strategy (checkpoints are strategy-bound)",
        )
        cmd.add_argument(
            "--throttle", type=float, default=0.0, metavar="SECONDS",
            help="sleep after each checkpoint save (crash-test pacing)",
        )
        cmd.add_argument(
            "--journal-dir", metavar="DIR",
            help="write-ahead ingest journal directory "
            "(default: <checkpoint-dir>/journal)",
        )
        cmd.add_argument(
            "--no-journal", action="store_true",
            help="disable the write-ahead ingest journal (ingests are "
            "then only durable once their checkpoint lands)",
        )
        engine_flags(cmd)
        budget_flags(cmd)
        cmd.set_defaults(func=func)
        return cmd

    session_command(
        "run", "evaluate with periodic checkpoints", _cmd_session_run
    )
    session_command(
        "resume", "restart from the newest valid checkpoint", _cmd_session_resume
    )
    session_command(
        "recover",
        "crash recovery: newest complete checkpoint + journal replay",
        _cmd_session_recover,
    )
    cmd = session_command(
        "ingest", "add EDB facts and re-derive incrementally", _cmd_session_ingest
    )
    cmd.add_argument(
        "--facts", required=True, metavar="FILE",
        help="file of new ground facts to ingest",
    )
    session_command(
        "inspect", "summarize the checkpoint store as JSON", _cmd_session_inspect
    )

    cmd = sub.add_parser(
        "serve", help="boot the multi-tenant HTTP serving daemon"
    )
    cmd.add_argument("--host", default="127.0.0.1", help="bind address")
    cmd.add_argument("--port", type=int, default=8484, help="bind port (0 = ephemeral)")
    cmd.add_argument(
        "--persist-dir", metavar="DIR",
        help="root directory for per-tenant checkpoints (enables warm restart)",
    )
    cmd.add_argument(
        "--cache-capacity", type=int, default=128, metavar="N",
        help="pipeline artifact cache entries (default 128)",
    )
    cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="default worker count for tenant materialization: shard "
        "each tenant's fixpoint runs across N forked processes "
        "(per-tenant 'workers' on register overrides)",
    )
    budget_flags(cmd)  # the server-side ceiling every request is clamped to
    cmd.set_defaults(func=_cmd_serve)

    client = sub.add_parser("client", help="talk to a running serving daemon")
    client.add_argument(
        "--url", default="http://127.0.0.1:8484", help="daemon base URL"
    )
    client_sub = client.add_subparsers(dest="client_command", required=True)
    ccmd = client_sub.add_parser("health", help="GET /healthz")
    ccmd.set_defaults(func=_cmd_client)
    ccmd = client_sub.add_parser("stats", help="GET /stats")
    ccmd.set_defaults(func=_cmd_client)
    ccmd = client_sub.add_parser("register", help="PUT /programs/{name}")
    ccmd.add_argument("name", help="tenant name")
    ccmd.add_argument("--program", required=True, help="program file (inline facts allowed)")
    ccmd.add_argument("--constraints", help="integrity constraint file")
    ccmd.add_argument("--data", help="fact file")
    ccmd.add_argument("--query", help="query predicate name")
    ccmd.add_argument("--engine", choices=("slots", "interpreted"), help="join engine")
    ccmd.add_argument(
        "--storage", choices=STORAGES,
        help="tenant fact storage backend (daemon default: rows)",
    )
    ccmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard this tenant's fixpoint runs across N forked processes",
    )
    ccmd.set_defaults(func=_cmd_client)
    ccmd = client_sub.add_parser("inspect", help="GET /programs/{name}")
    ccmd.add_argument("name", help="tenant name")
    ccmd.set_defaults(func=_cmd_client)
    ccmd = client_sub.add_parser("query", help="POST /programs/{name}/query")
    ccmd.add_argument("name", help="tenant name")
    ccmd.add_argument("--goal", required=True, help="query atom, e.g. 'p(1, Y)'")
    ccmd.add_argument(
        "--mode", default="magic", choices=("magic", "materialized"),
        help="answer via the specialized pipeline (default) or the resident fixpoint",
    )
    ccmd.add_argument(
        "--order", default="semantic-first", choices=PIPELINE_ORDERS,
        help="pipeline stage ordering",
    )
    ccmd.add_argument(
        "--sips", default="left-to-right", choices=sorted(STRATEGIES),
        help="sideways information passing strategy",
    )
    budget_flags(ccmd)  # per-request limits, clamped by the server ceiling
    ccmd.set_defaults(func=_cmd_client)
    ccmd = client_sub.add_parser("ingest", help="POST /programs/{name}/ingest")
    ccmd.add_argument("name", help="tenant name")
    ccmd.add_argument("--facts", required=True, metavar="FILE", help="new ground facts")
    ccmd.set_defaults(func=_cmd_client)

    cmd = program_command("trace", "print the structured trace of a rewrite + evaluation")
    cmd.add_argument("--data", help="fact file (inline program facts also count)")
    cmd.add_argument("--limit", type=int, help="print at most N events")
    cmd.add_argument("--jsonl", help="also write the trace as JSON Lines to this file")
    cmd.set_defaults(func=_cmd_trace)

    cmd = sub.add_parser("profile", help="per-rule / per-predicate hot-path breakdown")
    cmd.add_argument("program", help="program file (Datalog rules, inline facts allowed)")
    cmd.add_argument("--query", help="query predicate name")
    cmd.add_argument("--data", help="fact file (inline program facts also count)")
    cmd.add_argument("--top", type=int, default=10, help="show the top K rules (default 10)")
    cmd.add_argument(
        "--strategy", default="seminaive", choices=("seminaive", "naive"),
        help="evaluation strategy to profile",
    )
    engine_flags(cmd)
    cmd.set_defaults(func=_cmd_profile)

    cmd = sub.add_parser(
        "bench", help="engine benchmark suite (interpreted vs compiled plans)"
    )
    cmd.add_argument(
        "--json", action="store_true", help="write the results payload to --output"
    )
    cmd.add_argument(
        "--output", default="BENCH_results.json", help="results path (with --json)"
    )
    cmd.add_argument(
        "--quick", action="store_true",
        help="CI-smoke sizes: tiny workloads, repeat=1 unless overridden",
    )
    cmd.add_argument(
        "--repeat", type=int, default=None,
        help="timing runs per engine (default 3, or 1 with --quick)",
    )
    cmd.add_argument(
        "--workloads", help="comma-separated subset (default: the whole suite)"
    )
    cmd.add_argument(
        "--storage", choices=STORAGES, default=None,
        help="force every engine config onto one storage backend "
        "(default: each config's own choice)",
    )
    cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="also benchmark sharded evaluation at worker counts "
        "1, 2, ... N (powers of two), gated on digest equality",
    )
    budget_flags(cmd)
    cmd.set_defaults(func=_cmd_bench)

    cmd = sub.add_parser("report", help="regenerate EXPERIMENTS.md from the benchmarks")
    cmd.add_argument(
        "--regenerate", action="store_true",
        help="rebuild the report from benchmarks/*.py experiment() definitions",
    )
    cmd.add_argument(
        "--check", action="store_true",
        help="don't write; exit 1 when the committed report is stale",
    )
    cmd.add_argument("--benchmarks", default="benchmarks", help="benchmarks directory")
    cmd.add_argument("--output", default="EXPERIMENTS.md", help="report path")
    cmd.set_defaults(func=_cmd_report)

    cmd = sub.add_parser("check", help="check facts against constraints")
    cmd.add_argument("constraints_file", help="integrity constraint file")
    cmd.add_argument("--data", required=True, help="fact file")
    cmd.set_defaults(func=_cmd_check)

    cmd = program_command("satisfiable", "decide query satisfiability (Thm 5.1)")
    cmd.set_defaults(func=_cmd_satisfiable)

    cmd = sub.add_parser("empty", help="decide program emptiness (Prop 5.2)")
    cmd.add_argument("program", help="program file")
    cmd.add_argument("--constraints", help="integrity constraint file")
    cmd.set_defaults(func=_cmd_empty)

    cmd = program_command("contained", "program ⊑ union of CQs (Prop 5.1)")
    cmd.add_argument("--ucq", required=True, help="file of CQ rules over the query head")
    cmd.set_defaults(func=_cmd_contained)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point.  Exit codes: 0 success, 1 budget exceeded (partial
    results were printed), 2 usage or input error."""
    parser = build_parser()
    try:
        # parse_args sits inside the try: malformed --timeout/--max-facts
        # values raise UsageError from their type= callables and must
        # reach the exit-code-2 handler below, not a traceback.
        args = parser.parse_args(argv)
        return args.func(args)
    except EvaluationAborted as exc:
        print(f"aborted: {exc}", file=sys.stderr)
        stats = exc.stats
        partial = exc.partial
        if stats is None and partial is not None:
            stats = partial.stats
        if stats is not None:
            print(
                f"partial results: {stats.facts_derived} facts derived in "
                f"{stats.iterations} iterations "
                f"({stats.wall_time_seconds:.3f}s, "
                f"{stats.rows_scanned} rows scanned)",
                file=sys.stderr,
            )
        if partial is not None and partial.program.query is not None:
            try:
                rows = partial.query_rows()
            except (KeyError, ValueError):
                rows = frozenset()
            print(
                f"partial answers: {len(rows)} rows in {partial.program.query}",
                file=sys.stderr,
            )
        return 1
    except BrokenPipeError:
        # stdout was closed by a pager/head downstream; not our error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
