"""Sideways information passing strategies (SIPS) over rule bodies.

A SIPS decides, for one rule evaluated under a head binding pattern,
the order in which body items are processed — and therefore which
bindings "pass sideways" into each subgoal.  The adornment propagation
(:mod:`repro.magic.adorn`) and the magic transformation
(:mod:`repro.magic.transform`) both follow the same strategy, so the
demand the magic predicates compute matches what a top-down engine
using that strategy would actually ask.

A strategy is a plain callable ``(rule, bound) -> tuple[BodyItem, ...]``
returning a permutation of ``rule.body``, where ``bound`` is the set of
head variables bound by the adornment.  Two strategies ship by default:

* :func:`left_to_right` — the textbook default: body items keep their
  declared order;
* :func:`most_bound_first` — greedy: always pick next the positive
  literal with the most bound argument positions (mirroring the
  engine's own join planner), pulling filters forward as soon as they
  are evaluable.

Binding propagation through a body prefix is shared here as
:func:`bound_after` / :func:`binding_profile`: positive literals bind
their variables, ``=`` order atoms propagate bindings across the
equality, and other filters bind nothing.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Sequence

from ..datalog.atoms import BodyItem, Literal, OrderAtom
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable, is_variable

__all__ = [
    "SipsStrategy",
    "STRATEGIES",
    "get_sips",
    "left_to_right",
    "most_bound_first",
    "bound_after",
    "binding_profile",
    "check_permutation",
]

#: A SIPS: ``(rule, bound head variables) -> body permutation``.
SipsStrategy = Callable[[Rule, frozenset], tuple[BodyItem, ...]]


def bound_after(item: BodyItem, bound: frozenset) -> frozenset:
    """The bound-variable set after processing ``item`` with ``bound`` held.

    Positive literals bind all their variables; an ``=`` order atom
    propagates a binding from a bound (or constant) side to a variable
    on the other side; negated literals and non-equality order atoms
    are pure filters and bind nothing.
    """
    if isinstance(item, Literal):
        if item.positive:
            return bound | item.variables()
        return bound
    if isinstance(item, OrderAtom) and item.op == "=":
        extra: set[Variable] = set()
        left_held = isinstance(item.left, Constant) or item.left in bound
        right_held = isinstance(item.right, Constant) or item.right in bound
        if left_held and is_variable(item.right):
            extra.add(item.right)  # type: ignore[arg-type]
        if right_held and is_variable(item.left):
            extra.add(item.left)  # type: ignore[arg-type]
        if extra:
            return bound | extra
    return bound


def binding_profile(
    body: Sequence[BodyItem], bound: frozenset
) -> list[frozenset]:
    """The bound-variable set *before* each item of ``body`` in order."""
    profile: list[frozenset] = []
    current = frozenset(bound)
    for item in body:
        profile.append(current)
        current = bound_after(item, current)
    return profile


def _evaluable(item: BodyItem, bound: frozenset) -> bool:
    """Whether a filter can run (or an ``=`` atom can bind) at this point."""
    if isinstance(item, OrderAtom) and item.op == "=":
        left_held = isinstance(item.left, Constant) or item.left in bound
        right_held = isinstance(item.right, Constant) or item.right in bound
        return left_held or right_held
    return item.variables() <= bound


def left_to_right(rule: Rule, bound: frozenset) -> tuple[BodyItem, ...]:
    """The default SIPS: process the body in its declared order."""
    return rule.body


def most_bound_first(rule: Rule, bound: frozenset) -> tuple[BodyItem, ...]:
    """Greedy SIPS mirroring the engine's join planner.

    Positive literals are picked by the number of bound argument
    positions (ties broken toward fewer fresh variables, then declared
    order); filters and binding ``=`` atoms are flushed into the order
    as soon as they become evaluable.
    """
    current: frozenset = frozenset(bound)
    ordered: list[BodyItem] = []
    positives: list[tuple[int, Literal]] = []
    others: list[BodyItem] = []
    for index, item in enumerate(rule.body):
        if isinstance(item, Literal) and item.positive:
            positives.append((index, item))
        else:
            others.append(item)

    def flush() -> None:
        nonlocal current
        progressing = True
        while progressing:
            progressing = False
            for item in list(others):
                if _evaluable(item, current):
                    ordered.append(item)
                    others.remove(item)
                    current = bound_after(item, current)
                    progressing = True

    flush()
    while positives:
        best = max(
            positives,
            key=lambda pair: (
                sum(
                    1
                    for arg in pair[1].args
                    if isinstance(arg, Constant) or arg in current
                ),
                -len(pair[1].variables() - current),
                -pair[0],
            ),
        )
        positives.remove(best)
        ordered.append(best[1])
        current = bound_after(best[1], current)
        flush()
    # Safety of the rule guarantees all filters are evaluable by now;
    # keep any stragglers in declared order so the result stays a
    # permutation even for unsafe intermediate rules.
    ordered.extend(others)
    return tuple(ordered)


#: The registry of named strategies (CLI ``--sips`` values).
STRATEGIES: dict[str, SipsStrategy] = {
    "left-to-right": left_to_right,
    "most-bound": most_bound_first,
}


def get_sips(name: str) -> SipsStrategy:
    """Look up a strategy by registry name."""
    try:
        return STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise ValueError(f"unknown SIPS strategy {name!r} (known: {known})") from None


def check_permutation(rule: Rule, order: Sequence[BodyItem]) -> tuple[BodyItem, ...]:
    """Validate that ``order`` is a permutation of ``rule.body``.

    Raised errors name the rule so a misbehaving pluggable strategy is
    easy to track down.
    """
    if Counter(order) != Counter(rule.body):
        raise ValueError(
            f"SIPS returned an invalid body permutation for rule {rule}: {list(order)}"
        )
    return tuple(order)
