"""The magic-sets transformation: demand predicates + guarded rules.

Given a program and a query atom with bound (constant) arguments,
:func:`magic_transform` produces a program that computes exactly the
answers to the query atom while deriving only facts *demanded* by it:

1. the program is adorned by binding patterns from the query atom
   (:mod:`repro.magic.adorn`), bodies ordered by a SIPS;
2. every adorned predicate ``p__α`` gets a *magic* predicate
   ``m_p__α`` over its bound positions; the query seeds it with one
   fact holding the query atom's constants;
3. each adorned rule ``p__α(t̄) :- B₁, …, Bₙ`` becomes a *guarded*
   rule ``p__α(t̄) :- m_p__α(t̄ᵇ), B₁, …, Bₙ`` — the head can only
   fire for demanded bindings;
4. for each IDB subgoal ``Bᵢ = q__β(s̄)``, a *magic rule*
   ``m_q__β(s̄ᵇ) :- m_p__α(t̄ᵇ), B₁, …, Bᵢ₋₁`` records the demand the
   prefix passes sideways into it.

Filters (order atoms, negated EDB literals) are kept in guarded rules
unconditionally — correctness lives there — and included in magic-rule
prefixes only when the prefix already binds their variables; dropping
an unevaluable filter merely over-approximates demand, which is sound.
Negation stays on EDB predicates only (magic and adorned predicates
never appear negated), so the transformed program remains in the same
stratified ``{not}``-class as its input.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.atoms import Atom, BodyItem, Literal, OrderAtom
from ..datalog.database import Database
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant
from ..observability.trace import get_tracer
from .adorn import AdornedProgram, adorn_program, bound_args
from .sips import SipsStrategy, bound_after, left_to_right

__all__ = ["MAGIC_PREFIX", "MagicProgram", "magic_transform", "match_query_atom"]

#: Prefix of magic (demand) predicate names.
MAGIC_PREFIX = "m_"


def match_query_atom(row: tuple, query_atom: Atom) -> bool:
    """Whether a relation row matches the query atom's pattern.

    Constants must equal the row value; repeated variables must bind
    consistently across their positions.
    """
    binding: dict = {}
    for value, arg in zip(row, query_atom.args):
        if isinstance(arg, Constant):
            if arg.value != value:
                return False
        else:
            seen = binding.setdefault(arg, value)
            if seen != value:
                return False
    return True


@dataclass(frozen=True)
class MagicProgram:
    """The transformed program plus everything needed to interpret it."""

    program: Program
    query_atom: Atom
    adorned: AdornedProgram
    seed: Rule
    magic_names: dict[str, str]

    @property
    def answer_predicate(self) -> str:
        """The predicate of the transformed program holding the answers."""
        return self.adorned.adorned_query

    def answers(self, database: Database) -> frozenset:
        """Evaluate the magic program and return the query-atom answers."""
        from ..datalog.evaluation import evaluate

        rows = evaluate(self.program, database).query_rows()
        return frozenset(r for r in rows if match_query_atom(r, self.query_atom))

    def summary(self) -> str:
        patterns = self.adorned.patterns()
        lines = [
            f"query atom: {self.query_atom}",
            f"adorned predicates: {sum(len(v) for v in patterns.values())} "
            + "("
            + "; ".join(f"{p}: {', '.join(ads)}" for p, ads in patterns.items())
            + ")",
            f"rules: {len(self.program.rules)} "
            f"(from {len(self.adorned.program.rules)} adorned, "
            f"{len(self.magic_names)} magic predicates)",
            f"seed: {self.seed}",
        ]
        return "\n".join(lines)


def magic_transform(
    program: Program,
    query_atom: Atom,
    *,
    sips: SipsStrategy = left_to_right,
) -> MagicProgram:
    """Apply the magic-sets transformation for ``query_atom``.

    On any database, the rows of :attr:`MagicProgram.answer_predicate`
    matching the query atom equal the original query predicate's rows
    matching it (see :func:`repro.magic.pipeline.check_equivalence`).
    """
    tracer = get_tracer()
    with tracer.span(
        "magic.transform", query=query_atom.predicate, rules=len(program.rules)
    ) as transform_span:
        adorned = adorn_program(program, query_atom, sips=sips)
        result = _build_magic(program, query_atom, adorned)
        if tracer.enabled:
            transform_span.set(
                adorned_rules=len(adorned.rules),
                magic_predicates=len(result.magic_names),
                transformed_rules=len(result.program.rules),
                seed=repr(result.seed.head),
            )
    return result


def _build_magic(
    program: Program, query_atom: Atom, adorned: AdornedProgram
) -> MagicProgram:
    """Assemble the magic program from an already-adorned program."""
    taken = set(adorned.program.idb_predicates) | set(adorned.program.edb_predicates)
    magic_names: dict[str, str] = {}
    for name in adorned.names.values():
        candidate = MAGIC_PREFIX + name
        while candidate in taken:
            candidate += "x"
        taken.add(candidate)
        magic_names[name] = candidate

    rules: list[Rule] = []
    seen: set[Rule] = set()

    def emit(rule: Rule) -> None:
        if rule not in seen:
            seen.add(rule)
            rules.append(rule)

    # The seed: the query atom's constants are the initial demand.
    seed = Rule(
        Atom(
            magic_names[adorned.adorned_query],
            bound_args(query_atom, adorned.query_adornment),
        ),
        (),
    )
    emit(seed)

    for ar in adorned.rules:
        head = ar.rule.head
        magic_head = Atom(
            magic_names[head.predicate], bound_args(head, ar.head_adornment)
        )
        subgoal_at = {index: (pred, ad) for index, pred, ad in ar.idb_subgoals}
        # Magic rules: one per IDB subgoal, over the safe prefix.
        prefix: list[BodyItem] = [Literal(magic_head)]
        current = frozenset(magic_head.variables())
        for index, item in enumerate(ar.rule.body):
            if index in subgoal_at:
                _, sub_adornment = subgoal_at[index]
                assert isinstance(item, Literal)
                emit(
                    Rule(
                        Atom(
                            magic_names[item.predicate],
                            bound_args(item.atom, sub_adornment),
                        ),
                        tuple(prefix),
                    )
                )
            if isinstance(item, Literal) and item.positive:
                prefix.append(item)
            elif isinstance(item, OrderAtom) and item.op == "=":
                # Binding equality: include when it can bind or filter.
                if bound_after(item, current) != current or item.variables() <= current:
                    prefix.append(item)
            elif item.variables() <= current:
                prefix.append(item)
            current = bound_after(item, current)
        # The guarded rule: demand gates every head derivation.
        emit(Rule(head, (Literal(magic_head),) + ar.rule.body))

    transformed = Program(tuple(rules), adorned.adorned_query, validate=False)
    return MagicProgram(
        program=transformed,
        query_atom=query_atom,
        adorned=adorned,
        seed=seed,
        magic_names=magic_names,
    )
