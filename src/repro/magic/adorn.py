"""Predicate adornment by binding patterns (``b``/``f`` strings).

This is the *magic-sets* notion of adornment — which argument positions
of a predicate are bound when a top-down evaluation reaches it — and is
deliberately distinct from the paper's constraint adornments in
:mod:`repro.core.adornments` (triplet sets recording partial mappings
of integrity constraints).  Both vocabularies coexist in the pipeline:
the semantic rewrite specializes predicates by constraint adornments,
the magic transform then specializes the result by binding patterns.

Starting from a query atom (its constant arguments are bound, its
variables free), :func:`adorn_program` propagates binding patterns
through the program: for each reachable ``(predicate, adornment)``
pair, every rule for the predicate is walked in the order chosen by a
SIPS (:mod:`repro.magic.sips`), each IDB subgoal is adorned by the
variables bound at that point, and newly seen pairs are enqueued.  The
result is the *adorned program*: one renamed copy
(``p__bf(X, Y) :- ...``) of each rule per reachable binding pattern,
with bodies stored in SIPS order so the magic transformation can read
prefixes off them directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.atoms import Atom, Literal
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Term, Variable
from .sips import SipsStrategy, bound_after, check_permutation, left_to_right

__all__ = [
    "ALL_BOUND",
    "AdornedRule",
    "AdornedProgram",
    "adornment_of",
    "adorned_name",
    "bound_args",
    "bound_variables",
    "adorn_program",
]

#: Separator between a predicate name and its binding pattern.
_SEPARATOR = "__"


def ALL_BOUND(arity: int) -> str:
    """The all-bound adornment of the given arity."""
    return "b" * arity


def adornment_of(atom: Atom, bound: frozenset) -> str:
    """The binding pattern of ``atom`` given the bound variables.

    An argument position is bound (``b``) when it holds a constant or a
    variable in ``bound``; otherwise it is free (``f``).
    """
    return "".join(
        "b" if isinstance(arg, Constant) or arg in bound else "f"
        for arg in atom.args
    )


def adorned_name(predicate: str, adornment: str) -> str:
    """The canonical adorned predicate name, e.g. ``p__bf``."""
    return f"{predicate}{_SEPARATOR}{adornment}"


def bound_args(atom: Atom, adornment: str) -> tuple[Term, ...]:
    """The arguments of ``atom`` at the bound positions of ``adornment``."""
    return tuple(arg for arg, a in zip(atom.args, adornment) if a == "b")


def bound_variables(atom: Atom, adornment: str) -> frozenset:
    """The variables of ``atom`` at bound positions."""
    return frozenset(
        arg
        for arg, a in zip(atom.args, adornment)
        if a == "b" and isinstance(arg, Variable)
    )


@dataclass(frozen=True)
class AdornedRule:
    """One rule copy specialized to a head binding pattern.

    ``rule`` is the renamed copy with its body in SIPS order;
    ``source`` is the original rule; ``idb_subgoals`` lists, for each
    IDB subgoal of the adorned body, its body index, original predicate
    and adornment — exactly the sites where the magic transformation
    emits demand rules.
    """

    rule: Rule
    source: Rule
    head_predicate: str
    head_adornment: str
    idb_subgoals: tuple[tuple[int, str, str], ...]


@dataclass(frozen=True)
class AdornedProgram:
    """The adorned program plus the naming of its binding patterns."""

    program: Program
    query_predicate: str
    query_adornment: str
    adorned_query: str
    rules: tuple[AdornedRule, ...]
    names: dict[tuple[str, str], str]

    def name_of(self, predicate: str, adornment: str) -> str:
        return self.names[(predicate, adornment)]

    def patterns(self) -> dict[str, tuple[str, ...]]:
        """Reached binding patterns per original predicate, sorted."""
        grouped: dict[str, list[str]] = {}
        for predicate, adornment in self.names:
            grouped.setdefault(predicate, []).append(adornment)
        return {p: tuple(sorted(ads)) for p, ads in sorted(grouped.items())}


def _fresh_name(base: str, taken: set[str]) -> str:
    candidate = base
    while candidate in taken:
        candidate += "x"
    taken.add(candidate)
    return candidate


def adorn_program(
    program: Program,
    query_atom: Atom,
    *,
    sips: SipsStrategy = left_to_right,
) -> AdornedProgram:
    """Propagate binding patterns from ``query_atom`` through ``program``.

    ``query_atom`` must use an IDB predicate of ``program``; its
    constant arguments are the bound positions of the query adornment.
    Returns the adorned program with query predicate set to the adorned
    query name.
    """
    idb = program.idb_predicates
    if query_atom.predicate not in idb:
        raise ValueError(
            f"query atom {query_atom} does not use an IDB predicate of the program"
        )
    if query_atom.arity != program.arity_of(query_atom.predicate):
        raise ValueError(
            f"query atom {query_atom} has arity {query_atom.arity}, "
            f"expected {program.arity_of(query_atom.predicate)}"
        )

    taken = set(idb) | set(program.edb_predicates)
    names: dict[tuple[str, str], str] = {}

    def name_for(predicate: str, adornment: str) -> str:
        key = (predicate, adornment)
        if key not in names:
            names[key] = _fresh_name(adorned_name(predicate, adornment), taken)
        return names[key]

    query_adornment = adornment_of(query_atom, frozenset())
    worklist: list[tuple[str, str]] = [(query_atom.predicate, query_adornment)]
    seen: set[tuple[str, str]] = set(worklist)
    adorned_rules: list[AdornedRule] = []

    while worklist:
        predicate, adornment = worklist.pop()
        head_name = name_for(predicate, adornment)
        for rule in program.rules_for(predicate):
            bound = bound_variables(rule.head, adornment)
            order = check_permutation(rule, sips(rule, bound))
            body: list = []
            subgoals: list[tuple[int, str, str]] = []
            current = bound
            for item in order:
                if (
                    isinstance(item, Literal)
                    and item.positive
                    and item.predicate in idb
                ):
                    sub_adornment = adornment_of(item.atom, current)
                    body.append(
                        Literal(Atom(name_for(item.predicate, sub_adornment), item.args))
                    )
                    subgoals.append((len(body) - 1, item.predicate, sub_adornment))
                    if (item.predicate, sub_adornment) not in seen:
                        seen.add((item.predicate, sub_adornment))
                        worklist.append((item.predicate, sub_adornment))
                else:
                    body.append(item)
                current = bound_after(item, current)
            adorned_rules.append(
                AdornedRule(
                    rule=Rule(Atom(head_name, rule.head.args), tuple(body)),
                    source=rule,
                    head_predicate=predicate,
                    head_adornment=adornment,
                    idb_subgoals=tuple(subgoals),
                )
            )

    adorned_query = name_for(query_atom.predicate, query_adornment)
    adorned = Program(
        tuple(ar.rule for ar in adorned_rules), adorned_query, validate=False
    )
    return AdornedProgram(
        program=adorned,
        query_predicate=query_atom.predicate,
        query_adornment=query_adornment,
        adorned_query=adorned_query,
        rules=tuple(adorned_rules),
        names=names,
    )
