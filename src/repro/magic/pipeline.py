"""The optimization pipeline: semantic rewrite ∘ magic sets, either order.

The paper's rewrite prunes derivations that violate the integrity
constraints; magic sets prune derivations the query atom never demands.
The two compose (cf. Alviano et al., "Enhancing magic sets with an
application to ontological reasoning"), and :func:`run_pipeline` chains
them in either order:

* ``semantic-first`` — rewrite ``P`` into ``P'`` with
  :func:`repro.core.rewrite.optimize`, then magic-transform ``P'``.
  The magic adornment then propagates through the *specialized*
  predicates, so constraint-pruned rules never generate demand.  This
  is the default and usually the stronger order: the semantic rewrite
  may prove whole adornment classes unsatisfiable, and residue
  selections (order atoms) tighten magic prefixes.
* ``magic-first`` — magic-transform ``P``, then run the semantic
  rewrite over the guarded program.  Wins when demand is so selective
  that most constraint-specialized predicates would never be reached
  anyway; the semantic pass then only pays for the demanded fragment.
* ``magic-only`` / ``semantic-only`` — single-stage baselines, used by
  the benchmarks and ablations.

Equivalence: on databases *consistent* with the constraints, every
pipeline order computes the same answers to the query atom as the
original program.  :func:`check_equivalence` /
:func:`assert_equivalent` evaluate original vs. transformed programs on
a database and compare answers (and work counters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..constraints.integrity import IntegrityConstraint
from ..core.rewrite import OptimizationReport, optimize
from ..datalog.atoms import Atom
from ..datalog.database import Database, Row
from ..datalog.evaluation import EvaluationResult, EvaluationStats, evaluate
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..digest import program_digest
from ..observability.trace import get_tracer
from ..robustness.budget import Budget, CancellationToken, FallbackStep, Governor
from ..robustness.errors import Cancelled, EvaluationAborted
from .adorn import adornment_of, bound_args
from .sips import SipsStrategy, get_sips, left_to_right
from .transform import MagicProgram, magic_transform, match_query_atom

__all__ = [
    "PIPELINE_ORDERS",
    "PipelineStage",
    "PipelineReport",
    "run_pipeline",
    "query_atom_answers",
    "EquivalenceCheck",
    "check_equivalence",
    "assert_equivalent",
    "CACHEABLE_ORDERS",
    "PipelineArtifact",
    "artifact_key",
    "compile_artifact",
    "specialize_pipeline",
]

#: Valid stage orderings.
PIPELINE_ORDERS = ("semantic-first", "magic-first", "magic-only", "semantic-only")


@dataclass(frozen=True)
class PipelineStage:
    """One applied stage: its name and the program it produced."""

    name: str
    program: Program | None
    detail: str = ""


@dataclass
class PipelineReport:
    """Everything one pipeline run produced."""

    original: Program
    query_atom: Atom
    constraints: tuple[IntegrityConstraint, ...]
    order: str
    stages: tuple[PipelineStage, ...]
    semantic_report: OptimizationReport | None
    magic: MagicProgram | None
    program: Program | None
    satisfiable: bool = True
    fallback_chain: tuple[FallbackStep, ...] = ()
    _answer_cache: dict = field(default_factory=dict, repr=False)

    @property
    def answer_predicate(self) -> str | None:
        """The predicate of the final program holding the answers."""
        return None if self.program is None else self.program.query

    def evaluation(
        self,
        database: Database,
        *,
        engine: str = "slots",
        plan_order: str = "cost",
        budget: "Budget | Governor | None" = None,
        cancellation: CancellationToken | None = None,
    ) -> EvaluationResult | None:
        if self.program is None:
            return None
        return evaluate(
            self.program,
            database,
            engine=engine,
            plan_order=plan_order,
            budget=budget,
            cancellation=cancellation,
        )

    def answers(self, database: Database) -> frozenset[Row]:
        """The final program's answers to the query atom over ``database``."""
        result = self.evaluation(database)
        if result is None:
            return frozenset()
        return frozenset(
            row
            for row in result.query_rows()
            if match_query_atom(row, self.query_atom)
        )

    def summary(self) -> str:
        lines = [
            f"pipeline order: {self.order}",
            f"query atom: {self.query_atom}",
            f"original rules: {len(self.original.rules)}",
        ]
        for stage in self.stages:
            size = "empty" if stage.program is None else f"{len(stage.program.rules)} rules"
            detail = f" — {stage.detail}" if stage.detail else ""
            lines.append(f"after {stage.name}: {size}{detail}")
        for step in self.fallback_chain:
            lines.append(f"fallback: {step.describe()}")
        if self.program is None:
            lines.append("final program: empty (query unsatisfiable)")
        else:
            lines.append(
                f"final program: {len(self.program.rules)} rules, "
                f"answers in {self.program.query}"
            )
        return "\n".join(lines)


def _as_query_program(program: Program, query_atom: Atom) -> Program:
    if query_atom.predicate not in program.idb_predicates:
        raise ValueError(
            f"query atom {query_atom} does not use an IDB predicate of the program"
        )
    if program.query != query_atom.predicate:
        program = program.with_query(query_atom.predicate)
    return program


def run_pipeline(
    program: Program,
    constraints: Iterable[IntegrityConstraint],
    query_atom: Atom,
    *,
    order: str = "semantic-first",
    sips: SipsStrategy = left_to_right,
    budget: "Budget | Governor | None" = None,
    cancellation: CancellationToken | None = None,
) -> PipelineReport:
    """Chain the semantic rewrite and the magic transform in ``order``.

    Returns a :class:`PipelineReport`; ``report.program`` is ``None``
    when the semantic stage proves the query unsatisfiable under the
    constraints.

    With a ``budget`` (or a shared running
    :class:`~repro.robustness.budget.Governor`) the run degrades
    instead of failing: the semantic stage degrades internally (see
    :func:`~repro.core.rewrite.optimize`), and a stage that trips a
    limit (or an injected fault) is *skipped*, leaving the previous
    stage's program in place.  Every fallback is recorded in
    ``report.fallback_chain``.  Cancellation always propagates.
    """
    if order not in PIPELINE_ORDERS:
        raise ValueError(
            f"unknown pipeline order {order!r} (valid: {', '.join(PIPELINE_ORDERS)})"
        )
    constraints = tuple(constraints)
    governor = Governor.of(budget, cancellation)
    program = _as_query_program(program, query_atom)

    tracer = get_tracer()
    trace_on = tracer.enabled

    stages: list[PipelineStage] = []
    fallbacks: list[FallbackStep] = []
    semantic_report: OptimizationReport | None = None
    magic: MagicProgram | None = None
    current: Program | None = program
    current_atom = query_atom

    def run_semantic() -> None:
        nonlocal current, semantic_report
        assert current is not None
        rules_in = len(current.rules)
        with tracer.span("pipeline.stage", stage="semantic rewrite") as stage_span:
            semantic_report = optimize(current, constraints, budget=governor)
            current = semantic_report.program
            if trace_on:
                stage_span.set(
                    rules_in=rules_in,
                    rules_out=0 if current is None else len(current.rules),
                    satisfiable=current is not None,
                )
        fallbacks.extend(semantic_report.fallback_chain)
        detail = "unsatisfiable" if current is None else (
            "complete" if semantic_report.complete else "residues only for non-local ic's"
        )
        if semantic_report.fallback_chain:
            detail = "degraded: " + "; ".join(
                step.fell_back_to for step in semantic_report.fallback_chain
            )
        stages.append(PipelineStage("semantic rewrite", current, detail))

    def run_magic() -> None:
        nonlocal current, magic, current_atom
        assert current is not None
        rules_in = len(current.rules)
        with tracer.span("pipeline.stage", stage="magic transform") as stage_span:
            magic = magic_transform(current, current_atom, sips=sips)
            current = magic.program
            if trace_on:
                stage_span.set(
                    rules_in=rules_in,
                    rules_out=len(current.rules),
                    magic_predicates=len(magic.magic_names),
                )
        # Later stages answer through the adorned query predicate; the
        # answer rows still line up positionally with the query atom.
        current_atom = Atom(magic.answer_predicate, query_atom.args)
        stages.append(
            PipelineStage(
                "magic transform",
                current,
                f"seed {magic.seed.head}",
            )
        )

    plan = {
        "semantic-first": (("semantic rewrite", run_semantic), ("magic transform", run_magic)),
        "magic-first": (("magic transform", run_magic), ("semantic rewrite", run_semantic)),
        "magic-only": (("magic transform", run_magic),),
        "semantic-only": (("semantic rewrite", run_semantic),),
    }[order]
    with tracer.span(
        "pipeline", order=order, query=str(query_atom), rules=len(program.rules)
    ) as pipeline_span:
        for stage_name, stage in plan:
            if current is None:
                break
            if governor is None:
                stage()
                continue
            try:
                governor.check("pipeline")
                stage()
            except Cancelled:
                raise
            except EvaluationAborted as exc:
                # Skip the stage: the previous stage's program is still a
                # sound input for whatever comes next.
                step = FallbackStep(
                    stage=stage_name,
                    fell_back_to="skip stage",
                    reason=str(exc),
                )
                fallbacks.append(step)
                if trace_on:
                    tracer.event(
                        "budget.fallback",
                        stage=step.stage,
                        fell_back_to=step.fell_back_to,
                        reason=step.reason,
                    )
        if trace_on:
            pipeline_span.set(
                stages=len(stages),
                satisfiable=current is not None,
                final_rules=0 if current is None else len(current.rules),
            )

    return PipelineReport(
        original=program,
        query_atom=query_atom,
        constraints=constraints,
        order=order,
        stages=tuple(stages),
        semantic_report=semantic_report,
        magic=magic,
        program=current,
        satisfiable=current is not None,
        fallback_chain=tuple(fallbacks),
    )


def query_atom_answers(
    program: Program,
    database: Database,
    query_atom: Atom,
    *,
    engine: str = "slots",
    plan_order: str = "cost",
    budget: "Budget | Governor | None" = None,
) -> tuple[frozenset[Row], EvaluationResult]:
    """Evaluate ``program`` and select the rows matching ``query_atom``."""
    program = _as_query_program(program, query_atom)
    result = evaluate(
        program, database, engine=engine, plan_order=plan_order, budget=budget
    )
    rows = frozenset(
        row for row in result.query_rows() if match_query_atom(row, query_atom)
    )
    return rows, result


@dataclass(frozen=True)
class EquivalenceCheck:
    """The outcome of comparing original vs. transformed query answers."""

    equivalent: bool
    query_atom: Atom
    original_answers: frozenset[Row]
    transformed_answers: frozenset[Row]
    original_stats: EvaluationStats
    transformed_stats: EvaluationStats

    @property
    def missing(self) -> frozenset[Row]:
        """Answers the transformation lost."""
        return self.original_answers - self.transformed_answers

    @property
    def extra(self) -> frozenset[Row]:
        """Answers the transformation invented."""
        return self.transformed_answers - self.original_answers

    def work_summary(self) -> str:
        o, t = self.original_stats, self.transformed_stats
        return (
            f"original: {o.facts_derived} facts, {o.probes} probes, "
            f"{o.rows_scanned} rows scanned | "
            f"transformed: {t.facts_derived} facts, {t.probes} probes, "
            f"{t.rows_scanned} rows scanned"
        )


def check_equivalence(
    original: Program,
    transformed: Program | PipelineReport | MagicProgram | None,
    query_atom: Atom,
    database: Database,
    *,
    engine: str = "slots",
    plan_order: str = "cost",
    budget: "Budget | Governor | None" = None,
) -> EquivalenceCheck:
    """Evaluate both programs on ``database`` and compare query answers.

    ``transformed`` may be a plain program, a :class:`PipelineReport`,
    a :class:`MagicProgram`, or ``None`` (an empty rewriting: the
    transformed side answers nothing).  ``engine``/``plan_order`` select
    the join engine used on both sides (see
    :func:`repro.datalog.evaluation.evaluate`); ``budget`` governs both
    evaluations (a shared governor bounds their combined wall time).
    """
    original_rows, original_result = query_atom_answers(
        original,
        database,
        query_atom,
        engine=engine,
        plan_order=plan_order,
        budget=budget,
    )
    if isinstance(transformed, PipelineReport):
        result = transformed.evaluation(
            database, engine=engine, plan_order=plan_order, budget=budget
        )
    elif isinstance(transformed, MagicProgram):
        result = evaluate(
            transformed.program,
            database,
            engine=engine,
            plan_order=plan_order,
            budget=budget,
        )
    elif isinstance(transformed, Program):
        result = evaluate(
            transformed, database, engine=engine, plan_order=plan_order, budget=budget
        )
    else:
        result = None
    if result is None:
        transformed_rows: frozenset[Row] = frozenset()
        transformed_stats = EvaluationStats()
    else:
        transformed_rows = frozenset(
            row
            for row in result.query_rows()
            if match_query_atom(row, query_atom)
        )
        transformed_stats = result.stats
    return EquivalenceCheck(
        equivalent=original_rows == transformed_rows,
        query_atom=query_atom,
        original_answers=original_rows,
        transformed_answers=transformed_rows,
        original_stats=original_result.stats,
        transformed_stats=transformed_stats,
    )


# ----------------------------------------------------------------------
# Cached specialization: compile once per query *shape*, seed per request
# ----------------------------------------------------------------------
#
# In the cacheable orders, everything the pipeline computes — the
# semantic rewrite, adornment, the magic rules — depends only on the
# program, the constraints and the query atom's *binding pattern*
# (which positions are constants), never on the constant values
# themselves.  The values appear in exactly one place: the magic seed
# fact.  So a serving workload where every request is ``p(c, Y)`` for a
# different ``c`` can compile the pipeline once per shape and per
# request only swap the seed — which is what
# :func:`specialize_pipeline` does, backed by any mapping-like artifact
# cache (see :class:`repro.serve.cache.ArtifactCache`).
#
# ``magic-first`` is the exception: there the semantic rewrite runs
# *over* the guarded program, seed included, so constraint residues can
# fold the request's constants into arbitrary rewritten rules.  Its
# compiled output is constant-dependent and must not be shared across
# requests — :func:`specialize_pipeline` bypasses the cache for it.

#: Orders whose compiled template is constant-independent (seed-swap sound).
CACHEABLE_ORDERS = ("semantic-first", "magic-only", "semantic-only")


@dataclass(frozen=True)
class PipelineArtifact:
    """One compiled pipeline template, constant-independent.

    ``rules`` hold the final program's rules *without* the magic seed
    (``None`` when the semantic stage proved the shape unsatisfiable);
    ``seed_predicate``/``adornment`` rebuild the seed for any query
    atom of the same shape.  ``semantic_report`` and ``magic`` are the
    template's sub-reports: valid descriptions of the compiled shape,
    but ``magic.seed`` carries the *template's* constants, not a later
    request's.
    """

    key: tuple
    order: str
    sips_name: str
    predicate: str
    adornment: str
    satisfiable: bool
    original: Program
    constraints: tuple[IntegrityConstraint, ...]
    rules: tuple[Rule, ...] | None
    query: str | None
    seed_predicate: str | None
    stages: tuple[PipelineStage, ...]
    semantic_report: OptimizationReport | None
    magic: MagicProgram | None
    fallback_chain: tuple[FallbackStep, ...]

    def specialize(self, query_atom: Atom) -> PipelineReport:
        """A :class:`PipelineReport` for ``query_atom``, seeded from it.

        ``query_atom`` must share the template's predicate and binding
        pattern; only its constant values may differ.
        """
        if query_atom.predicate != self.predicate:
            raise ValueError(
                f"artifact compiled for {self.predicate}, not {query_atom.predicate}"
            )
        if adornment_of(query_atom, frozenset()) != self.adornment:
            raise ValueError(
                f"artifact compiled for shape {self.predicate}/{self.adornment}, "
                f"which {query_atom} does not match"
            )
        program: Program | None = None
        if self.rules is not None:
            rules = self.rules
            if self.seed_predicate is not None:
                seed = Rule(
                    Atom(self.seed_predicate, bound_args(query_atom, self.adornment)),
                    (),
                )
                rules = (seed,) + rules
            program = Program(rules, self.query, validate=False)
        return PipelineReport(
            original=self.original,
            query_atom=query_atom,
            constraints=self.constraints,
            order=self.order,
            stages=self.stages,
            semantic_report=self.semantic_report,
            magic=self.magic,
            program=program,
            satisfiable=self.satisfiable,
            fallback_chain=self.fallback_chain,
        )


def artifact_key(
    program: Program,
    constraints: Iterable[IntegrityConstraint],
    query_atom: Atom,
    *,
    order: str = "semantic-first",
    sips_name: str = "left-to-right",
) -> tuple:
    """The cache key of one compiled pipeline shape.

    ``(program-shape digest, order, SIPS, predicate, adornment)`` — the
    digest is the shared :func:`repro.digest.program_digest` (program
    rules + query predicate + constraints, no EDB rows: rewrite and
    adornment artifacts are data-independent, so ingesting facts must
    *not* invalidate them), and the adornment is the query atom's
    binding pattern, so ``p(1, Y)`` and ``p(2, Y)`` share one entry
    while ``p(X, 1)`` compiles its own.
    """
    shape = program_digest(program.with_query(query_atom.predicate), tuple(constraints))
    return (shape, order, sips_name, query_atom.predicate, adornment_of(query_atom, frozenset()))


def compile_artifact(
    program: Program,
    constraints: Iterable[IntegrityConstraint],
    query_atom: Atom,
    *,
    order: str = "semantic-first",
    sips_name: str = "left-to-right",
    budget: "Budget | Governor | None" = None,
) -> PipelineArtifact:
    """Run the full pipeline once and strip it down to a reusable template."""
    if order not in CACHEABLE_ORDERS:
        raise ValueError(
            f"pipeline order {order!r} produces constant-dependent programs "
            f"and cannot be compiled to a shared artifact "
            f"(cacheable: {', '.join(CACHEABLE_ORDERS)})"
        )
    constraints = tuple(constraints)
    report = run_pipeline(
        program,
        constraints,
        query_atom,
        order=order,
        sips=get_sips(sips_name),
        budget=budget,
    )
    rules: tuple[Rule, ...] | None = None
    seed_predicate: str | None = None
    adornment = adornment_of(query_atom, frozenset())
    if report.program is not None:
        rules = report.program.rules
        if report.magic is not None:
            seed = report.magic.seed
            rules = tuple(rule for rule in rules if rule != seed)
            seed_predicate = seed.head.predicate
            adornment = report.magic.adorned.query_adornment
    return PipelineArtifact(
        key=artifact_key(
            program, constraints, query_atom, order=order, sips_name=sips_name
        ),
        order=order,
        sips_name=sips_name,
        predicate=query_atom.predicate,
        adornment=adornment,
        satisfiable=report.satisfiable,
        original=report.original,
        constraints=constraints,
        rules=rules,
        query=None if report.program is None else report.program.query,
        seed_predicate=seed_predicate,
        stages=report.stages,
        semantic_report=report.semantic_report,
        magic=report.magic,
        fallback_chain=report.fallback_chain,
    )


def specialize_pipeline(
    program: Program,
    constraints: Iterable[IntegrityConstraint],
    query_atom: Atom,
    *,
    order: str = "semantic-first",
    sips_name: str = "left-to-right",
    cache=None,
    budget: "Budget | Governor | None" = None,
    cache_site: str = "pipeline.cache",
) -> tuple[PipelineReport, bool]:
    """A pipeline report for ``query_atom``, through an artifact cache.

    Returns ``(report, cache_hit)``.  ``cache`` is any object with
    mapping-style ``get(key)`` / ``put(key, value)`` (e.g.
    :class:`repro.serve.cache.ArtifactCache`); with ``None`` the
    pipeline always compiles fresh.  A hit **skips the semantic
    rewrite, adornment and the magic transform entirely** — only the
    seed fact is rebuilt from the request's constants — which is the
    serving fast path.  Every consult emits a ``cache_site`` trace
    event (default ``pipeline.cache``; the daemon passes
    ``serve.cache``, which doubles as a chaos-injection site) carrying
    the hit/miss outcome.

    ``magic-first`` templates are constant-dependent (see
    :data:`CACHEABLE_ORDERS`), so that order always compiles fresh and
    its trace events carry ``cacheable=False``.
    """
    constraints = tuple(constraints)
    tracer = get_tracer()
    if order not in CACHEABLE_ORDERS:
        tracer.event(
            cache_site,
            hit=False,
            cacheable=False,
            order=order,
            predicate=query_atom.predicate,
            adornment=adornment_of(query_atom, frozenset()),
        )
        report = run_pipeline(
            program,
            constraints,
            query_atom,
            order=order,
            sips=get_sips(sips_name),
            budget=budget,
        )
        return report, False
    key = artifact_key(
        program, constraints, query_atom, order=order, sips_name=sips_name
    )
    artifact: PipelineArtifact | None = None
    if cache is not None:
        artifact = cache.get(key)
    hit = artifact is not None
    tracer.event(
        cache_site,
        hit=hit,
        cacheable=True,
        order=order,
        predicate=query_atom.predicate,
        adornment=key[-1],
    )
    if artifact is None:
        artifact = compile_artifact(
            program,
            constraints,
            query_atom,
            order=order,
            sips_name=sips_name,
            budget=budget,
        )
        if cache is not None:
            cache.put(key, artifact)
    return artifact.specialize(query_atom), hit


def assert_equivalent(
    original: Program,
    transformed: Program | PipelineReport | MagicProgram | None,
    query_atom: Atom,
    database: Database,
) -> EquivalenceCheck:
    """:func:`check_equivalence`, raising ``AssertionError`` on mismatch."""
    check = check_equivalence(original, transformed, query_atom, database)
    if not check.equivalent:
        raise AssertionError(
            f"transformed program changes the answers to {query_atom}: "
            f"missing {sorted(check.missing, key=repr)}, "
            f"extra {sorted(check.extra, key=repr)}"
        )
    return check
