"""Magic-sets demand transformation, composable with the semantic rewrite.

The subsystem has four layers:

* :mod:`repro.magic.sips` — sideways information passing strategies;
* :mod:`repro.magic.adorn` — binding-pattern (``b``/``f``) adornment
  propagated from a query atom;
* :mod:`repro.magic.transform` — magic predicates, seeds and guarded
  rules;
* :mod:`repro.magic.pipeline` — composition with the paper's semantic
  rewrite in either order, plus equivalence checking.
"""

from .adorn import AdornedProgram, AdornedRule, adorn_program, adornment_of
from .pipeline import (
    CACHEABLE_ORDERS,
    PIPELINE_ORDERS,
    EquivalenceCheck,
    PipelineArtifact,
    PipelineReport,
    artifact_key,
    assert_equivalent,
    check_equivalence,
    compile_artifact,
    query_atom_answers,
    run_pipeline,
    specialize_pipeline,
)
from .sips import STRATEGIES, get_sips, left_to_right, most_bound_first
from .transform import MagicProgram, magic_transform, match_query_atom

__all__ = [
    "AdornedProgram",
    "AdornedRule",
    "adorn_program",
    "adornment_of",
    "CACHEABLE_ORDERS",
    "PIPELINE_ORDERS",
    "EquivalenceCheck",
    "PipelineArtifact",
    "PipelineReport",
    "artifact_key",
    "assert_equivalent",
    "check_equivalence",
    "compile_artifact",
    "query_atom_answers",
    "run_pipeline",
    "specialize_pipeline",
    "STRATEGIES",
    "get_sips",
    "left_to_right",
    "most_bound_first",
    "MagicProgram",
    "magic_transform",
    "match_query_atom",
]
