"""The canonical workload and fixpoint digests, shared by every layer.

Three subsystems need to agree byte-for-byte on "is this the same
workload?" and "is this the same fixpoint?":

* the **persistence layer** binds checkpoints to the exact inputs they
  were computed from (:mod:`repro.persist.checkpoint`);
* the **benchmark harness** gates engine configurations on identical
  fixpoints and commits the digests to ``BENCH_results.json``
  (:mod:`repro.bench`);
* the **serving layer** keys its rewrite/adornment artifact cache by
  program shape (:mod:`repro.serve`).

Historically bench and persist each hashed program + query
independently; any drift between the two implementations would have
silently decoupled the checkpoint-resume gate from the benchmark
baseline.  This module is now the single definition — persist and bench
both import it, and :meth:`repro.core.rewrite.OptimizationReport
.cache_key` exposes the same digest for cache keying.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .datalog.database import Database
    from .datalog.program import Program

__all__ = ["workload_digest", "program_digest", "fixpoint_digest"]


def workload_digest(
    program: "Program",
    database: "Database | None" = None,
    constraints: Sequence[object] = (),
) -> str:
    """SHA-256 binding an artifact to its exact inputs.

    Covers the rules in program order, the query predicate, the
    constraints (by ``repr``) and — when a database is given — every
    EDB row (predicates sorted, rows sorted by ``repr``).  Any edit to
    the program, the constraints or the data changes the digest, which
    invalidates old checkpoints — including the intended case where
    :meth:`Session.ingest <repro.persist.session.Session.ingest>` adds
    facts and re-anchors the session on a new digest.

    With ``database=None`` the digest covers program + constraints
    only: the *program shape* digest used to key rewrite/adornment
    artifacts, which are data-independent (see
    :func:`repro.magic.pipeline.specialize_pipeline`).
    """
    digest = hashlib.sha256()
    for rule in program.rules:
        digest.update(repr(rule).encode())
        digest.update(b"\n")
    digest.update(f"query={program.query!r}\n".encode())
    for constraint in constraints:
        digest.update(repr(constraint).encode())
        digest.update(b"\n")
    if database is not None:
        for predicate, entry in sorted(database.to_dict().items()):
            digest.update(predicate.encode())
            for row in entry["rows"]:  # already sorted by repr
                digest.update(repr(tuple(row)).encode())
    return digest.hexdigest()


def program_digest(program: "Program", constraints: Sequence[object] = ()) -> str:
    """The data-independent program-shape digest (no EDB rows)."""
    return workload_digest(program, None, constraints)


def fixpoint_digest(results: Iterable[tuple[str, Mapping]]) -> str:
    """SHA-256 over labeled IDB fixpoints, order-independent per relation.

    Each item is ``(label, idb)`` where ``idb`` maps predicates to
    relations (anything with ``.rows()``).  Byte-compatible with the
    digests committed in ``BENCH_results.json``, so a resumed fixpoint
    can be checked against the benchmark baseline — and a served answer
    against the offline pipeline.
    """
    digest = hashlib.sha256()
    for unit_label, idb in results:
        digest.update(unit_label.encode())
        for predicate in sorted(idb):
            digest.update(predicate.encode())
            for row in sorted(idb[predicate].rows(), key=repr):
                digest.update(repr(row).encode())
    return digest.hexdigest()
