"""Observability: structured tracing, evaluation profiling, reports.

Three layers, each consuming the previous one:

* :mod:`repro.observability.trace` — the span/event API the engine and
  both optimizers are instrumented with, plus pluggable sinks (ring
  buffer, JSONL, human-readable log).  Disabled by default and
  zero-overhead when disabled.
* :mod:`repro.observability.profile` — per-rule / per-predicate
  work-and-time breakdowns built from trace events (``repro profile``).
* :mod:`repro.observability.report` — Markdown rendering of traces and
  work-ratio tables, and the deterministic regeneration of
  ``EXPERIMENTS.md`` from the benchmark suite (``repro report``).

See ``docs/observability.md`` for the event schema and usage guide.
"""

from .trace import (
    NULL_TRACER,
    JsonlSink,
    LogSink,
    RingBufferSink,
    Sink,
    TraceEvent,
    Tracer,
    get_tracer,
    read_jsonl,
    set_tracer,
    tracing,
)
from .profile import (
    EvaluationProfile,
    RuleProfile,
    ShardProfile,
    build_profile,
    profile_evaluation,
)
from .report import (
    Experiment,
    md_table,
    regenerate_experiments,
    render_trace,
    trace_summary,
    work_ratio_table,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "Sink",
    "RingBufferSink",
    "JsonlSink",
    "LogSink",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "read_jsonl",
    "EvaluationProfile",
    "RuleProfile",
    "ShardProfile",
    "build_profile",
    "profile_evaluation",
    "Experiment",
    "md_table",
    "work_ratio_table",
    "trace_summary",
    "render_trace",
    "regenerate_experiments",
]
