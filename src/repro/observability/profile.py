"""The evaluation profiler: per-rule and per-predicate work breakdowns.

Builds a :class:`EvaluationProfile` from the trace events the engine
emits (``rule`` spans carrying firings/probes/rows/facts deltas,
``iteration`` events, ``scc`` and ``evaluate`` spans) — so the profile
is a pure consumer of the trace stream and works equally on live
in-memory events and on a JSONL trace read back from disk.

The headline view is :meth:`EvaluationProfile.render`: the top-k hot
rules by time, with the index-probe hit rate (rows scanned per probe)
that tells you whether a rule is burning time on empty probes (a magic
guard or residue candidate) or on genuinely large intermediate results
(a join-order candidate).

Typical use::

    from repro.observability import profile_evaluation

    profile, result = profile_evaluation(program, database)
    print(profile.render(top=10))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from .trace import RingBufferSink, TraceEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalog.database import Database
    from ..datalog.evaluation import EvaluationResult
    from ..datalog.program import Program

__all__ = [
    "RuleProfile",
    "ShardProfile",
    "TenantServeProfile",
    "EvaluationProfile",
    "build_profile",
    "profile_evaluation",
]


@dataclass
class RuleProfile:
    """Accumulated work of one rule (or one head predicate)."""

    name: str
    predicate: str
    calls: int = 0
    time: float = 0.0
    firings: int = 0
    probes: int = 0
    rows_scanned: int = 0
    facts_derived: int = 0
    index_builds: int = 0
    plan: str = ""

    @property
    def hit_rate(self) -> float:
        """Rows scanned per index probe (0.0 when the rule never probed)."""
        return self.rows_scanned / self.probes if self.probes else 0.0

    def absorb(self, event: TraceEvent) -> None:
        attrs = event.attrs
        self.calls += 1
        self.time += event.duration
        self.firings += int(attrs.get("firings", 0))  # type: ignore[arg-type]
        self.probes += int(attrs.get("probes", 0))  # type: ignore[arg-type]
        self.rows_scanned += int(attrs.get("rows_scanned", 0))  # type: ignore[arg-type]
        self.facts_derived += int(attrs.get("facts_derived", 0))  # type: ignore[arg-type]
        self.index_builds += int(attrs.get("index_builds", 0))  # type: ignore[arg-type]


@dataclass
class ShardProfile:
    """Accumulated work of one shard worker (``shard.*`` trace events).

    ``tasks`` counts dispatches, ``delta_rows``/``update_rows`` the
    rows shipped to the worker (frontier shards and accept-log
    replication respectively), ``results``/``accepted`` the candidate
    head rows it shipped back and how many the master accepted, and
    ``elapsed`` the worker-side wall time summed over its tasks.
    """

    worker: int
    tasks: int = 0
    delta_rows: int = 0
    update_rows: int = 0
    results: int = 0
    accepted: int = 0
    elapsed: float = 0.0
    aborted: int = 0
    retries: int = 0
    respawns: int = 0

    def absorb_dispatch(self, event: TraceEvent) -> None:
        attrs = event.attrs
        self.tasks += 1
        self.delta_rows += int(attrs.get("delta_rows", 0))  # type: ignore[arg-type]
        self.update_rows += int(attrs.get("update_rows", 0))  # type: ignore[arg-type]

    def absorb_merge(self, event: TraceEvent) -> None:
        attrs = event.attrs
        self.results += int(attrs.get("results", 0))  # type: ignore[arg-type]
        self.accepted += int(attrs.get("accepted", 0))  # type: ignore[arg-type]
        self.elapsed += float(attrs.get("elapsed", 0.0))  # type: ignore[arg-type]
        if attrs.get("aborted"):
            self.aborted += 1


@dataclass
class TenantServeProfile:
    """Accumulated serving work of one tenant (``serve.request`` spans)."""

    tenant: str
    requests: int = 0
    time: float = 0.0
    queries: int = 0
    ingests: int = 0
    errors: int = 0
    aborted: int = 0

    def absorb(self, event: TraceEvent) -> None:
        attrs = event.attrs
        self.requests += 1
        self.time += event.duration
        kind = attrs.get("kind")
        if kind == "query":
            self.queries += 1
        elif kind == "ingest":
            self.ingests += 1
        status = attrs.get("status")
        if isinstance(status, int) and status >= 400:
            self.errors += 1
            if status == 503:
                self.aborted += 1


@dataclass
class EvaluationProfile:
    """Per-rule and per-predicate breakdown of one (or more) evaluations."""

    rules: dict[str, RuleProfile] = field(default_factory=dict)
    predicates: dict[str, RuleProfile] = field(default_factory=dict)
    total_time: float = 0.0
    iterations: int = 0
    sccs: int = 0
    events: int = 0
    index_builds: int = 0
    budget_trips: list[str] = field(default_factory=list)
    fallbacks: list[str] = field(default_factory=list)
    checkpoint_saves: int = 0
    checkpoint_loads: int = 0
    checkpoint_retries: int = 0
    checkpoint_bytes: int = 0
    journal_appends: int = 0
    journal_fsyncs: int = 0
    journal_bytes: int = 0
    journal_retries: int = 0
    journal_replayed: int = 0
    journal_truncations: int = 0
    journal_compactions: int = 0
    quarantines: list[str] = field(default_factory=list)
    tenants: dict[str, TenantServeProfile] = field(default_factory=dict)
    serve_cache_hits: int = 0
    serve_cache_misses: int = 0
    shards: dict[int, ShardProfile] = field(default_factory=dict)
    worker_restarts: int = 0
    shards_redispatched: int = 0
    degradations: list[str] = field(default_factory=list)

    def top_rules(self, k: int = 10, *, key: str = "time") -> list[RuleProfile]:
        """The k hottest rules by ``key`` (any counter attribute)."""
        return sorted(
            self.rules.values(), key=lambda r: (-getattr(r, key), r.name)
        )[:k]

    def render(self, top: int = 10) -> str:
        """A fixed-width hot-rule table plus per-predicate totals."""
        lines = [
            f"evaluation profile: {self.total_time * 1000:.3f} ms total, "
            f"{self.sccs} SCCs, {self.iterations} semi-naive iterations, "
            f"{self.index_builds} index builds",
        ]
        if self.checkpoint_saves or self.checkpoint_loads or self.checkpoint_retries:
            lines.append(
                f"durability: {self.checkpoint_saves} checkpoint saves "
                f"({self.checkpoint_bytes} bytes), {self.checkpoint_loads} loads, "
                f"{self.checkpoint_retries} retries"
            )
        if self.journal_appends or self.journal_replayed or self.journal_retries:
            lines.append(
                f"journal: {self.journal_appends} appends / "
                f"{self.journal_fsyncs} fsyncs ({self.journal_bytes} bytes), "
                f"{self.journal_retries} retries, "
                f"{self.journal_replayed} records replayed, "
                f"{self.journal_truncations} torn-tail truncations, "
                f"{self.journal_compactions} compactions"
            )
        for quarantine in self.quarantines:
            lines.append(f"quarantined: {quarantine}")
        for trip in self.budget_trips:
            lines.append(f"budget trip: {trip}")
        for fallback in self.fallbacks:
            lines.append(f"fallback: {fallback}")
        if self.worker_restarts or self.shards_redispatched:
            lines.append(
                f"recovery: {self.worker_restarts} worker restart(s), "
                f"{self.shards_redispatched} shard(s) re-dispatched"
            )
        for degradation in self.degradations:
            lines.append(f"degraded: {degradation}")
        lines += [
            "",
            f"top {min(top, len(self.rules))} rules by time:",
            f"{'time(ms)':>10} {'calls':>6} {'firings':>8} {'probes':>8} "
            f"{'rows':>9} {'facts':>7} {'hit':>6}  rule",
        ]
        for entry in self.top_rules(top):
            lines.append(
                f"{entry.time * 1000:10.3f} {entry.calls:6d} {entry.firings:8d} "
                f"{entry.probes:8d} {entry.rows_scanned:9d} {entry.facts_derived:7d} "
                f"{entry.hit_rate:6.2f}  {entry.name}"
            )
            if entry.plan:
                lines.append(f"{'':60}plan: {entry.plan}")
        if self.predicates:
            lines.append("")
            lines.append("per-predicate totals:")
            lines.append(
                f"{'time(ms)':>10} {'firings':>8} {'probes':>8} {'rows':>9} "
                f"{'facts':>7}  predicate"
            )
            for name in sorted(
                self.predicates, key=lambda p: (-self.predicates[p].time, p)
            ):
                entry = self.predicates[name]
                lines.append(
                    f"{entry.time * 1000:10.3f} {entry.firings:8d} {entry.probes:8d} "
                    f"{entry.rows_scanned:9d} {entry.facts_derived:7d}  {name}"
                )
        if self.shards:
            lines.append("")
            lines.append(f"shard workers ({len(self.shards)}):")
            lines.append(
                f"{'worker':>6} {'tasks':>6} {'delta':>8} {'updates':>8} "
                f"{'results':>8} {'accepted':>9} {'time(ms)':>10}"
            )
            for worker in sorted(self.shards):
                entry = self.shards[worker]
                flag = "  ABORTED" if entry.aborted else ""
                if entry.respawns:
                    flag += f"  RESPAWNED x{entry.respawns}"
                lines.append(
                    f"{entry.worker:6d} {entry.tasks:6d} {entry.delta_rows:8d} "
                    f"{entry.update_rows:8d} {entry.results:8d} "
                    f"{entry.accepted:9d} {entry.elapsed * 1000:10.3f}{flag}"
                )
        if self.tenants:
            lines.append("")
            lines.append(
                f"serving: {self.serve_cache_hits} artifact cache hits, "
                f"{self.serve_cache_misses} misses"
            )
            lines.append(
                f"{'time(ms)':>10} {'reqs':>6} {'queries':>8} {'ingests':>8} "
                f"{'errors':>7} {'aborted':>8}  tenant"
            )
            for name in sorted(
                self.tenants, key=lambda t: (-self.tenants[t].time, t)
            ):
                entry = self.tenants[name]
                lines.append(
                    f"{entry.time * 1000:10.3f} {entry.requests:6d} "
                    f"{entry.queries:8d} {entry.ingests:8d} {entry.errors:7d} "
                    f"{entry.aborted:8d}  {name}"
                )
        return "\n".join(lines)


def build_profile(events: Iterable[TraceEvent]) -> EvaluationProfile:
    """Aggregate a trace stream into an :class:`EvaluationProfile`."""
    profile = EvaluationProfile()
    for event in events:
        profile.events += 1
        if event.kind == "span" and event.name == "rule":
            rule_text = str(event.attrs.get("rule", "?"))
            predicate = str(event.attrs.get("predicate", "?"))
            profile.rules.setdefault(
                rule_text, RuleProfile(rule_text, predicate)
            ).absorb(event)
            profile.predicates.setdefault(
                predicate, RuleProfile(predicate, predicate)
            ).absorb(event)
        elif event.kind == "span" and event.name == "evaluate":
            profile.total_time += event.duration
        elif event.kind == "span" and event.name == "scc":
            profile.sccs += 1
        elif event.kind == "event" and event.name == "iteration":
            profile.iterations += 1
        elif event.kind == "event" and event.name == "index_build":
            profile.index_builds += 1
        elif event.kind == "event" and event.name == "budget.trip":
            profile.budget_trips.append(
                f"{event.attrs.get('phase', '?')} hit {event.attrs.get('limit', '?')} "
                f"after {event.attrs.get('iterations', 0)} iterations, "
                f"{event.attrs.get('facts_derived', 0)} facts"
            )
        elif event.kind == "event" and event.name == "checkpoint.save":
            profile.checkpoint_saves += 1
            profile.checkpoint_bytes += int(event.attrs.get("bytes", 0))  # type: ignore[arg-type]
        elif event.kind == "event" and event.name == "checkpoint.load":
            profile.checkpoint_loads += 1
        elif event.kind == "event" and event.name == "checkpoint.retry":
            profile.checkpoint_retries += 1
        elif event.kind == "event" and event.name == "journal.append":
            profile.journal_appends += 1
        elif event.kind == "event" and event.name == "journal.fsync":
            profile.journal_fsyncs += 1
            profile.journal_bytes += int(event.attrs.get("bytes", 0))  # type: ignore[arg-type]
        elif event.kind == "event" and event.name == "journal.retry":
            profile.journal_retries += 1
        elif event.kind == "event" and event.name == "journal.replay":
            profile.journal_replayed += int(event.attrs.get("records", 0))  # type: ignore[arg-type]
        elif event.kind == "event" and event.name == "journal.truncate":
            profile.journal_truncations += 1
        elif event.kind == "event" and event.name == "journal.compact":
            profile.journal_compactions += 1
        elif event.kind == "event" and event.name == "checkpoint.quarantine":
            profile.quarantines.append(
                f"{event.attrs.get('path', '?')} ({event.attrs.get('reason', '')})"
            )
        elif event.kind == "event" and event.name == "budget.fallback":
            profile.fallbacks.append(
                f"{event.attrs.get('stage', '?')} -> "
                f"{event.attrs.get('fell_back_to', '?')} "
                f"({event.attrs.get('reason', '')})"
            )
        elif event.kind == "span" and event.name == "serve.request":
            tenant = str(event.attrs.get("tenant") or "-")
            profile.tenants.setdefault(
                tenant, TenantServeProfile(tenant)
            ).absorb(event)
        elif event.kind == "event" and event.name == "shard.dispatch":
            worker = int(event.attrs.get("worker", -1))  # type: ignore[arg-type]
            profile.shards.setdefault(worker, ShardProfile(worker)).absorb_dispatch(
                event
            )
        elif event.kind == "event" and event.name == "shard.merge":
            worker = int(event.attrs.get("worker", -1))  # type: ignore[arg-type]
            profile.shards.setdefault(worker, ShardProfile(worker)).absorb_merge(
                event
            )
        elif event.kind == "event" and event.name == "shard.retry":
            worker = int(event.attrs.get("worker", -1))  # type: ignore[arg-type]
            profile.shards.setdefault(worker, ShardProfile(worker)).retries += 1
        elif event.kind == "event" and event.name == "shard.respawn":
            worker = int(event.attrs.get("worker", -1))  # type: ignore[arg-type]
            entry = profile.shards.setdefault(worker, ShardProfile(worker))
            entry.respawns += 1
            profile.worker_restarts += 1
            profile.shards_redispatched += 1
        elif event.kind == "event" and event.name == "shard.degrade":
            profile.degradations.append(
                f"{event.attrs.get('stage', '?')} -> "
                f"{event.attrs.get('fell_back_to', '?')} "
                f"({event.attrs.get('reason', '')})"
            )
        elif event.kind == "event" and event.name in ("serve.cache", "pipeline.cache"):
            if event.attrs.get("hit"):
                profile.serve_cache_hits += 1
            else:
                profile.serve_cache_misses += 1
        elif event.kind == "event" and event.name == "plan":
            # The compiled plan of a (rule, delta) pair: keep the most
            # informative one per rule (delta plans override the base
            # plan only when no plan is recorded yet).
            rule_text = str(event.attrs.get("rule", "?"))
            predicate = str(event.attrs.get("predicate", "?"))
            entry = profile.rules.setdefault(
                rule_text, RuleProfile(rule_text, predicate)
            )
            if not entry.plan:
                order = event.attrs.get("order", "")
                entry.plan = f"[{order}] {event.attrs.get('steps', '')}"
    return profile


def profile_evaluation(
    program: "Program",
    database: "Database",
    *,
    strategy: str = "seminaive",
    engine: str = "slots",
    plan_order: str = "cost",
    workers: "int | None" = None,
    supervision: "object | None" = None,
) -> tuple[EvaluationProfile, "EvaluationResult"]:
    """Evaluate ``program`` under a fresh tracer and profile the run.

    With ``workers=N`` the sharded evaluator runs and the profile gains
    a per-shard section fed by the ``shard.dispatch``/``shard.merge``
    trace events.
    """
    from ..datalog.evaluation import evaluate

    sink = RingBufferSink()
    tracer = Tracer([sink])
    result = evaluate(
        program,
        database,
        strategy=strategy,
        tracer=tracer,
        engine=engine,
        plan_order=plan_order,
        workers=workers,
        supervision=supervision,
    )
    return build_profile(sink), result
