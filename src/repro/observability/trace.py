"""Structured tracing: spans and events with pluggable sinks.

The tracer is the backbone of the observability layer: the evaluation
engine, the semantic optimizer and the magic-sets pipeline all emit
*spans* (named, timed, nestable regions with attributes) and *events*
(instant records) through it.  Three properties drive the design:

* **zero overhead when disabled** — the default tracer is disabled;
  instrumented hot paths guard their fine-grained emissions with
  ``tracer.enabled`` so a disabled tracer costs one attribute read, and
  even an unguarded ``tracer.span(...)`` on a disabled tracer returns a
  shared no-op span without allocating;
* **pluggable sinks** — an in-memory ring buffer
  (:class:`RingBufferSink`), a JSONL file (:class:`JsonlSink`) and a
  human-readable log (:class:`LogSink`); any object with an
  ``emit(event)`` method works;
* **structured, serializable events** — every :class:`TraceEvent`
  carries a span id, parent id, depth, start offset, duration and a
  flat attribute mapping, so downstream consumers (the profiler in
  :mod:`repro.observability.profile`, the report renderer in
  :mod:`repro.observability.report`) never parse strings.

Typical use::

    from repro.observability import RingBufferSink, tracing
    from repro.datalog.evaluation import evaluate

    with tracing(RingBufferSink()) as tracer:
        evaluate(program, database)
    events = list(tracer.sinks[0])

Span events are emitted when the span *closes*, so a sink sees children
before their parents; consumers that want source order sort by
``(start, span_id)`` (see :func:`repro.observability.report.render_trace`).
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, TextIO

__all__ = [
    "TraceEvent",
    "Sink",
    "RingBufferSink",
    "JsonlSink",
    "LogSink",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "read_jsonl",
]


class TraceEvent:
    """One record of the trace stream.

    ``kind`` is ``"span"`` (a timed region; ``duration`` in seconds) or
    ``"event"`` (instant; ``duration`` is 0.0).  ``start`` is seconds
    since the owning tracer was created, so traces are relocatable and
    diffable.  ``attrs`` is a flat mapping of JSON-serializable values.
    """

    __slots__ = ("name", "kind", "span_id", "parent_id", "depth", "start", "duration", "attrs")

    def __init__(
        self,
        name: str,
        kind: str,
        span_id: int,
        parent_id: int | None,
        depth: int,
        start: float,
        duration: float,
        attrs: Mapping[str, object],
    ):
        self.name = name
        self.kind = kind
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start = start
        self.duration = duration
        self.attrs = dict(attrs)

    def as_dict(self) -> dict[str, object]:
        """A JSON-ready dict (the JSONL wire format)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TraceEvent":
        return cls(
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            span_id=int(payload["span_id"]),  # type: ignore[arg-type]
            parent_id=None if payload.get("parent_id") is None else int(payload["parent_id"]),  # type: ignore[arg-type]
            depth=int(payload.get("depth", 0)),  # type: ignore[arg-type]
            start=float(payload.get("start", 0.0)),  # type: ignore[arg-type]
            duration=float(payload.get("duration", 0.0)),  # type: ignore[arg-type]
            attrs=payload.get("attrs", {}),  # type: ignore[arg-type]
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        extras = "".join(f" {k}={v!r}" for k, v in self.attrs.items())
        if self.kind == "span":
            return f"<span {self.name} {self.duration * 1000:.3f}ms{extras}>"
        return f"<event {self.name}{extras}>"


class Sink:
    """Base class for trace sinks; subclasses implement :meth:`emit`."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default is a no-op
        pass


class RingBufferSink(Sink):
    """Keeps the last ``capacity`` events in memory (all when ``None``)."""

    def __init__(self, capacity: int | None = None):
        self.events: deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(Sink):
    """Writes one JSON object per event to a file or text stream."""

    def __init__(self, target: str | Path | TextIO):
        if isinstance(target, (str, Path)):
            self._stream: TextIO = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._stream = target
            self._owned = False

    def emit(self, event: TraceEvent) -> None:
        # No sort_keys: attrs keep their (deterministic) insertion order,
        # so a reloaded trace renders identically to the live one.
        self._stream.write(json.dumps(event.as_dict()) + "\n")

    def close(self) -> None:
        self._stream.flush()
        if self._owned:
            self._stream.close()


def read_jsonl(source: str | Path | TextIO | Iterable[str]) -> list[TraceEvent]:
    """Read a JSONL trace back into :class:`TraceEvent` objects."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return [TraceEvent.from_dict(json.loads(line)) for line in handle if line.strip()]
    return [TraceEvent.from_dict(json.loads(line)) for line in source if line.strip()]


class LogSink(Sink):
    """Human-readable one-line-per-event output (default: stderr).

    Spans print when they close, so nested work appears above its
    enclosing span; indentation follows the span depth.
    """

    def __init__(self, stream: TextIO | None = None):
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, event: TraceEvent) -> None:
        indent = "  " * event.depth
        extras = " ".join(f"{key}={value}" for key, value in event.attrs.items())
        if event.kind == "span":
            timing = f"{event.duration * 1000:9.3f}ms"
        else:
            timing = "    event "
        self._stream.write(f"[{timing}] {indent}{event.name}" + (f" {extras}" if extras else "") + "\n")


class _NullSpan:
    """The shared no-op span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; emitted as a :class:`TraceEvent` when it closes."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "depth", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self.depth = 0
        self._start = 0.0

    def set(self, **attrs: object) -> "_Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        self._tracer._open(self)
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer._close(self)
        return False


class Tracer:
    """Emits spans and events to a list of sinks.

    A tracer is *enabled* or not for its whole lifetime; instrumented
    code reads :attr:`enabled` to skip fine-grained work.  Span ids are
    assigned in open order starting at 1; the id sequence, nesting and
    attributes are deterministic for a deterministic workload (only the
    timestamps vary run to run).
    """

    __slots__ = ("enabled", "sinks", "_clock", "_origin", "_stack", "_next_id")

    def __init__(
        self,
        sinks: Iterable[Sink] = (),
        *,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.enabled = enabled
        self.sinks: list[Sink] = list(sinks)
        self._clock = clock
        self._origin = clock()
        self._stack: list[int] = []
        self._next_id = 1

    # -- span/event production ------------------------------------------
    def span(self, name: str, **attrs: object):
        """A context manager timing a named region.

        Returns the shared no-op span when the tracer is disabled; hot
        paths should still guard on :attr:`enabled` to avoid building
        the ``attrs`` dict at the call site.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Emit an instant event at the current nesting depth."""
        if not self.enabled:
            return
        span_id = self._next_id
        self._next_id += 1
        self._emit(
            TraceEvent(
                name=name,
                kind="event",
                span_id=span_id,
                parent_id=self._stack[-1] if self._stack else None,
                depth=len(self._stack),
                start=self._clock() - self._origin,
                duration=0.0,
                attrs=attrs,
            )
        )

    # -- span plumbing ---------------------------------------------------
    def _open(self, span: _Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1] if self._stack else None
        span.depth = len(self._stack)
        self._stack.append(span.span_id)
        span._start = self._clock()

    def _close(self, span: _Span) -> None:
        end = self._clock()
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        self._emit(
            TraceEvent(
                name=span.name,
                kind="span",
                span_id=span.span_id,
                parent_id=span.parent_id,
                depth=span.depth,
                start=span._start - self._origin,
                duration=end - span._start,
                attrs=span.attrs,
            )
        )

    def _emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        """Close every sink (flushes files)."""
        for sink in self.sinks:
            sink.close()


#: The process-wide default: a disabled tracer with no sinks.
NULL_TRACER = Tracer(enabled=False)

_current: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The currently installed tracer (disabled by default)."""
    return _current


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` globally; returns the previous one.

    Passing ``None`` restores the disabled default.
    """
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(*sinks: Sink, tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install an enabled tracer for the duration of a ``with`` block.

    ``tracing(sink1, sink2)`` builds a tracer over the given sinks
    (a fresh :class:`RingBufferSink` when none are given); pass
    ``tracer=`` to install a pre-built one instead.  The previous
    tracer is restored on exit.
    """
    if tracer is None:
        tracer = Tracer(sinks if sinks else (RingBufferSink(),))
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
