"""Self-documenting benchmark reports and trace rendering.

Two consumers share this module:

* **trace views** — :func:`render_trace` (chronological, indented) and
  :func:`trace_summary` (per-span-name aggregation) turn a stream of
  :class:`~repro.observability.trace.TraceEvent` into human-readable
  text; the CLI's ``--trace`` flag and ``repro trace`` print these.
* **experiment reports** — :class:`Experiment` describes one benchmark
  experiment (key, title, narrative, and a ``build`` callable that
  produces deterministic Markdown from live work counters);
  :func:`regenerate_experiments` loads every ``benchmarks/bench_*.py``
  module, collects their ``experiment()`` definitions and renders
  ``EXPERIMENTS.md`` as a **build artifact**: byte-identical across
  runs and machines because it contains only seeded work counters and
  structural facts — never wall-clock times.

``python -m repro report --regenerate`` wires this up; ``--check``
makes CI fail when the committed file is stale.
"""

from __future__ import annotations

import importlib.util
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from .trace import TraceEvent

__all__ = [
    "md_table",
    "work_ratio_table",
    "trace_summary",
    "render_trace",
    "Experiment",
    "render_experiments",
    "load_experiments",
    "regenerate_experiments",
    "GENERATED_HEADER",
]


# ----------------------------------------------------------------------
# Markdown building blocks
# ----------------------------------------------------------------------
def _fmt(value: object) -> str:
    """Deterministic cell formatting: thousands-grouped ints, 2-dp floats."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return "inf" if value == float("inf") else f"{value:.2f}"
    return str(value)


def md_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A GitHub-flavored Markdown table; numeric columns right-aligned."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in materialized:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


#: Counters shown in work tables, in display order.
WORK_COUNTERS = ("rule_firings", "probes", "rows_scanned", "facts_derived", "iterations")


def work_ratio_table(
    variants: Sequence[tuple[str, Mapping[str, int]]],
    *,
    baseline: str | None = None,
    counters: Sequence[str] = WORK_COUNTERS,
) -> str:
    """A Markdown table of work counters with per-variant ratio columns.

    ``variants`` is an ordered list of ``(label, counters_dict)``;
    ``baseline`` names the row ratios are computed against (default: the
    first row).  A ratio below 1.0 means the variant did less of that
    kind of work than the baseline.
    """
    if not variants:
        raise ValueError("work_ratio_table needs at least one variant")
    base_label = baseline if baseline is not None else variants[0][0]
    base = dict(next(stats for label, stats in variants if label == base_label))
    headers = ["variant", *counters, "work ratio"]
    rows: list[list[object]] = []
    for label, stats in variants:
        cells: list[object] = [label]
        ratios: list[float] = []
        for counter in counters:
            value = int(stats.get(counter, 0))
            cells.append(value)
            base_value = int(base.get(counter, 0))
            if base_value == 0:
                ratios.append(1.0 if value == 0 else float("inf"))
            else:
                ratios.append(value / base_value)
        # The headline "work ratio" column: facts derived vs baseline.
        headline = ratios[counters.index("facts_derived")] if "facts_derived" in counters else ratios[0]
        cells.append("—" if label == base_label else f"{headline:.2f}×")
        rows.append(cells)
    return md_table(headers, rows)


# ----------------------------------------------------------------------
# Trace rendering
# ----------------------------------------------------------------------
def _attr_text(attrs: Mapping[str, object]) -> str:
    return " ".join(f"{key}={value}" for key, value in attrs.items())


def render_trace(events: Iterable[TraceEvent], *, limit: int | None = None) -> str:
    """Chronological, indented rendering of a trace (source order)."""
    ordered = sorted(events, key=lambda e: (e.start, e.span_id))
    lines: list[str] = []
    shown = 0
    for event in ordered:
        if limit is not None and shown >= limit:
            lines.append(f"... ({len(ordered) - shown} more events)")
            break
        indent = "  " * event.depth
        timing = f"{event.duration * 1000:9.3f}ms" if event.kind == "span" else "    event "
        extras = _attr_text(event.attrs)
        lines.append(f"[{timing}] {indent}{event.name}" + (f" {extras}" if extras else ""))
        shown += 1
    return "\n".join(lines)


def trace_summary(events: Iterable[TraceEvent], *, top: int | None = None) -> str:
    """Aggregate the trace per span/event name: count + total time."""
    totals: dict[str, list[float]] = {}
    for event in events:
        entry = totals.setdefault(event.name, [0.0, 0.0])
        entry[0] += 1
        entry[1] += event.duration
    names = sorted(totals, key=lambda name: (-totals[name][1], name))
    if top is not None:
        names = names[:top]
    lines = [f"{'count':>7} {'total(ms)':>11}  span"]
    for name in names:
        count, duration = totals[name]
        lines.append(f"{int(count):7d} {duration * 1000:11.3f}  {name}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Self-documenting experiments
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Experiment:
    """One experiment section of the regenerated ``EXPERIMENTS.md``.

    ``build`` runs the (seeded, deterministic) workload and returns the
    Markdown body — typically one or two :func:`md_table` /
    :func:`work_ratio_table` blocks plus assertions-as-prose.  It must
    not embed wall-clock times, dates or unsorted collections.
    """

    key: str
    title: str
    narrative: str
    build: Callable[[], str]

    def render(self) -> str:
        body = self.build().strip()
        parts = [f"## {self.key} — {self.title}", "", self.narrative.strip()]
        if body:
            parts += ["", body]
        return "\n".join(parts)


GENERATED_HEADER = """\
# EXPERIMENTS — paper vs. measured

> **Generated file — do not edit.**  This report is produced by
> `python -m repro report --regenerate` from the experiment definitions
> in `benchmarks/*.py` (each module's `experiment()`); CI regenerates it
> with `--check` and fails when it is stale.  Every number below is a
> deterministic work counter (`EvaluationStats`) or structural count on
> seeded workloads — byte-identical across runs and machines.  Wall-clock
> shapes are measured separately with `pytest benchmarks/ --benchmark-only`
> and are intentionally excluded here.

The paper is an extended abstract with one figure (Figure 1) and no
measurement tables; its "evaluation" consists of worked examples and
theorems.  Each section reproduces one such artifact: the *paper*
paragraph states the claim, the table shows what this codebase measures
for it.  A work ratio below 1.0× means the transformed program did less
work than its baseline.

Theorem-level equivalence claims with no number to tabulate (Theorem
4.1 answer preservation on consistent databases, Theorem 4.2 local
order/negated atoms) are enforced directly by the test suite under
`tests/`; documented deviations from the paper live in DESIGN.md §6.
"""


def render_experiments(experiments: Sequence[Experiment]) -> str:
    """Render the full EXPERIMENTS.md content (trailing newline included)."""
    sections = [GENERATED_HEADER.rstrip()]
    for experiment in sorted(experiments, key=lambda e: e.key):
        sections.append(experiment.render().rstrip())
    return "\n\n".join(sections) + "\n"


def load_experiments(benchmarks_dir: str | Path) -> list[Experiment]:
    """Import every ``bench_*.py`` in ``benchmarks_dir`` and collect
    the :class:`Experiment` returned by its ``experiment()`` (if any)."""
    directory = Path(benchmarks_dir)
    if not directory.is_dir():
        raise FileNotFoundError(f"benchmarks directory not found: {directory}")
    experiments: list[Experiment] = []
    # Shared helpers (benchmarks/common.py) import as a sibling module.
    inserted = str(directory.resolve())
    sys.path.insert(0, inserted)
    try:
        for path in sorted(directory.glob("bench_*.py")):
            module_name = f"_repro_bench_{path.stem}"
            spec = importlib.util.spec_from_file_location(module_name, path)
            assert spec is not None and spec.loader is not None
            module = importlib.util.module_from_spec(spec)
            sys.modules[module_name] = module
            try:
                spec.loader.exec_module(module)
            finally:
                sys.modules.pop(module_name, None)
            factory = getattr(module, "experiment", None)
            if factory is None:
                continue
            built = factory()
            if isinstance(built, Experiment):
                experiments.append(built)
            else:
                experiments.extend(built)
    finally:
        try:
            sys.path.remove(inserted)
        except ValueError:  # pragma: no cover - defensive
            pass
    return experiments


def regenerate_experiments(
    benchmarks_dir: str | Path,
    output: str | Path,
    *,
    check: bool = False,
) -> tuple[bool, str]:
    """Regenerate ``output`` (EXPERIMENTS.md) from the benchmark modules.

    Returns ``(stale, content)``: ``stale`` is True when the existing
    file differed from the regenerated content.  With ``check=True``
    the file is never written; otherwise it is rewritten in place.
    """
    content = render_experiments(load_experiments(benchmarks_dir))
    output_path = Path(output)
    existing = output_path.read_text(encoding="utf-8") if output_path.exists() else None
    stale = existing != content
    if not check and stale:
        output_path.write_text(content, encoding="utf-8")
    return stale, content
