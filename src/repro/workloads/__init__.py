"""Canonical paper workloads: programs, constraints, EDB generators."""

from .generators import (
    ab_database,
    ab_inconsistent_database,
    chain_steps,
    flight_database,
    good_path_bidirectional_database,
    good_path_database,
    good_path_inconsistent_database,
    random_database,
    random_program,
    random_workload,
    same_generation_database,
    taint_database,
)
from .programs import (
    ab_transitive_closure,
    flight_routes,
    good_path,
    good_path_order_constraints,
    same_generation,
    taint_analysis,
)

__all__ = [
    "ab_database",
    "ab_inconsistent_database",
    "chain_steps",
    "flight_database",
    "good_path_bidirectional_database",
    "good_path_database",
    "good_path_inconsistent_database",
    "random_database",
    "random_program",
    "random_workload",
    "same_generation_database",
    "taint_database",
    "ab_transitive_closure",
    "flight_routes",
    "good_path",
    "good_path_order_constraints",
    "same_generation",
    "taint_analysis",
]
