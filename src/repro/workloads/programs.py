"""Canonical programs and constraint sets from the paper (and companions).

Each factory returns ``(program, constraints)`` ready for
:func:`repro.optimize` — these are the workloads the examples, tests and
benchmarks share.
"""

from __future__ import annotations

from ..constraints.integrity import IntegrityConstraint
from ..datalog.parser import parse_constraints, parse_program
from ..datalog.program import Program

__all__ = [
    "good_path",
    "good_path_order_constraints",
    "ab_transitive_closure",
    "same_generation",
    "flight_routes",
    "taint_analysis",
]


def good_path() -> tuple[Program, list[IntegrityConstraint]]:
    """Example 3.1: paths between start and end points, with the
    end-points-dominate-start-points ic (residue ``Y <= X``)."""
    program = parse_program(
        """
        path(X, Y) :- step(X, Y).
        path(X, Y) :- step(X, Z), path(Z, Y).
        goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
        """,
        query="goodPath",
    )
    constraints = parse_constraints(":- startPoint(X), endPoint(Y), Y <= X.")
    return program, constraints


def good_path_order_constraints() -> tuple[Program, list[IntegrityConstraint]]:
    """Section 3, second example: ic's (1) and (2) push ``X >= 100``
    into the recursive rules (the paper's ``r1', r2', r3'``)."""
    program, _ = good_path()
    constraints = parse_constraints(
        """
        :- startPoint(X), endPoint(Y), Y <= X.
        :- startPoint(X), step(X, Y), X < 100.
        :- step(X, Y), X >= Y.
        """
    )
    return program, constraints


def ab_transitive_closure() -> tuple[Program, list[IntegrityConstraint]]:
    """The Section 4 running example (Figure 1): the transitive closure
    of ``a``- and ``b``-edges, where an ``a``-edge is never followed by a
    ``b``-edge."""
    program = parse_program(
        """
        p(X, Y) :- a(X, Y).
        p(X, Y) :- b(X, Y).
        p(X, Y) :- a(X, Z), p(Z, Y).
        p(X, Y) :- b(X, Z), p(Z, Y).
        """,
        query="p",
    )
    constraints = parse_constraints(":- a(X, Y), b(Y, Z).")
    return program, constraints


def same_generation() -> tuple[Program, list[IntegrityConstraint]]:
    """The classic same-generation program over a parent relation, with
    an ic keeping the two family trees disjoint."""
    program = parse_program(
        """
        sg(X, Y) :- sibling(X, Y).
        sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).
        query(X, Y) :- leftTree(X), sg(X, Y), rightTree(Y).
        """,
        query="query",
    )
    constraints = parse_constraints(
        """
        :- leftTree(X), rightTree(X).
        :- sibling(X, Y), leftTree(X), rightTree(Y).
        """
    )
    return program, constraints


def taint_analysis() -> tuple[Program, list[IntegrityConstraint]]:
    """Static taint tracking over a dataflow graph.

    Rules: values are tainted at sources and propagate along flow
    edges; an alarm fires when a tainted value reaches a sink.  The
    program-model ic's:

    * no variable is both a source and a sink (sources are inputs,
      sinks are outputs) — which makes the zero-step alarm derivation
      (``sink(V), taint(V) via source(V)``) inconsistent: the optimizer
      specializes ``taint`` and keeps only the at-least-one-flow-step
      variant under ``alarm``;
    * sanitizers have no outgoing flow (sanitization yields a fresh
      value), giving a negated-EDB residue ``not sanitizer(W)`` in the
      propagation rule.
    """
    program = parse_program(
        """
        taint(V) :- source(V).
        taint(V) :- flow(W, V), taint(W).
        alarm(V) :- sink(V), taint(V).
        """,
        query="alarm",
    )
    constraints = parse_constraints(
        """
        :- source(V), sink(V).
        :- flow(W, V), sanitizer(W).
        """
    )
    return program, constraints


def flight_routes() -> tuple[Program, list[IntegrityConstraint]]:
    """A data-integration flavored workload (cf. the paper's motivation
    [CGMH+94, LSK95]): routes composed from two airline feeds, with
    hub discipline and fare monotonicity as ic's.

    * ``segment_a`` / ``segment_b`` — two heterogeneous sources of
      flight segments ``(From, To, Fare)``;
    * budget airline ``b`` never departs from a hub after an ``a``
      leg landed there: ``:- segment_a(X, H, F1), hub(H),
      segment_b(H, Y, F2).``
    * fares are positive.
    """
    program = parse_program(
        """
        leg(X, Y, F) :- segment_a(X, Y, F).
        leg(X, Y, F) :- segment_b(X, Y, F).
        route(X, Y) :- leg(X, Y, F).
        route(X, Y) :- leg(X, Z, F), route(Z, Y).
        trip(X, Y) :- origin(X), route(X, Y), destination(Y).
        """,
        query="trip",
    )
    constraints = parse_constraints(
        """
        :- segment_a(X, H, F1), hub(H), segment_b(H, Y, F2).
        :- segment_a(X, Y, F), F <= 0.
        :- segment_b(X, Y, F), F <= 0.
        """
    )
    return program, constraints
