"""Synthetic EDB generators for the canonical workloads.

All generators are seeded and deterministic, and produce databases
*consistent* with the constraint sets of
:mod:`repro.workloads.programs` (each documents which); inconsistent
variants for violation-detection tests are provided alongside.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.parser import parse_rule
from ..datalog.program import Program
from ..datalog.terms import Constant, Variable

__all__ = [
    "chain_steps",
    "good_path_database",
    "good_path_inconsistent_database",
    "ab_database",
    "ab_inconsistent_database",
    "same_generation_database",
    "flight_database",
    "random_program",
    "random_database",
    "random_workload",
]


def chain_steps(length: int, start: int = 0, stride: int = 1) -> list[tuple[int, int]]:
    """A monotone chain of ``step`` edges."""
    return [(start + i * stride, start + (i + 1) * stride) for i in range(length)]


def good_path_database(
    num_chains: int = 4,
    chain_length: int = 20,
    *,
    below_threshold_chains: int = 2,
    threshold: int = 100,
    seed: int = 0,
) -> Database:
    """EDB for the Section 3 good-path workload.

    ``num_chains`` monotone step chains start at or above ``threshold``
    (their first nodes are start points, last nodes end points), plus
    ``below_threshold_chains`` decoy chains living strictly below the
    threshold (no start points there, consistent with ic (1)).  All
    chains increase strictly, satisfying ic (2), and every end point
    exceeds every start point, satisfying the Example 3.1 ic.
    """
    rng = random.Random(seed)
    db = Database()
    top = threshold
    starts: list[int] = []
    ends: list[int] = []
    for _ in range(num_chains):
        base = top + rng.randint(1, 5)
        for left, right in chain_steps(chain_length, start=base):
            db.add_row("step", (left, right))
        starts.append(base)
        ends.append(base + chain_length)
        top = base + chain_length
    # Decoy chains entirely below the threshold: reachable step data that
    # the optimized program never has to touch.
    low = -1000
    for _ in range(below_threshold_chains):
        base = low + rng.randint(1, 5)
        length = min(chain_length, (threshold - 10 - base))
        for left, right in chain_steps(max(length, 1), start=base):
            if right < threshold:
                db.add_row("step", (left, right))
        low = base + chain_length
    # Start points above max start? ensure ends dominate all starts.
    for value in starts:
        db.add_row("startPoint", (value,))
    floor = max(starts)
    for value in ends:
        if value > floor:
            db.add_row("endPoint", (value,))
    return db


def good_path_bidirectional_database(
    num_chains: int = 4, chain_length: int = 20, *, seed: int = 0
) -> Database:
    """Good-path EDB where paths also descend below the start points.

    Each start point roots an ascending chain ending in an end point
    *and* a descending chain leading nowhere.  The Example 3.1 residue
    ``Y > X`` pays here: without it, every descending path tuple
    reaches the ``endPoint`` probe of the goodPath rule; with it, the
    probe is skipped.  Consistent with the Example 3.1 ic (all end
    points top all start points).
    """
    rng = random.Random(seed)
    db = Database()
    starts: list[int] = []
    tops: list[int] = []
    base = 0
    for _ in range(num_chains):
        start = base + chain_length + rng.randint(1, 4)
        for left, right in chain_steps(chain_length, start=start):
            db.add_row("step", (left, right))
        for left, right in chain_steps(chain_length, start=start - chain_length):
            db.add_row("step", (right, left))  # descending branch
        starts.append(start)
        tops.append(start + chain_length)
        base = start + chain_length
    floor = max(starts)
    for start in starts:
        db.add_row("startPoint", (start,))
    for top in tops:
        if top > floor:
            db.add_row("endPoint", (top,))
    return db


def good_path_inconsistent_database(seed: int = 0) -> Database:
    """A small database violating ic (2) (a non-increasing step)."""
    db = good_path_database(num_chains=1, chain_length=3, seed=seed)
    db.add_row("step", (200, 150))
    return db


def ab_database(
    num_b: int = 30, num_a: int = 30, *, branching: int = 2, seed: int = 0
) -> Database:
    """EDB for the a/b running example.

    ``b``-edges live on nodes ``0 .. num_b`` and ``a``-edges on nodes
    ``num_b .. num_b + num_a``: a ``b``-edge may be followed by an
    ``a``-edge (at the boundary node) but never vice versa, so the ic
    ``:- a(X, Y), b(Y, Z)`` holds.
    """
    rng = random.Random(seed)
    db = Database()
    for left in range(num_b):
        for _ in range(branching):
            right = rng.randint(left + 1, num_b)
            db.add_row("b", (left, right))
    base = num_b
    for left in range(base, base + num_a):
        for _ in range(branching):
            right = rng.randint(left + 1, base + num_a)
            db.add_row("a", (left, right))
    return db


def ab_inconsistent_database(seed: int = 0) -> Database:
    """An a-edge followed by a b-edge — violates the running example's ic."""
    db = ab_database(num_b=5, num_a=5, seed=seed)
    db.add_row("a", (1, 2))  # lands inside the b zone
    return db


def same_generation_database(
    depth: int = 4, fanout: int = 2, *, seed: int = 0
) -> Database:
    """Two disjoint complete family trees plus sibling links at the roots.

    Left-tree nodes are positive, right-tree nodes negative; the trees
    are disjoint and no sibling edge crosses from left to right,
    matching the same-generation ic's.
    """
    db = Database()

    def build(sign: int) -> list[int]:
        # Node ids: sign * (1 .. number of nodes) in BFS order.
        nodes = [sign * 1]
        frontier = [sign * 1]
        next_id = 2
        for _ in range(depth):
            fresh: list[int] = []
            for parent_node in frontier:
                for _ in range(fanout):
                    child = sign * next_id
                    next_id += 1
                    db.add_row("parent", (child, parent_node))
                    fresh.append(child)
            nodes.extend(fresh)
            frontier = fresh
        return nodes

    left = build(1)
    right = build(-1)
    for node in left:
        db.add_row("leftTree", (node,))
    for node in right:
        db.add_row("rightTree", (node,))
    # Sibling links only inside the left tree and only right-to-left at
    # the roots — crossing left->right pairs are forbidden by the ic's.
    db.add_row("sibling", (1, 1))
    db.add_row("sibling", (-1, 1))
    return db


def taint_database(
    variables: int = 40,
    flows: int = 80,
    *,
    sources: int = 4,
    sinks: int = 4,
    sanitizers: int = 4,
    seed: int = 0,
) -> Database:
    """A dataflow graph for the taint workload, consistent with its ic's.

    Variable ids ``0 .. variables-1``; sources, sinks and sanitizers are
    disjoint id ranges; no flow edge leaves a sanitizer.
    """
    if sources + sinks + sanitizers > variables:
        raise ValueError("role ranges exceed the variable count")
    rng = random.Random(seed)
    db = Database()
    source_ids = range(sources)
    sink_ids = range(sources, sources + sinks)
    sanitizer_ids = range(sources + sinks, sources + sinks + sanitizers)
    for v in source_ids:
        db.add_row("source", (v,))
    for v in sink_ids:
        db.add_row("sink", (v,))
    for v in sanitizer_ids:
        db.add_row("sanitizer", (v,))
    sanitizer_set = set(sanitizer_ids)
    for _ in range(flows):
        origin = rng.randrange(variables)
        if origin in sanitizer_set:
            continue  # sanitizers have no outgoing flow (ic 2)
        target = rng.randrange(variables)
        if origin != target:
            db.add_row("flow", (origin, target))
    return db


def random_program(
    seed: int, *, num_idb: int = 3, extra_rules: int = 2
) -> Program:
    """A seeded random recursive Datalog program with query ``q``.

    IDB predicates ``p0 .. p{num_idb-1}`` are layered (rules for ``pi``
    only use ``pj`` with ``j <= i``, so every program is well-founded
    yet may be linearly or non-linearly recursive), built over binary
    EDB relations ``e0``/``e1`` and unary ``mark``/``blocked``.  Rule
    shapes are drawn from base rules (optionally filtered by an order
    atom or a negated EDB literal) and left/right-linear and nonlinear
    recursive rules.  The distinguished query ``q`` projects the last
    layer, optionally guarded by ``mark``.

    Used as the search space for the engine-agreement and
    magic-equivalence property tests.
    """
    rng = random.Random(seed)
    rules = []

    def edge() -> str:
        return rng.choice(("e0", "e1"))

    def base_rule(head: str) -> str:
        filters = rng.choice(("", "", ", X < Y", ", not blocked(X)", ", mark(X)"))
        return f"{head}(X, Y) :- {edge()}(X, Y){filters}."

    def recursive_rule(head: str, layer: int) -> str:
        lower = f"p{rng.randrange(layer + 1)}"
        shape = rng.randrange(3)
        if shape == 0:
            return f"{head}(X, Y) :- {edge()}(X, Z), {lower}(Z, Y)."
        if shape == 1:
            return f"{head}(X, Y) :- {lower}(X, Z), {edge()}(Z, Y)."
        other = f"p{rng.randrange(layer + 1)}"
        return f"{head}(X, Y) :- {lower}(X, Z), {other}(Z, Y)."

    for layer in range(num_idb):
        head = f"p{layer}"
        rules.append(base_rule(head))
        if layer or rng.random() < 0.5:
            rules.append(recursive_rule(head, layer))
    for _ in range(extra_rules):
        layer = rng.randrange(num_idb)
        rules.append(recursive_rule(f"p{layer}", layer))
    guard = ", mark(X)" if rng.random() < 0.3 else ""
    rules.append(f"q(X, Y) :- p{num_idb - 1}(X, Y){guard}.")
    return Program([parse_rule(text) for text in rules], query="q")


def random_database(seed: int, *, nodes: int = 12, edges: int = 24) -> Database:
    """A seeded random EDB for :func:`random_program`."""
    rng = random.Random(seed)
    db = Database()
    for predicate in ("e0", "e1"):
        for _ in range(edges):
            left = rng.randrange(nodes)
            right = rng.randrange(nodes)
            db.add_row(predicate, (left, right))
    for node in rng.sample(range(nodes), max(1, nodes // 3)):
        db.add_row("mark", (node,))
    for node in rng.sample(range(nodes), max(1, nodes // 4)):
        db.add_row("blocked", (node,))
    return db


def random_workload(
    seed: int, *, nodes: int = 12, edges: int = 24
) -> tuple[Program, Database, Atom]:
    """A random program, a matching EDB, and a bound query atom.

    The query atom binds the first argument of ``q`` to a node constant
    (so magic sets have demand to exploit) and leaves the second free.
    """
    program = random_program(seed)
    database = random_database(seed + 1, nodes=nodes, edges=edges)
    rng = random.Random(seed + 2)
    query_atom = Atom("q", (Constant(rng.randrange(nodes)), Variable("Y")))
    return program, database, query_atom


def flight_database(
    cities: int = 20,
    segments: int = 60,
    *,
    hubs: Sequence[int] = (0, 1),
    seed: int = 0,
) -> Database:
    """EDB for the flight-routes workload, consistent with its ic's.

    ``a`` segments never *arrive* at a hub (so no ``a``-then-``b``-from-
    hub pattern can occur), fares are positive, and a couple of
    origin/destination cities are marked.
    """
    rng = random.Random(seed)
    db = Database()
    hub_set = set(hubs)
    for hub in hubs:
        db.add_row("hub", (hub,))
    for _ in range(segments):
        source = rng.randrange(cities)
        target = rng.randrange(cities)
        if source == target:
            continue
        fare = rng.randint(50, 500)
        if rng.random() < 0.5 and target not in hub_set:
            db.add_row("segment_a", (source, target, fare))
        else:
            db.add_row("segment_b", (source, target, fare))
    db.add_row("origin", (2,))
    db.add_row("origin", (3,))
    db.add_row("destination", (cities - 1,))
    db.add_row("destination", (cities - 2,))
    return db
