"""The engine benchmark harness behind ``repro bench``.

Runs a fixed suite of evaluation workloads on four engine
configurations and reports wall-clock timings, the
:class:`~repro.datalog.evaluation.EvaluationStats` work counters, and a
fixpoint digest per engine:

* ``interpreted`` — the seed tuple-at-a-time interpreter (dict
  environments, greedy bound-count join order);
* ``slots-greedy`` — the compiled slot-based engine running the *same*
  join order as the interpreter (isolates the compilation win);
* ``slots-cost`` — the compiled engine with cost-based body reordering
  (the default engine; adds the plan win on top);
* ``slots-columnar`` — the compiled engine over the dictionary-encoded
  columnar backend, executing one block kernel per join step per delta
  block (adds the batching win; see ``docs/storage.md``).

Every engine must compute **byte-identical fixpoints** (same IDB facts
on every workload); :func:`run_bench` flags any mismatch and the CLI
exits non-zero — this is the correctness gate CI runs via
``repro bench --json --quick``.  Timings are the minimum over
``repeat`` runs, each on a fresh database copy so lazily built indexes
are rebuilt (index cost is part of the engine).

``repro bench --json`` writes the full payload to ``BENCH_results.json``
— the repo's tracked perf baseline (see ``docs/performance.md``).
"""

from __future__ import annotations

import json
import random
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

from .datalog.database import Database
from .datalog.evaluation import EvaluationStats, evaluate
from .datalog.program import Program
from .digest import fixpoint_digest
from .magic import run_pipeline
from .robustness import Budget, BudgetExceededError, Governor
from .workloads.generators import (
    ab_database,
    flight_database,
    good_path_database,
    same_generation_database,
    taint_database,
)
from .workloads.programs import (
    ab_transitive_closure,
    flight_routes,
    good_path,
    good_path_order_constraints,
    same_generation,
    taint_analysis,
)

__all__ = [
    "ENGINE_CONFIGS",
    "BenchUnit",
    "build_workloads",
    "run_bench",
    "render_results",
    "write_results",
]

#: label -> evaluate() keyword arguments, in report order.
ENGINE_CONFIGS: tuple[tuple[str, dict[str, str]], ...] = (
    ("interpreted", {"engine": "interpreted"}),
    ("slots-greedy", {"engine": "slots", "plan_order": "greedy"}),
    ("slots-cost", {"engine": "slots", "plan_order": "cost"}),
    ("slots-columnar", {"engine": "slots", "plan_order": "cost", "storage": "columnar"}),
)


@dataclass(frozen=True)
class BenchUnit:
    """One (program, database) evaluation inside a workload."""

    label: str
    program: Program
    make_database: Callable[[], Database]


def _colored_edges(colors: int, nodes: int, edges: int, seed: int = 0) -> Database:
    """Random forward (acyclic) edges for each color predicate ``e{i}``."""
    rng = random.Random(seed)
    db = Database()
    for color in range(colors):
        added = 0
        while added < edges:
            left = rng.randrange(nodes - 1)
            right = rng.randrange(left + 1, nodes)
            if db.add_row(f"e{color}", (left, right)):
                added += 1
    return db


def _colored_closure_program(colors: int) -> Program:
    from .datalog.parser import parse_program

    rules = []
    for color in range(colors):
        rules.append(f"p(X, Y) :- e{color}(X, Y).")
        rules.append(f"p(X, Y) :- e{color}(X, Z), p(Z, Y).")
    return parse_program("\n".join(rules), query="p")


def _magic_units(quick: bool) -> list[BenchUnit]:
    """The bound-query workloads, magic-transformed (magic-only pipeline).

    Magic programs are where join order matters most: their rules guard
    large recursive literals with small magic relations, and several
    body literals become fully bound once the magic binding is read.
    """
    from .datalog.atoms import Atom
    from .datalog.terms import Constant, Variable

    def bound(predicate: str, constant, arity: int = 2) -> Atom:
        args = (Constant(constant),) + tuple(
            Variable(f"V{i}") for i in range(arity - 1)
        )
        return Atom(predicate, args)

    units: list[BenchUnit] = []

    program, ics = ab_transitive_closure()
    ab_kwargs = dict(num_b=20, num_a=20, branching=2) if quick else dict(
        num_b=60, num_a=60, branching=3
    )
    report = run_pipeline(program, ics, bound("p", 0), order="magic-only")
    assert report.program is not None
    units.append(
        BenchUnit("magic-ab", report.program, lambda k=ab_kwargs: ab_database(seed=0, **k))
    )

    program, ics = good_path_order_constraints()
    gp_kwargs = dict(num_chains=2, chain_length=10) if quick else dict(
        num_chains=4, chain_length=30
    )
    gp_db = good_path_database(seed=0, **gp_kwargs)
    start = min(row[0] for row in gp_db.relation("startPoint", 1))
    report = run_pipeline(program, ics, bound("goodPath", start), order="magic-only")
    assert report.program is not None
    units.append(
        BenchUnit(
            "magic-goodPath",
            report.program,
            lambda k=gp_kwargs: good_path_database(seed=0, **k),
        )
    )

    program, ics = same_generation()
    sg_kwargs = dict(depth=4, fanout=2) if quick else dict(depth=6, fanout=2)
    report = run_pipeline(program, ics, bound("query", 2), order="magic-only")
    assert report.program is not None
    units.append(
        BenchUnit(
            "magic-sg",
            report.program,
            lambda k=sg_kwargs: same_generation_database(seed=0, **k),
        )
    )
    return units


def build_workloads(*, quick: bool = False) -> dict[str, list[BenchUnit]]:
    """The benchmark suite: workload name -> evaluation units.

    ``quick`` shrinks every workload to CI-smoke size (the fixpoint
    gate is just as strict; only the timings lose meaning).
    """
    # The full scaling workload is deliberately dense *and* deep
    # (degree ~17 over 350 nodes): density multiplies the join work per
    # accepted fact and depth multiplies the semi-naive rounds — both
    # are work the sharded evaluator parallelizes, while the closure
    # size (the merge work the master serializes) grows only with the
    # node count — see docs/parallel.md.
    colors, nodes, edges = (2, 24, 30) if quick else (3, 350, 6000)
    scaling_program = _colored_closure_program(colors)

    gp_program, _ = good_path()
    gp_kwargs = dict(num_chains=2, chain_length=12) if quick else dict(
        num_chains=6, chain_length=45
    )
    ab_program, _ = ab_transitive_closure()
    ab_kwargs = dict(num_b=20, num_a=20, branching=2) if quick else dict(
        num_b=55, num_a=55, branching=3
    )
    sg_program, _ = same_generation()
    sg_kwargs = dict(depth=4, fanout=2) if quick else dict(depth=6, fanout=2)
    taint_program, _ = taint_analysis()
    taint_kwargs = dict(variables=30, flows=60) if quick else dict(
        variables=130, flows=420
    )
    flight_program, _ = flight_routes()
    flight_kwargs = dict(cities=12, segments=40) if quick else dict(
        cities=30, segments=160
    )

    return {
        "bench_scaling": [
            BenchUnit(
                "colored-closure",
                scaling_program,
                lambda: _colored_edges(colors, nodes, edges, seed=0),
            )
        ],
        "bench_magic": _magic_units(quick),
        "bench_example31": [
            BenchUnit(
                "good-path",
                gp_program,
                lambda: good_path_database(seed=0, **gp_kwargs),
            )
        ],
        "bench_ab": [
            BenchUnit("ab-closure", ab_program, lambda: ab_database(seed=0, **ab_kwargs))
        ],
        "bench_sg": [
            BenchUnit(
                "same-generation",
                sg_program,
                lambda: same_generation_database(seed=0, **sg_kwargs),
            )
        ],
        "bench_taint": [
            BenchUnit(
                "taint", taint_program, lambda: taint_database(seed=0, **taint_kwargs)
            )
        ],
        "bench_flight": [
            BenchUnit(
                "flight-routes",
                flight_program,
                lambda: flight_database(seed=0, **flight_kwargs),
            )
        ],
    }


# The one shared fixpoint digest (also used by persist and serve), so
# the committed BENCH_results.json digests, the checkpoint-resume gate
# and the serving smoke all compare the same bytes.
_fixpoint_digest = fixpoint_digest


def _run_engine(
    units: Sequence[BenchUnit],
    engine_kwargs: Mapping[str, str],
    repeat: int,
    governor: Governor | None = None,
):
    """Time ``repeat`` full-suite runs; return (best s, stats, digest, tripped).

    Stats and the fixpoint digest come from the first run — they are
    deterministic, only the wall clock varies.  With a governor, a
    budget trip keeps the partial fixpoint (``tripped`` is True and the
    digest covers only what was derived before the trip)."""
    engine_kwargs = dict(engine_kwargs)
    storage = engine_kwargs.pop("storage", None)
    best = float("inf")
    stats = EvaluationStats()
    digest = ""
    tripped = False
    for attempt in range(repeat):
        databases = [unit.make_database() for unit in units]
        if storage is not None:
            # Dictionary-encoding the EDB is a load-time cost (a resident
            # tenant pays it once at registration), so it sits outside
            # the timed region — like parsing, not like index builds.
            databases = [db.to_storage(storage) for db in databases]
        start = time.perf_counter()
        results = []
        for unit, database in zip(units, databases):
            try:
                results.append(
                    evaluate(unit.program, database, budget=governor, **engine_kwargs)
                )
            except BudgetExceededError as exc:
                tripped = True
                if exc.partial is not None:
                    results.append(exc.partial)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        if attempt == 0:
            for result in results:
                stats.merge(result.stats)
            digest = _fixpoint_digest(
                (unit.label, result.idb) for unit, result in zip(units, results)
            )
        if tripped:
            break
    return best, stats, digest, tripped


def _run_parallel(
    units: Sequence[BenchUnit],
    workers: int,
    repeat: int,
    governor: Governor | None = None,
) -> dict:
    """Time ``repeat`` sharded runs of the suite at one worker count.

    The pools (fork + program/EDB/interner shipping) are built outside
    the timed region and reported as ``shard_overhead_seconds`` — they
    are the per-run fixed cost a resident tenant pays once.  Two
    timings come back: ``time_s`` is raw wall clock, and
    ``critical_path_s`` is the modeled multicore critical path
    (master serial time + per-barrier max of worker CPU time) reported
    by :func:`repro.parallel.engine.evaluate_sharded` — on a machine
    with >= ``workers`` free cores the two converge, while on a
    saturated box wall clock only measures time-slicing.  Speedups are
    quoted on the critical-path basis with the wall numbers alongside.
    """
    from .parallel import WorkerPool, evaluate_sharded

    best_wall = float("inf")
    best_crit = float("inf")
    overhead = float("inf")
    stats = EvaluationStats()
    digest = ""
    tripped = False
    for attempt in range(repeat):
        databases = [
            unit.make_database().to_storage("columnar") for unit in units
        ]
        fork_start = time.perf_counter()
        pools = [
            WorkerPool(unit.program, database, workers)
            for unit, database in zip(units, databases)
        ]
        shard_overhead = time.perf_counter() - fork_start
        results = []
        crit = 0.0
        start = time.perf_counter()
        try:
            for unit, database, shard_pool in zip(units, databases, pools):
                try:
                    result = evaluate_sharded(
                        unit.program,
                        database,
                        workers=workers,
                        pool=shard_pool,
                        budget=governor,
                    )
                except BudgetExceededError as exc:
                    tripped = True
                    if exc.partial is not None:
                        results.append(exc.partial)
                        crit += exc.partial.shards["critical_path_seconds"]
                else:
                    results.append(result)
                    crit += result.shards["critical_path_seconds"]
            elapsed = time.perf_counter() - start
        finally:
            for shard_pool in pools:
                shard_pool.close()
        best_wall = min(best_wall, elapsed)
        best_crit = min(best_crit, crit)
        overhead = min(overhead, shard_overhead)
        if attempt == 0:
            for result in results:
                stats.merge(result.stats)
            digest = _fixpoint_digest(
                (unit.label, result.idb) for unit, result in zip(units, results)
            )
        if tripped:
            break
    return {
        "time_s": best_wall,
        "critical_path_s": best_crit,
        "shard_overhead_seconds": overhead,
        "fixpoint_sha256": digest,
        "stats": stats.as_dict(),
        "budget_exceeded": tripped,
    }


def _run_recovery(
    units: Sequence[BenchUnit],
    workers: int,
    repeat: int,
    governor: Governor | None = None,
) -> dict:
    """The cost of surviving one injected worker kill per workload.

    Two timed configurations, both under a chaos tracer so the tracing
    overhead cancels out of the ratio: a *clean* sharded run (nothing
    armed) and a *killed* run where the second ``shard.dispatch``
    occurrence SIGKILLs its worker — the supervisor respawns a warm
    replacement and re-dispatches the lost shard.  ``overhead_ratio``
    is killed/clean wall time (best of ``repeat``); the digests must
    stay byte-identical, which ``run_bench`` folds into the
    cross-engine gate.
    """
    from .parallel import WorkerPool, evaluate_sharded
    from .robustness.faults import FaultInjector, chaos

    def one_pass(inject: bool):
        databases = [
            unit.make_database().to_storage("columnar") for unit in units
        ]
        pools = [
            WorkerPool(unit.program, database, workers)
            for unit, database in zip(units, databases)
        ]
        injector = FaultInjector()
        if inject:
            injector.arm("shard.dispatch", at=2)
        results = []
        tripped = False
        start = time.perf_counter()
        try:
            with chaos(injector):
                for unit, database, shard_pool in zip(units, databases, pools):
                    try:
                        results.append(
                            evaluate_sharded(
                                unit.program,
                                database,
                                workers=workers,
                                pool=shard_pool,
                                budget=governor,
                            )
                        )
                    except BudgetExceededError as exc:
                        tripped = True
                        if exc.partial is not None:
                            results.append(exc.partial)
            elapsed = time.perf_counter() - start
        finally:
            for shard_pool in pools:
                shard_pool.close()
        if inject and not injector.fired:
            raise RuntimeError(
                "recovery bench armed a worker kill that never fired"
            )
        digest = _fixpoint_digest(
            (unit.label, result.idb) for unit, result in zip(units, results)
        )
        restarts = sum(r.stats.worker_restarts for r in results)
        redispatched = sum(r.stats.shards_redispatched for r in results)
        return elapsed, digest, restarts, redispatched, tripped

    clean_s = killed_s = float("inf")
    clean_digest = killed_digest = ""
    restarts = redispatched = 0
    tripped = False
    for attempt in range(repeat):
        elapsed, digest, _, _, one_tripped = one_pass(False)
        clean_s = min(clean_s, elapsed)
        tripped = tripped or one_tripped
        if attempt == 0:
            clean_digest = digest
        elapsed, digest, one_restarts, one_redispatched, one_tripped = one_pass(True)
        killed_s = min(killed_s, elapsed)
        tripped = tripped or one_tripped
        if attempt == 0:
            killed_digest = digest
            restarts = one_restarts
            redispatched = one_redispatched
        if tripped:
            break
    return {
        "workers": workers,
        "clean_s": clean_s,
        "killed_s": killed_s,
        "overhead_ratio": killed_s / clean_s if clean_s > 0 else float("inf"),
        "clean_sha256": clean_digest,
        "fixpoint_sha256": killed_digest,
        "worker_restarts": restarts,
        "shards_redispatched": redispatched,
        "budget_exceeded": tripped,
    }


def _run_checkpoint_overhead(
    units: Sequence[BenchUnit],
    repeat: int,
    governor: Governor | None = None,
) -> dict:
    """Time the same workload at ``checkpoint_every`` 0 / 1 / 10.

    ``0`` is plain in-memory evaluation (no store at all); ``1`` and
    ``10`` run through a :class:`~repro.persist.session.Session` with a
    real on-disk :class:`~repro.persist.store.CheckpointStore` in a
    temporary directory, so the measured overhead includes JSON
    encoding, hashing and the fsync-rename dance.  All three must
    produce the same fixpoint digest — persistence may cost time, never
    answers.
    """
    import tempfile

    from .persist import CheckpointStore, Session

    overhead: dict = {"every": {}}
    for every in (0, 1, 10):
        best = float("inf")
        checkpoints = 0
        digest = ""
        tripped = False
        for attempt in range(repeat):
            with tempfile.TemporaryDirectory() as tmp:
                databases = [unit.make_database() for unit in units]
                results = []
                written = 0
                start = time.perf_counter()
                for unit, database in zip(units, databases):
                    try:
                        if every == 0:
                            results.append(evaluate(unit.program, database, budget=governor))
                        else:
                            outcome = Session(
                                unit.program,
                                database,
                                store=CheckpointStore(tmp),
                                checkpoint_every=every,
                                budget=governor,
                            ).run()
                            written += outcome.checkpoints_written
                            results.append(outcome.result)
                    except BudgetExceededError as exc:
                        tripped = True
                        if exc.partial is not None:
                            results.append(exc.partial)
                elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            if attempt == 0:
                checkpoints = written
                digest = _fixpoint_digest(
                    (unit.label, result.idb)
                    for unit, result in zip(units, results)
                )
            if tripped:
                break
        overhead["every"][str(every)] = {
            "time_s": best,
            "checkpoints": checkpoints,
            "fixpoint_sha256": digest,
            "budget_exceeded": tripped,
        }
    base = overhead["every"]["0"]
    overhead["fixpoints_match"] = (
        None
        if any(entry["budget_exceeded"] for entry in overhead["every"].values())
        else len({entry["fixpoint_sha256"] for entry in overhead["every"].values()}) == 1
    )
    overhead["overhead_vs_memory"] = {
        key: (entry["time_s"] / base["time_s"] if base["time_s"] > 0 else float("inf"))
        for key, entry in overhead["every"].items()
        if key != "0"
    }
    return overhead


def _run_journal(
    units: Sequence[BenchUnit],
    repeat: int,
    governor: Governor | None = None,
    *,
    batches: int = 5,
    rows_per_batch: int = 4,
) -> dict:
    """The write-ahead journal's two durability costs.

    ``fsync_overhead``: the same ingest sequence through a journaled
    session versus one with the journal disabled — the ratio is the
    price of the append+fsync acknowledgment on every ingest.

    ``replay_vs_recompute``: recovery of a journal suffix (checkpoint
    covers only the initial EDB; every ingest is un-checkpointed
    journal records) versus a cold in-memory recompute of the full
    post-ingest fixpoint.  Both paths must land on the same digest —
    replay may cost time, never answers (``digest_match`` is a CI
    gate).
    """
    import tempfile

    from .persist import CheckpointStore, IngestJournal, Session

    unit = units[0]
    sample = unit.make_database()
    predicate = sorted(sample.predicates())[0]
    top = max(
        (row[0] for row in sample.relation(predicate).rows() if isinstance(row[0], int)),
        default=0,
    )

    def ingest_batches() -> list[list[tuple[str, tuple]]]:
        # Fresh chain nodes above the generated graph: every batch
        # extends the closure without colliding with existing rows.
        return [
            [
                (predicate, (top + 1 + batch * rows_per_batch + i,
                             top + 2 + batch * rows_per_batch + i))
                for i in range(rows_per_batch)
            ]
            for batch in range(batches)
        ]

    journal: dict = {"batches": batches, "rows_per_batch": rows_per_batch}
    tripped = False
    digests = {}
    for flavor in ("journaled", "unjournaled"):
        best = float("inf")
        for attempt in range(repeat):
            with tempfile.TemporaryDirectory() as tmp:
                session = Session(
                    unit.program,
                    unit.make_database(),
                    store=CheckpointStore(tmp),
                    journal="auto" if flavor == "journaled" else None,
                    checkpoint_every=0,
                    budget=governor,
                )
                try:
                    session.run()
                    start = time.perf_counter()
                    for batch in ingest_batches():
                        outcome = session.ingest(batch)
                    best = min(best, time.perf_counter() - start)
                except BudgetExceededError:
                    tripped = True
                    break
                if attempt == 0:
                    digests[flavor] = _fixpoint_digest(
                        [(unit.label, outcome.result.idb)]
                    )
            if tripped:
                break
        journal[flavor] = {"ingest_time_s": best}
    journal["fsync_overhead"] = (
        journal["journaled"]["ingest_time_s"]
        / journal["unjournaled"]["ingest_time_s"]
        if journal["unjournaled"]["ingest_time_s"] > 0
        else float("inf")
    )

    replay_best = float("inf")
    recompute_best = float("inf")
    replay_digest = recompute_digest = ""
    replayed = 0
    for attempt in range(repeat):
        with tempfile.TemporaryDirectory() as tmp:
            try:
                # Checkpoint covers only the initial EDB; the ingests
                # live solely in the journal (store-less session
                # sharing the same journal directory).
                Session(
                    unit.program,
                    unit.make_database(),
                    store=CheckpointStore(tmp),
                    checkpoint_every=0,
                    budget=governor,
                ).run()
                writer = Session(
                    unit.program,
                    unit.make_database(),
                    store=None,
                    journal=IngestJournal(Path(tmp) / "journal"),
                    budget=governor,
                )
                writer.run()
                for batch in ingest_batches():
                    writer.ingest(batch)
                writer.journal.close()

                fresh = Session(
                    unit.program,
                    unit.make_database(),
                    store=CheckpointStore(tmp),
                    checkpoint_every=0,
                    budget=governor,
                )
                start = time.perf_counter()
                recovered = fresh.recover()
                replay_best = min(replay_best, time.perf_counter() - start)

                cold_db = unit.make_database()
                for batch in ingest_batches():
                    for pred, row in batch:
                        cold_db.add_row(pred, row)
                start = time.perf_counter()
                cold = evaluate(unit.program, cold_db, budget=governor)
                recompute_best = min(
                    recompute_best, time.perf_counter() - start
                )
            except BudgetExceededError:
                tripped = True
                break
            if attempt == 0:
                replayed = recovered.replayed
                replay_digest = _fixpoint_digest([(unit.label, recovered.result.idb)])
                recompute_digest = _fixpoint_digest([(unit.label, cold.idb)])
    journal["replay"] = {
        "time_s": replay_best,
        "records_replayed": replayed,
        "fixpoint_sha256": replay_digest,
    }
    journal["recompute"] = {
        "time_s": recompute_best,
        "fixpoint_sha256": recompute_digest,
    }
    journal["replay_vs_recompute"] = (
        replay_best / recompute_best if recompute_best > 0 else float("inf")
    )
    journal["budget_exceeded"] = tripped
    journal["digest_match"] = (
        None
        if tripped
        else len({replay_digest, recompute_digest, *digests.values()}) == 1
    )
    return journal


def _serve_workloads(quick: bool) -> dict[str, dict]:
    """Two tenant workloads for the serving benchmark.

    Each is a recursive closure over a seeded random edge set, shipped
    as program/facts *text* (the daemon's wire format) together with
    the goal shapes the clients cycle.  Per tenant the bound-first
    goals share one adornment — the artifact cache collapses them to a
    single compiled pipeline, so almost every request after warmup is
    a cache hit."""

    def edge_facts(predicate: str, nodes: int, edges: int, seed: int) -> str:
        rng = random.Random(seed)
        rows: set[tuple[int, int]] = set()
        while len(rows) < edges:
            left = rng.randrange(nodes - 1)
            rows.add((left, rng.randrange(left + 1, nodes)))
        return "\n".join(f"{predicate}({l}, {r})." for l, r in sorted(rows))

    nodes, edges = (18, 30) if quick else (40, 90)
    return {
        "alpha": {
            "program": "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).",
            "query": "p",
            "facts": edge_facts("e", nodes, edges, seed=11),
            "goals": ["p(0, V)", "p(1, V)", "p(2, V)", f"p(0, {nodes - 1})"],
        },
        "beta": {
            "program": "q(X, Y) :- f(X, Y).\nq(X, Y) :- f(X, Z), q(Z, Y).",
            "query": "q",
            "facts": edge_facts("f", nodes, edges, seed=23),
            "goals": ["q(0, V)", "q(3, V)", "q(5, V)", f"q(1, {nodes - 1})"],
        },
    }


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = int(q * (len(sorted_values) - 1) + 0.5)
    return sorted_values[min(rank, len(sorted_values) - 1)]


def _run_serve_bench(
    *, quick: bool = False, clients: int = 8, rounds: int | None = None
) -> dict:
    """The serving benchmark: a real daemon under concurrent clients.

    Boots the full stack (:class:`~repro.serve.app.ServeApp` behind the
    asyncio HTTP shell) on an ephemeral port, registers two tenants and
    drives ``clients`` concurrent keep-alive clients cycling the
    tenants' bound-goal shapes.  Reports client-observed p50/p99
    latency and throughput, the artifact-cache hit counts observed via
    ``serve.cache`` trace events (repeated shapes must hit), and an
    ``answers_match`` gate: every daemon response must equal the
    single-process pipeline's answers for the same goal — concurrency
    and caching may cost time, never answers.

    Latencies are wall clock (machine-dependent); ``answers_match``
    and the hit/miss split are the deterministic part.
    """
    import asyncio
    import threading

    from .datalog.parser import parse_atom, parse_facts, parse_program
    from .magic.transform import match_query_atom
    from .observability.trace import RingBufferSink, tracing
    from .serve.app import ServeApp
    from .serve.client import ServeClient
    from .serve.http import ServeDaemon
    from .serve.wire import rows_payload

    rounds = rounds if rounds is not None else (6 if quick else 25)
    workloads = _serve_workloads(quick)

    # The single-process ground truth for every (tenant, goal) pair.
    expected: dict[tuple[str, str], list] = {}
    for name, spec in workloads.items():
        program = parse_program(spec["program"], query=spec["query"])
        database = Database(parse_facts(spec["facts"]))
        for goal_text in spec["goals"]:
            goal = parse_atom(goal_text)
            report = run_pipeline(program, (), goal, order="semantic-first")
            assert report.program is not None
            result = evaluate(
                report.program, database, engine="slots", plan_order="cost"
            )
            expected[(name, goal_text)] = rows_payload(
                frozenset(
                    row for row in result.query_rows()
                    if match_query_atom(row, goal)
                )
            )

    app = ServeApp()
    daemon = ServeDaemon(app)
    ready = threading.Event()
    loop = asyncio.new_event_loop()

    def _serve() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(daemon.start())
        ready.set()
        try:
            loop.run_until_complete(daemon.serve_forever())
        except asyncio.CancelledError:
            pass
        finally:
            loop.run_until_complete(daemon.stop())
            loop.close()

    latencies: list[float] = []
    mismatches: list[str] = []
    collect = threading.Lock()
    plan = [
        (name, goal) for name, spec in workloads.items() for goal in spec["goals"]
    ]

    def _client(index: int) -> None:
        local_latencies: list[float] = []
        local_mismatches: list[str] = []
        with ServeClient(daemon.host, daemon.port) as client:
            for step in range(rounds):
                name, goal = plan[(index + step) % len(plan)]
                start = time.perf_counter()
                response = client.query(name, goal)
                local_latencies.append(time.perf_counter() - start)
                if response["answers"] != expected[(name, goal)]:
                    local_mismatches.append(f"{name}:{goal}")
        with collect:
            latencies.extend(local_latencies)
            mismatches.extend(local_mismatches)

    sink = RingBufferSink()
    thread = threading.Thread(target=_serve, name="bench-serve", daemon=True)
    with tracing(sink):
        thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("serving benchmark daemon failed to start")
        try:
            with ServeClient(daemon.host, daemon.port) as setup:
                for name, spec in workloads.items():
                    setup.register(
                        name,
                        spec["program"],
                        facts=spec["facts"],
                        query=spec["query"],
                    )
            wall_start = time.perf_counter()
            workers = [
                threading.Thread(target=_client, args=(i,), name=f"bench-client-{i}")
                for i in range(clients)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            wall = time.perf_counter() - wall_start
            with ServeClient(daemon.host, daemon.port) as probe:
                stats = probe.stats()
        finally:
            asyncio.run_coroutine_threadsafe(daemon.stop(), loop).result(timeout=30)
            thread.join(timeout=30)

    cache_events = [
        event for event in sink
        if event.kind == "event" and event.name == "serve.cache"
    ]
    trace_hits = sum(1 for event in cache_events if event.attrs.get("hit"))
    trace_misses = len(cache_events) - trace_hits
    ordered = sorted(latencies)
    return {
        "clients": clients,
        "rounds_per_client": rounds,
        "requests": len(latencies),
        "tenants": sorted(workloads),
        "goal_shapes": len(plan),
        "latency_ms": {
            "p50": _percentile(ordered, 0.50) * 1000,
            "p99": _percentile(ordered, 0.99) * 1000,
            "max": (ordered[-1] if ordered else 0.0) * 1000,
            "mean": (sum(ordered) / len(ordered) if ordered else 0.0) * 1000,
        },
        "wall_time_s": wall,
        "throughput_rps": len(latencies) / wall if wall > 0 else float("inf"),
        "cache": stats["cache"],
        "trace_cache_hits": trace_hits,
        "trace_cache_misses": trace_misses,
        "cache_hits_observed": trace_hits > 0,
        "answers_match": not mismatches,
        "mismatched": sorted(set(mismatches)),
    }


def run_bench(
    *,
    workloads: Sequence[str] | None = None,
    quick: bool = False,
    repeat: int = 3,
    timeout: float | None = None,
    max_iterations: int | None = None,
    max_facts: int | None = None,
    storage: str | None = None,
    workers: int | None = None,
) -> dict:
    """Run the suite; return the JSON-ready results payload.

    ``workers=N`` adds a sharded-evaluation axis to every engine
    workload: each is re-run at worker counts {1, 2, ..., N} (the
    powers of two up to ``N``) with per-count timings, the modeled
    ``critical_path_s``, pool construction cost
    (``shard_overhead_seconds``, outside the timed region) and
    ``speedup_parallel_vs_columnar`` on both the critical-path and
    wall bases.  Sharded digests join the cross-engine fixpoint gate.

    ``payload["ok"]`` is False when any workload's fixpoints differ
    between engines — the CLI turns that into a non-zero exit.

    ``storage`` forces every engine config onto one backend (the CI
    ``storage-matrix`` leg runs the whole suite under ``columnar`` to
    assert the digest gate holds with no rows-backend runs in the mix);
    by default each config uses its own choice.

    ``timeout`` / ``max_iterations`` / ``max_facts`` govern the runs
    (the timeout is shared across the whole suite).  An engine entry
    that trips a budget keeps its partial stats; its workload is marked
    ``budget_exceeded`` and its ``fixpoints_match`` becomes ``None``
    (partial fixpoints are not comparable), without flipping
    ``payload["ok"]``.  The CLI exits 1 when any budget tripped."""
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be a positive int, got {workers!r}")
    budget = Budget(
        timeout=timeout, max_iterations=max_iterations, max_facts=max_facts
    )
    governor = None if budget.unlimited else Governor(budget)
    if storage is not None:
        from .datalog.database import STORAGES

        if storage not in STORAGES:
            raise ValueError(
                f"unknown storage {storage!r} (available: {', '.join(STORAGES)})"
            )
    configs = (
        ENGINE_CONFIGS
        if storage is None
        else tuple(
            (label, {**kwargs, "storage": storage}) for label, kwargs in ENGINE_CONFIGS
        )
    )
    suite = build_workloads(quick=quick)
    # ``bench_serve`` is not an engine workload (it benchmarks the
    # daemon, not an evaluate() configuration) but is selectable by
    # name like the others; no filter runs everything including it.
    run_serve = not workloads or "bench_serve" in workloads
    if workloads:
        selected = [name for name in workloads if name != "bench_serve"]
        unknown = [name for name in selected if name not in suite]
        if unknown:
            raise ValueError(
                f"unknown workloads: {', '.join(unknown)} "
                f"(available: {', '.join(sorted([*suite, 'bench_serve']))})"
            )
        suite = {name: suite[name] for name in selected}
    payload: dict = {
        "generated_by": "python -m repro bench --json"
        + (" --quick" if quick else ""),
        "quick": quick,
        "repeat": repeat,
        "engines": [label for label, _ in configs],
        "storage": storage,
        "workers": workers,
        "workloads": {},
        "ok": True,
        "budget_exceeded": False,
    }
    workers_axis: list[int] = []
    if workers is not None:
        count = 1
        while count < workers:
            workers_axis.append(count)
            count *= 2
        workers_axis.append(workers)
    for name, units in suite.items():
        entry: dict = {"units": [unit.label for unit in units], "engines": {}}
        digests: dict[str, str] = {}
        any_tripped = False
        for label, engine_kwargs in configs:
            seconds, stats, digest, tripped = _run_engine(
                units, engine_kwargs, repeat, governor
            )
            digests[label] = digest
            any_tripped = any_tripped or tripped
            entry["engines"][label] = {
                "time_s": seconds,
                "fixpoint_sha256": digest,
                "stats": stats.as_dict(),
                "budget_exceeded": tripped,
            }
        if any_tripped:
            # Partial fixpoints are not comparable across engines: the
            # trip point depends on the engine's work order, so neither
            # flag a mismatch nor certify a match.
            entry["budget_exceeded"] = True
            entry["fixpoints_match"] = None
            payload["budget_exceeded"] = True
        else:
            entry["fixpoints_match"] = len(set(digests.values())) == 1
            if not entry["fixpoints_match"]:
                payload["ok"] = False
        base = entry["engines"]["interpreted"]
        for label, _ in configs[1:]:
            other = entry["engines"][label]
            entry.setdefault("speedup_vs_interpreted", {})[label] = (
                base["time_s"] / other["time_s"] if other["time_s"] > 0 else float("inf")
            )
            entry.setdefault("rows_scanned_vs_interpreted", {})[label] = (
                other["stats"]["rows_scanned"] - base["stats"]["rows_scanned"]
            )
        if {"slots-cost", "slots-columnar"} <= entry["engines"].keys():
            # The headline columnar number: same engine, same plans,
            # only the storage backend (and its block kernels) differ.
            rows_time = entry["engines"]["slots-cost"]["time_s"]
            col_time = entry["engines"]["slots-columnar"]["time_s"]
            entry["speedup_columnar_vs_rows"] = (
                rows_time / col_time if col_time > 0 else float("inf")
            )
        if workers_axis:
            by_count = {
                str(count): _run_parallel(units, count, repeat, governor)
                for count in workers_axis
            }
            parallel_tripped = any(
                e["budget_exceeded"] for e in by_count.values()
            )
            parallel: dict = {"workers": by_count}
            if any_tripped or parallel_tripped:
                parallel["fixpoints_match"] = None
                if parallel_tripped:
                    entry["budget_exceeded"] = True
                    entry["fixpoints_match"] = None
                    payload["budget_exceeded"] = True
            else:
                # The sharded digests join the cross-engine gate: every
                # worker count must reproduce the sequential fixpoint.
                reference = digests.get("slots-columnar") or next(
                    iter(digests.values())
                )
                parallel["fixpoints_match"] = all(
                    e["fixpoint_sha256"] == reference for e in by_count.values()
                )
                if not parallel["fixpoints_match"]:
                    payload["ok"] = False
            columnar = entry["engines"].get("slots-columnar")
            if columnar is not None and columnar["time_s"] > 0:
                parallel["speedup_parallel_vs_columnar"] = {
                    # Quoted on the modeled critical path (see
                    # docs/parallel.md): master serial time plus the
                    # per-barrier max of worker CPU time — what the
                    # fleet's wall clock becomes given >= N free cores.
                    # Raw wall-clock ratios ride alongside; on a box
                    # with fewer cores than workers they only measure
                    # time-slicing.
                    "basis": "critical_path",
                    "critical_path": {
                        count: (
                            columnar["time_s"] / e["critical_path_s"]
                            if e["critical_path_s"] > 0
                            else float("inf")
                        )
                        for count, e in by_count.items()
                    },
                    "wall": {
                        count: (
                            columnar["time_s"] / e["time_s"]
                            if e["time_s"] > 0
                            else float("inf")
                        )
                        for count, e in by_count.items()
                    },
                }
            entry["parallel"] = parallel
            # The recovery section: one injected worker kill at the
            # fleet's widest configuration must not change the digest,
            # and its wall-clock overhead is the supervision cost the
            # robustness story pays.
            recovery = _run_recovery(units, workers_axis[-1], repeat, governor)
            if recovery["budget_exceeded"] or any_tripped:
                # Partial fixpoints are not comparable (see above).
                recovery["digest_match"] = None
                if recovery["budget_exceeded"]:
                    entry["budget_exceeded"] = True
                    payload["budget_exceeded"] = True
            else:
                reference = digests.get("slots-columnar") or next(
                    iter(digests.values())
                )
                recovery["digest_match"] = (
                    recovery["fixpoint_sha256"] == reference
                    and recovery["clean_sha256"] == reference
                )
                if not recovery["digest_match"]:
                    payload["ok"] = False
            entry["recovery"] = recovery
        payload["workloads"][name] = entry
    if "bench_scaling" in suite:
        payload["checkpoint_overhead"] = dict(
            _run_checkpoint_overhead(suite["bench_scaling"], repeat, governor),
            workload="bench_scaling",
            engine="slots-cost",
        )
        overhead = payload["checkpoint_overhead"]
        if overhead["fixpoints_match"] is False:
            payload["ok"] = False
        if any(e["budget_exceeded"] for e in overhead["every"].values()):
            payload["budget_exceeded"] = True
        payload["journal"] = dict(
            _run_journal(suite["bench_scaling"], repeat, governor),
            workload="bench_scaling",
            engine="slots-cost",
        )
        if payload["journal"]["digest_match"] is False:
            payload["ok"] = False
        if payload["journal"]["budget_exceeded"]:
            payload["budget_exceeded"] = True
    if run_serve:
        payload["serve"] = _run_serve_bench(quick=quick)
        if not payload["serve"]["answers_match"]:
            payload["ok"] = False
    return payload


def render_results(payload: Mapping) -> str:
    """A fixed-width console table of the payload."""
    lines = [
        f"engine benchmark ({'quick' if payload['quick'] else 'full'} suite, "
        f"best of {payload['repeat']}):",
        "",
        f"{'workload':<18} {'engine':<15} {'time(ms)':>9} {'speedup':>8} "
        f"{'rows':>9} {'probes':>9} {'facts':>8}  fixpoint",
    ]
    for name, entry in payload["workloads"].items():
        base_time = entry["engines"]["interpreted"]["time_s"]
        for label, engine in entry["engines"].items():
            speedup = base_time / engine["time_s"] if engine["time_s"] > 0 else float("inf")
            stats = engine["stats"]
            lines.append(
                f"{name:<18} {label:<15} {engine['time_s'] * 1000:9.2f} "
                f"{speedup:7.2f}x {stats['rows_scanned']:9d} "
                f"{stats['probes']:9d} {stats['facts_derived']:8d}  "
                f"{engine['fixpoint_sha256'][:12]}"
            )
        parallel = entry.get("parallel")
        if parallel:
            speedups = parallel.get("speedup_parallel_vs_columnar", {})
            for count in sorted(parallel["workers"], key=int):
                shard = parallel["workers"][count]
                modeled = speedups.get("critical_path", {}).get(count)
                wallx = speedups.get("wall", {}).get(count)
                suffix = (
                    ""
                    if modeled is None
                    else f" {modeled:6.2f}x crit-path, {wallx:.2f}x wall"
                )
                lines.append(
                    f"{name:<18} {'sharded-w' + count:<15} "
                    f"{shard['time_s'] * 1000:9.2f} crit "
                    f"{shard['critical_path_s'] * 1000:8.2f}{suffix}  "
                    f"{shard['fixpoint_sha256'][:12]}"
                )
        recovery = entry.get("recovery")
        if recovery:
            verdict = {True: "digest match", False: "DIGEST MISMATCH", None: "n/a"}[
                recovery.get("digest_match")
            ]
            lines.append(
                f"{name:<18} {'recovery-w' + str(recovery['workers']):<15} "
                f"{recovery['killed_s'] * 1000:9.2f} clean "
                f"{recovery['clean_s'] * 1000:7.2f} "
                f"{recovery['overhead_ratio']:5.2f}x kill-overhead, "
                f"{recovery['worker_restarts']} restart(s), "
                f"{recovery['shards_redispatched']} re-dispatch(es); {verdict}"
            )
        if entry.get("budget_exceeded"):
            lines.append(
                f"{'':<18} budget exceeded — partial fixpoints, not comparable"
            )
        else:
            verdict = "match" if entry["fixpoints_match"] else "DIFFER"
            if parallel and parallel.get("fixpoints_match") is False:
                verdict = "DIFFER (sharded)"
            columnar = entry.get("speedup_columnar_vs_rows")
            extra = "" if columnar is None else f"; columnar {columnar:.2f}x vs rows"
            lines.append(f"{'':<18} fixpoints {verdict}{extra}")
    overhead = payload.get("checkpoint_overhead")
    if overhead:
        lines.append("")
        lines.append(
            f"checkpoint overhead ({overhead['workload']}, {overhead['engine']}):"
        )
        base_time = overhead["every"]["0"]["time_s"]
        for key in sorted(overhead["every"], key=int):
            entry = overhead["every"][key]
            ratio = entry["time_s"] / base_time if base_time > 0 else float("inf")
            label = "in-memory" if key == "0" else f"every {key}"
            lines.append(
                f"  {label:<10} {entry['time_s'] * 1000:9.2f} ms "
                f"({ratio:5.2f}x, {entry['checkpoints']} checkpoints)"
            )
        if overhead["fixpoints_match"] is False:
            lines.append("  CHECKPOINT FIXPOINT MISMATCH — persistence changed answers")
    journal = payload.get("journal")
    if journal:
        lines.append("")
        lines.append(
            f"ingest journal ({journal['workload']}, {journal['engine']}, "
            f"{journal['batches']}x{journal['rows_per_batch']} rows):"
        )
        lines.append(
            f"  fsync-per-ingest {journal['journaled']['ingest_time_s'] * 1000:9.2f} ms "
            f"vs unjournaled {journal['unjournaled']['ingest_time_s'] * 1000:9.2f} ms "
            f"({journal['fsync_overhead']:.2f}x)"
        )
        lines.append(
            f"  suffix replay    {journal['replay']['time_s'] * 1000:9.2f} ms "
            f"({journal['replay']['records_replayed']} records) vs cold recompute "
            f"{journal['recompute']['time_s'] * 1000:9.2f} ms "
            f"({journal['replay_vs_recompute']:.2f}x)"
        )
        if journal["digest_match"] is False:
            lines.append("  JOURNAL DIGEST MISMATCH — replay changed answers")
    serve = payload.get("serve")
    if serve:
        latency = serve["latency_ms"]
        lines.append("")
        lines.append(
            f"serving ({serve['clients']} concurrent clients, "
            f"{serve['requests']} requests over {len(serve['tenants'])} tenants):"
        )
        lines.append(
            f"  latency p50 {latency['p50']:.2f} ms, p99 {latency['p99']:.2f} ms, "
            f"max {latency['max']:.2f} ms; {serve['throughput_rps']:.0f} req/s"
        )
        lines.append(
            f"  artifact cache: {serve['trace_cache_hits']} hits, "
            f"{serve['trace_cache_misses']} misses (serve.cache trace events)"
        )
        if not serve["answers_match"]:
            lines.append(
                "  SERVE ANSWER MISMATCH — daemon answers differ from the "
                f"single-process pipeline: {', '.join(serve['mismatched'])}"
            )
    lines.append("")
    if not payload["ok"]:
        lines.append("FIXPOINT MISMATCH — engines disagree")
    elif payload.get("budget_exceeded"):
        lines.append("BUDGET EXCEEDED — partial results only")
    else:
        lines.append("ok")
    return "\n".join(lines)


def write_results(payload: Mapping, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover - thin CLI
    from .cli import main as cli_main

    return cli_main(["bench"] + list(argv or ()))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
