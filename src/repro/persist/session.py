"""Durable evaluation sessions: run, crash, resume, ingest.

A :class:`Session` binds one workload (program + database + engine
options) to one checkpoint directory and exposes the durable life
cycle:

* :meth:`Session.run` — evaluate with periodic checkpoints.  Saves go
  through :func:`~repro.persist.store.save_with_retry`; a store that
  stays broken after the retry budget **degrades** the session to plain
  in-memory evaluation (recorded as a
  :class:`~repro.robustness.budget.FallbackStep` and a
  ``budget.fallback`` trace event) instead of failing the run.
* :meth:`Session.resume` — pick up the newest valid checkpoint for
  this exact workload digest and restart the fixpoint from its saved
  frontier.  Corrupt or foreign checkpoints are quarantined during the
  walk; with no usable checkpoint the session falls back to a fresh
  run.
* :meth:`Session.ingest` — add new EDB facts and re-derive
  **incrementally**: the new facts seed delta relations
  (Bancilhon–Ramakrishnan differentiation — each rule fires once per
  changed body position with the delta there and full relations
  elsewhere), then normal semi-naive rounds propagate inside each SCC,
  in dependency order.  Every derivation that uses at least one new
  fact is covered, so the result is row-identical to recomputation.
  When an ingested predicate occurs **negated** in the program the
  update is non-monotonic (new facts can retract conclusions), so
  ingest detects this and falls back to a full recompute — wrong
  answers are never an option.

  Ingest is **journal-first**: the normalized new rows are appended to
  the session's :class:`~repro.persist.journal.IngestJournal` and
  ``fsync``\\ ed *before* the in-memory EDB mutates — the fsync is the
  acknowledgment point, so an acknowledged ingest survives a SIGKILL
  at any later instant (mid-fixpoint, mid-checkpoint, or with the
  checkpoint store degraded).  Once the post-ingest complete
  checkpoint lands, the covered journal prefix is compacted away.
* :meth:`Session.recover` — crash recovery: chain the journal's
  acknowledged records onto the initial EDB, restore the newest
  *complete* checkpoint along that chain, and idempotently replay the
  uncovered suffix (incrementally when monotone, by recompute
  otherwise).  The resulting fixpoint is byte-identical to a cold
  recompute over (initial EDB + every acknowledged ingest).
* :meth:`Session.inspect` — a JSON-ready summary of store + journal.

Statistics stay cumulative across the whole life cycle (resume and
ingest merge the prior snapshot's counters before adding new work), so
budget accounting and reports see the true total cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..datalog.atoms import Atom, Literal
from ..datalog.database import Database, Relation, Row
from ..datalog.evaluation import (
    EvaluationResult,
    EvaluationSnapshot,
    EvaluationStats,
    _make_engine,
    _sccs,
    evaluate,
)
from ..datalog.program import Program
from ..observability.trace import Tracer, get_tracer
from ..robustness.budget import Budget, CancellationToken, FallbackStep, Governor
from .checkpoint import Checkpoint, CheckpointError, workload_digest
from .journal import (
    FlakyJournal,
    IngestJournal,
    JournalMismatch,
    JournalRecord,
    commit_with_retry,
)
from .store import (
    CheckpointStore,
    CheckpointStoreUnavailable,
    FlakyStore,
    RetryPolicy,
    save_with_retry,
)

__all__ = ["Session", "SessionResult"]

#: Facts accepted by :meth:`Session.ingest`: ground atoms or (predicate, row).
FactLike = "Atom | tuple[str, Sequence[object]]"


@dataclass
class SessionResult:
    """The outcome of one session operation.

    ``mode`` records the path taken: ``"fresh"`` (full evaluation),
    ``"resumed"`` (restarted from a checkpoint), ``"incremental"``
    (delta-seeded ingest), ``"recompute"`` (ingest fell back to full
    re-evaluation), ``"warm"`` (zero-evaluation checkpoint restore) or
    ``"recovered"`` (checkpoint restore plus journal replay).
    ``fallback_chain`` lists every degradation taken, in order;
    ``replayed`` counts the journal records recovery re-applied.
    """

    result: EvaluationResult
    mode: str
    checkpoints_written: int = 0
    resumed_seq: int | None = None
    fallback_chain: list[FallbackStep] = field(default_factory=list)
    replayed: int = 0

    @property
    def stats(self) -> EvaluationStats:
        return self.result.stats


class Session:
    """One durable evaluation workload bound to a checkpoint store."""

    def __init__(
        self,
        program: Program,
        database: Database,
        *,
        store: "CheckpointStore | FlakyStore | None" = None,
        journal: "IngestJournal | FlakyJournal | None | str" = "auto",
        checkpoint_every: int = 1,
        constraints: Sequence[object] = (),
        strategy: str = "seminaive",
        engine: str = "slots",
        plan_order: str = "cost",
        storage: str | None = None,
        workers: int | None = None,
        budget: "Budget | Governor | None" = None,
        cancellation: CancellationToken | None = None,
        tracer: Tracer | None = None,
        retry: RetryPolicy | None = None,
        throttle: float = 0.0,
    ):
        self.program = program
        # The session evaluates (and ingests) in one storage backend for
        # its whole life cycle; ``storage=None`` keeps the database's
        # own.  Conversion happens once here, not per run — the workload
        # digest is computed over decoded rows, so it is unaffected.
        self.database = (
            database if storage is None else database.to_storage(storage)
        )
        self.store = store
        # ``journal="auto"`` (the default) co-locates the write-ahead
        # ingest journal with the checkpoint store (``<dir>/journal``);
        # pass an explicit journal to place it elsewhere, or ``None``
        # to run without write-ahead durability.
        if journal == "auto":
            self.journal = (
                None
                if store is None
                else IngestJournal(Path(store.directory) / "journal", tracer=tracer)
            )
        else:
            self.journal = journal  # type: ignore[assignment]
        # The highest journal sequence the newest *complete* checkpoint
        # is known to cover (recovery recomputes it from the digest
        # chain; ingest advances it as covering checkpoints land).
        self._covered_seq = 0
        self.checkpoint_every = checkpoint_every
        self.constraints = tuple(constraints)
        self.strategy = strategy
        self.engine = engine
        self.plan_order = plan_order
        # ``workers=N`` shards full runs and resumes across N forked
        # processes (see docs/parallel.md); incremental ingest stays
        # sequential — its delta-seeded firings are far below the
        # sharding break-even point.
        self.workers = workers
        self.budget = budget
        self.cancellation = cancellation
        self._tracer = tracer
        self.retry = retry if retry is not None else RetryPolicy()
        self.throttle = throttle
        self._last: EvaluationResult | None = None

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def workload(self) -> str:
        """The digest binding checkpoints to this exact workload."""
        return workload_digest(self.program, self.database, self.constraints)

    # ------------------------------------------------------------------
    def _governor(self) -> Governor | None:
        return Governor.of(self.budget, self.cancellation)

    def _make_sink(
        self,
        governor: Governor | None,
        fallback_chain: list[FallbackStep],
        counter: list[int],
    ):
        """A checkpoint sink that saves-with-retry and degrades on failure."""
        if self.store is None:
            return None
        store = self.store
        workload = self.workload()
        state = {"degraded": False}

        def sink(snapshot: EvaluationSnapshot) -> None:
            if state["degraded"]:
                return
            if snapshot.complete and snapshot.edb is None:
                # Complete checkpoints are self-contained: they carry
                # the EDB so the journal can compact the records they
                # cover without losing the only copy of ingested facts.
                snapshot = replace(snapshot, edb=self._edb_rows())
            checkpoint = Checkpoint(
                seq=store.next_seq(), workload=workload, snapshot=snapshot
            )
            try:
                save_with_retry(
                    store, checkpoint, policy=self.retry, governor=governor
                )
            except CheckpointStoreUnavailable as exc:
                state["degraded"] = True
                step = FallbackStep(
                    stage="session.checkpoint",
                    fell_back_to="in-memory",
                    reason=str(exc),
                )
                fallback_chain.append(step)
                tracer = self.tracer
                if tracer.enabled:
                    tracer.event(
                        "budget.fallback",
                        stage=step.stage,
                        fell_back_to=step.fell_back_to,
                        reason=step.reason,
                    )
                return
            counter[0] += 1
            if self.throttle:
                # Deliberate pacing between checkpoints; the crash tests
                # use it to make "SIGKILL mid-fixpoint" land reliably
                # between two saves.
                time.sleep(self.throttle)

        return sink

    # ------------------------------------------------------------------
    def run(self, *, resume: bool = False) -> SessionResult:
        """Evaluate the workload, checkpointing as configured.

        With ``resume=True`` the newest valid checkpoint of this
        workload (if any) supplies the starting frontier; without one
        the run is simply fresh.
        """
        governor = self._governor()
        fallback_chain: list[FallbackStep] = []
        counter = [0]
        resume_from: EvaluationSnapshot | None = None
        resumed_seq: int | None = None
        if resume and self.store is not None:
            latest = self.store.latest(expect_workload=self.workload())
            if latest is not None and latest.snapshot.strategy == self.strategy:
                resume_from = latest.snapshot
                resumed_seq = latest.seq
        sink = self._make_sink(governor, fallback_chain, counter)
        result = evaluate(
            self.program,
            self.database,
            strategy=self.strategy,
            engine=self.engine,
            plan_order=self.plan_order,
            workers=self.workers,
            budget=governor,
            tracer=self._tracer,
            checkpoint_every=self.checkpoint_every,
            checkpoint_sink=sink,
            resume_from=resume_from,
        )
        self._last = result
        # Degradation-ladder rungs the fleet took (worker recovery
        # exhaustion) join the session's own fallback steps, so callers
        # see one chain for the whole run.
        fallback_chain.extend(getattr(result, "fallbacks", ()))
        return SessionResult(
            result=result,
            mode="resumed" if resume_from is not None else "fresh",
            checkpoints_written=counter[0],
            resumed_seq=resumed_seq,
            fallback_chain=fallback_chain,
        )

    def resume(self) -> SessionResult:
        """:meth:`run` with ``resume=True``."""
        return self.run(resume=True)

    def warm_start(self) -> SessionResult | None:
        """Restore the latest *complete* fixpoint with zero evaluation.

        The serving daemon's restart path: when the store holds a
        complete checkpoint for this exact workload digest, the saved
        IDB is rebuilt into an :class:`~repro.datalog.evaluation
        .EvaluationResult` directly — no rules fire, no rounds run —
        and the session is primed for incremental :meth:`ingest`.
        Returns ``None`` when no complete checkpoint exists (the caller
        decides whether to fall back to :meth:`run`).
        """
        if self.store is None:
            return None
        latest = self.store.latest(expect_workload=self.workload())
        if latest is None or not latest.complete:
            return None
        outcome = self._complete_from(
            (latest.snapshot.idb, latest.snapshot.stats), "warm", []
        )
        outcome.resumed_seq = latest.seq
        return outcome

    # ------------------------------------------------------------------
    def _normalize_facts(self, facts: Iterable[object]) -> list[tuple[str, Row]]:
        normalized: list[tuple[str, Row]] = []
        for fact in facts:
            if isinstance(fact, Atom):
                if not fact.is_ground():
                    raise ValueError(f"ingested fact {fact} is not ground")
                normalized.append(
                    (fact.predicate, tuple(arg.value for arg in fact.args))  # type: ignore[union-attr]
                )
            else:
                predicate, row = fact  # type: ignore[misc]
                normalized.append((str(predicate), tuple(row)))
        return normalized

    def _prior_fixpoint(self) -> "tuple[Mapping[str, frozenset], EvaluationStats] | None":
        """The last complete fixpoint: in-memory first, else the store."""
        if self._last is not None:
            return (
                {pred: rel.rows() for pred, rel in self._last.idb.items()},
                self._last.stats,
            )
        if self.store is not None:
            latest = self.store.latest(expect_workload=self.workload())
            if latest is not None and latest.complete:
                return latest.snapshot.idb, latest.snapshot.stats
        return None

    def _negated_predicates(self) -> set[str]:
        return {
            lit.predicate
            for rule in self.program.rules
            for lit in rule.negative_literals
        }

    def _edb_rows(self) -> dict[str, frozenset]:
        return {
            pred: frozenset(tuple(row) for row in self.database.relation(pred).rows())
            for pred in sorted(self.database.predicates())
        }

    def _trace_fallback(self, step: FallbackStep) -> None:
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "budget.fallback",
                stage=step.stage,
                fell_back_to=step.fell_back_to,
                reason=step.reason,
            )

    def _journal_commit(
        self, new_rows: Mapping[str, Sequence[Row]], governor: Governor | None
    ) -> int | None:
        """Append + fsync the normalized rows; returns the acked seq.

        This is the **acknowledgment point** of an ingest: it runs
        before any in-memory mutation, so a commit that fails after the
        retry budget leaves the session byte-identical to before the
        call — the caller simply never acked.  The record carries the
        *pre-ingest* workload digest, the chain link recovery uses.
        """
        if self.journal is None:
            return None
        record = JournalRecord(
            seq=self.journal.next_seq(),
            workload=self.workload(),
            rows=tuple(
                (predicate, tuple(row))
                for predicate in sorted(new_rows)
                for row in new_rows[predicate]
            ),
        )
        commit_with_retry(
            self.journal, record, policy=self.retry, governor=governor
        )
        return record.seq

    def _mark_covered(self, seq: int | None, outcome: SessionResult) -> None:
        """Compact the journal once a covering complete checkpoint landed."""
        if self.journal is None or seq is None:
            return
        degraded = any(
            step.stage == "session.checkpoint" for step in outcome.fallback_chain
        )
        if outcome.checkpoints_written > 0 and not degraded:
            self._covered_seq = max(self._covered_seq, seq)
            self.journal.compact(self._covered_seq)

    def ingest(self, facts: Iterable[object]) -> SessionResult:
        """Add EDB facts and bring the fixpoint up to date incrementally.

        Facts are ground :class:`~repro.datalog.atoms.Atom` objects or
        ``(predicate, row)`` pairs.  Requires a prior *complete*
        fixpoint (from this session or its store); without one — or
        when an ingested predicate occurs negated in the program
        (non-monotonic update) — the session falls back to a full
        recompute, recorded in the result's ``fallback_chain``.

        Ordering is **journal-first**: normalize and validate, decide
        the path (incremental vs. recompute), journal the new rows with
        append+fsync, and only then mutate the EDB and derive.  A crash
        or budget trip at any point after the fsync is recoverable via
        :meth:`recover`; a journal failure before the fsync leaves the
        session completely untouched (nothing was acknowledged).
        """
        # Normalize and validate BEFORE any state changes: an invalid
        # fact must never leave a half-applied batch behind.
        normalized = self._normalize_facts(facts)
        idb_preds = self.program.idb_predicates
        for predicate, _row in normalized:
            if predicate in idb_preds:
                raise ValueError(
                    f"cannot ingest {predicate}: it is an IDB predicate "
                    "(derived, not stored)"
                )
        # The prior fixpoint must be anchored to the *pre-ingest* digest.
        prior = self._prior_fixpoint()
        # Deduplicate against the current EDB without mutating it — the
        # fallback decision below must be taken on a pristine session.
        new_rows: dict[str, list[Row]] = {}
        pending: set[tuple[str, Row]] = set()
        for predicate, row in normalized:
            if self.database.contains(predicate, row) or (predicate, row) in pending:
                continue
            pending.add((predicate, row))
            new_rows.setdefault(predicate, []).append(row)

        fallback_chain: list[FallbackStep] = []
        if not new_rows and prior is not None:
            # Nothing actually new: the prior fixpoint still stands.
            return self._complete_from(prior, "incremental", fallback_chain)

        reason = None
        if prior is None:
            reason = "no prior complete fixpoint to increment from"
        else:
            overlap = self._negated_predicates() & set(new_rows)
            if overlap:
                reason = (
                    f"ingested predicate(s) {', '.join(sorted(overlap))} "
                    "occur negated (non-monotonic)"
                )

        governor = self._governor()
        # Journal-first: fsync the acknowledged rows before the EDB
        # mutates.  From here on, any crash — including a budget trip
        # inside the recompute fallback below — is recoverable.
        journaled_seq = self._journal_commit(new_rows, governor)
        for predicate, rows in new_rows.items():
            for row in rows:
                self.database.add_row(predicate, row)

        if reason is not None:
            step = FallbackStep(
                stage="session.ingest", fell_back_to="recompute", reason=reason
            )
            fallback_chain.append(step)
            self._trace_fallback(step)
            fresh = self.run()
            fresh.mode = "recompute"
            fresh.fallback_chain = fallback_chain + fresh.fallback_chain
            self._mark_covered(journaled_seq, fresh)
            return fresh

        assert prior is not None
        prior_idb, prior_stats = prior
        idb, stats = self._incremental_fixpoint(
            new_rows, prior_idb, prior_stats, governor
        )
        result = EvaluationResult(
            idb=idb, stats=stats, program=self.program, database=self.database
        )
        self._last = result
        outcome = self._checkpoint_complete(
            result, "incremental", fallback_chain, governor
        )
        self._mark_covered(journaled_seq, outcome)
        return outcome

    # ------------------------------------------------------------------
    def _newest_self_contained(self) -> "Checkpoint | None":
        """The newest complete, EDB-carrying checkpoint that binds here.

        A *self-contained* checkpoint carries the extensional database
        alongside the fixpoint, so it can seed recovery even after the
        journal compacted the records it covers.  Binding is verified
        from the checkpoint's own contents: its EDB must reproduce its
        workload digest under this session's program and constraints
        (rules out a different workload sharing the directory), and it
        must contain every row of this session's initial EDB (rules
        out a checkpoint from an older registration whose facts have
        since changed).
        """
        if self.store is None:
            return None
        for path in sorted(self.store.paths(), reverse=True):
            try:
                found = self.store.load(path, quarantine_mismatch=False)
            except CheckpointError:
                continue
            if not found.complete or found.snapshot.edb is None:
                continue
            probe = Database(storage=self.database.storage)
            for predicate, rows in found.snapshot.edb.items():
                for row in rows:
                    probe.add_row(predicate, row)
            if workload_digest(self.program, probe, self.constraints) != found.workload:
                continue
            if not all(
                probe.contains(predicate, row)
                for predicate in self.database.predicates()
                for row in self.database.relation(predicate).rows()
            ):
                continue
            return found
        return None

    def recover(self) -> SessionResult:
        """Crash recovery: newest complete checkpoint + journal replay.

        The session must be constructed with the workload's *initial*
        EDB (as first registered).  Recovery then:

        1. replays the journal's acknowledged records onto the digest
           chain — each record carries the pre-ingest workload digest,
           so the chain positions every record against the initial EDB
           (records whose rows the EDB already contains are stale and
           skipped; a record that neither chains nor is contained
           raises :class:`~repro.persist.journal.JournalMismatch`);
        2. restores the newest *complete* checkpoint bound to any
           digest along the chain (zero evaluation, like
           :meth:`warm_start`);
        3. re-applies the uncovered suffix — incrementally for a
           monotone suffix, by governed recompute otherwise — and
           writes a fresh covering checkpoint, after which the covered
           journal prefix is compacted away.

        The result is byte-identical to a cold recompute over (initial
        EDB + every acknowledged ingest), which is exactly the
        crash-consistency property the kill-sweep tests assert.  With
        no journal and no checkpoint this is simply a fresh run, so
        callers can use ``recover()`` unconditionally at startup.
        """
        governor = self._governor()
        fallback_chain: list[FallbackStep] = []
        records = [] if self.journal is None else self.journal.replay()
        # Pre-seed from the newest self-contained checkpoint: it is the
        # durable copy of every ingested fact whose journal record has
        # been compacted away, and folding its EDB in first makes the
        # digest chain below start at that checkpoint's digest (covered
        # records then read as stale and skip; live records chain on).
        base = self._newest_self_contained()
        if base is not None:
            assert base.snapshot.edb is not None
            for predicate, rows in base.snapshot.edb.items():
                for row in rows:
                    self.database.add_row(predicate, row)
        digests = [self.workload()]
        applicable: list[JournalRecord] = []
        absorbed_seq = 0
        if records:
            scratch = self.database.copy()
            for record in records:
                if record.workload == digests[-1]:
                    for predicate, row in record.rows:
                        scratch.add_row(predicate, row)
                    applicable.append(record)
                    digests.append(
                        workload_digest(self.program, scratch, self.constraints)
                    )
                elif all(
                    scratch.contains(predicate, row) for predicate, row in record.rows
                ):
                    # Stale: the initial EDB already includes these rows
                    # (e.g. a re-registration that resent ingested
                    # facts).  Idempotent replay skips them.
                    absorbed_seq = max(absorbed_seq, record.seq)
                    continue
                else:
                    raise JournalMismatch(
                        f"journal record {record.seq} does not chain onto this "
                        f"workload (expected digest {digests[-1][:12]}…, record "
                        f"carries {record.workload[:12]}…)"
                    )
        checkpoint = None
        best_k = 0
        if self.store is not None:
            for k in range(len(digests) - 1, -1, -1):
                found = self.store.latest(
                    expect_workload=digests[k], quarantine_mismatch=False
                )
                if found is not None and found.complete:
                    checkpoint, best_k = found, k
                    break
        if checkpoint is None and base is not None:
            # The chain probe can miss when the newest file at the base
            # digest is an incomplete mid-evaluation snapshot; the base
            # itself is complete and sits at digests[0] by construction.
            checkpoint, best_k = base, 0

        if checkpoint is None:
            # No covering checkpoint anywhere: the journal is the only
            # durable copy — fold every acknowledged record into the
            # EDB and recompute under the governor.
            for record in applicable:
                for predicate, row in record.rows:
                    self.database.add_row(predicate, row)
            if applicable:
                step = FallbackStep(
                    stage="session.recover",
                    fell_back_to="recompute",
                    reason="no complete checkpoint covers the journal chain",
                )
                fallback_chain.append(step)
                self._trace_fallback(step)
            outcome = self.run()
            outcome.fallback_chain = fallback_chain + outcome.fallback_chain
            if applicable:
                outcome.mode = "recovered"
                outcome.replayed = len(applicable)
                self._mark_covered(applicable[-1].seq, outcome)
            elif absorbed_seq and self.journal is not None:
                self._mark_covered(absorbed_seq, outcome)
            return outcome

        covered, suffix = applicable[:best_k], applicable[best_k:]
        for record in covered:
            for predicate, row in record.rows:
                self.database.add_row(predicate, row)
        # Records are compactable only once a *self-contained* durable
        # copy of their rows exists: absorbed records are contained in
        # the session's initial EDB (re-supplied at every recovery),
        # chain-covered records in the covering checkpoint's EDB — if
        # it carries one.  A covering checkpoint without an EDB defers
        # compaction until the next EDB-carrying checkpoint lands.
        compactable = absorbed_seq
        if covered and checkpoint.snapshot.edb is not None:
            compactable = max(compactable, covered[-1].seq)
        if compactable:
            self._covered_seq = max(self._covered_seq, compactable)
        prior = (checkpoint.snapshot.idb, checkpoint.snapshot.stats)

        if not suffix:
            # Pure warm restore: the newest complete checkpoint already
            # reflects every acknowledged record.
            outcome = self._complete_from(
                prior, "recovered" if covered else "warm", fallback_chain
            )
            outcome.resumed_seq = checkpoint.seq
            outcome.replayed = len(covered)
            if self.journal is not None and self._covered_seq:
                self.journal.compact(self._covered_seq)
            return outcome

        new_rows: dict[str, list[Row]] = {}
        for record in suffix:
            for predicate, row in record.rows:
                new_rows.setdefault(predicate, []).append(row)
        for predicate, rows in new_rows.items():
            for row in rows:
                self.database.add_row(predicate, row)
        overlap = self._negated_predicates() & set(new_rows)
        if overlap:
            step = FallbackStep(
                stage="session.recover",
                fell_back_to="recompute",
                reason=(
                    f"replayed predicate(s) {', '.join(sorted(overlap))} "
                    "occur negated (non-monotonic)"
                ),
            )
            fallback_chain.append(step)
            self._trace_fallback(step)
            outcome = self.run()
            outcome.mode = "recovered"
            outcome.replayed = len(covered) + len(suffix)
            outcome.fallback_chain = fallback_chain + outcome.fallback_chain
            self._mark_covered(suffix[-1].seq, outcome)
            return outcome

        idb, stats = self._incremental_fixpoint(
            new_rows, prior[0], prior[1], governor
        )
        result = EvaluationResult(
            idb=idb, stats=stats, program=self.program, database=self.database
        )
        self._last = result
        outcome = self._checkpoint_complete(
            result, "recovered", fallback_chain, governor
        )
        outcome.resumed_seq = checkpoint.seq
        outcome.replayed = len(covered) + len(suffix)
        self._mark_covered(suffix[-1].seq, outcome)
        return outcome

    def journal_info(self) -> dict | None:
        """The journal's JSON-ready summary with this session's lag view."""
        if self.journal is None:
            return None
        info = self.journal.info()
        info["lag"] = self.journal.lag(max(self._covered_seq, info["covered_seq"]))
        return info

    def _complete_from(
        self,
        prior: "tuple[Mapping[str, frozenset], EvaluationStats]",
        mode: str,
        fallback_chain: list[FallbackStep],
    ) -> SessionResult:
        prior_idb, prior_stats = prior
        idb = {
            pred: self.database.new_relation(self.program.arity_of(pred))
            for pred in self.program.idb_predicates
        }
        for pred, rows in prior_idb.items():
            if pred in idb:
                for row in rows:
                    idb[pred].add(row)
        result = EvaluationResult(
            idb=idb,
            stats=prior_stats.copy(),
            program=self.program,
            database=self.database,
        )
        self._last = result
        return SessionResult(result=result, mode=mode, fallback_chain=fallback_chain)

    def _checkpoint_complete(
        self,
        result: EvaluationResult,
        mode: str,
        fallback_chain: list[FallbackStep],
        governor: Governor | None,
    ) -> SessionResult:
        """Persist a ``complete=True`` snapshot of ``result`` (post-ingest)."""
        counter = [0]
        sink = self._make_sink(governor, fallback_chain, counter)
        if sink is not None:
            sink(
                EvaluationSnapshot(
                    strategy=self.strategy,
                    completed_sccs=len(_sccs(self.program.dependency_graph())),
                    scc_index=None,
                    iteration=result.stats.iterations,
                    idb={pred: rel.rows() for pred, rel in result.idb.items()},
                    delta=None,
                    stats=result.stats.copy(),
                    complete=True,
                )
            )
        return SessionResult(
            result=result,
            mode=mode,
            checkpoints_written=counter[0],
            fallback_chain=fallback_chain,
        )

    # ------------------------------------------------------------------
    def _incremental_fixpoint(
        self,
        new_rows: Mapping[str, Sequence[Row]],
        prior_idb: Mapping[str, frozenset],
        prior_stats: EvaluationStats,
        governor: Governor | None,
    ) -> tuple[dict[str, Relation], EvaluationStats]:
        """Delta-seeded re-derivation over the updated database.

        ``changed`` carries, per predicate, the rows that are new since
        the prior fixpoint — initially the ingested EDB rows, extended
        with each SCC's newly derived facts as the dependency order is
        walked.  For every rule and every positive body position whose
        predicate changed *outside* the rule's own SCC, the rule fires
        once with the changed rows as the delta there (and current full
        relations elsewhere); within the SCC the standard semi-naive
        rounds take over.  Any derivation using at least one new fact
        has some body position holding a new fact, so it is reached by
        one of these firings — which is the differentiation-correctness
        argument (Bancilhon–Ramakrishnan) behind row-identity with
        recomputation.
        """
        program, database = self.program, self.database
        tracer = self.tracer
        started = time.perf_counter()
        stats = prior_stats.copy()
        base_wall = stats.wall_time_seconds
        idb: dict[str, Relation] = {
            pred: database.new_relation(program.arity_of(pred))
            for pred in program.idb_predicates
        }
        for pred, rows in prior_idb.items():
            if pred in idb:
                for row in rows:
                    idb[pred].add(row)
        idb_preds = program.idb_predicates
        eng = _make_engine(self.engine, program, database, idb, self.plan_order, tracer)

        def relation_of(predicate: str, arity: int) -> Relation:
            if predicate in idb_preds:
                return idb[predicate]
            return database.relation(predicate, arity)

        changed: dict[str, Relation] = {}
        for pred, rows in new_rows.items():
            rel = database.new_relation(database.relation(pred).arity)
            for row in rows:
                rel.add(row)
            changed[pred] = rel

        def fire(plan, delta_relation: Relation, sink: dict[str, Relation]) -> None:
            rows_before = stats.rows_scanned
            results = eng.run(plan, relation_of, delta_relation, stats, governor)
            stats.rule_firings += eng.result_count(results)
            key = plan.rule_key
            stats.rows_scanned_by_rule[key] = (
                stats.rows_scanned_by_rule.get(key, 0) + stats.rows_scanned - rows_before
            )
            eng.derive(plan, results, idb[plan.rule.head.predicate], sink, None, stats)
            if governor is not None:
                governor.check("ingest", stats)

        graph = program.dependency_graph()
        for component in _sccs(graph):
            members = set(component)
            rules = [r for r in program.rules if r.head.predicate in members]
            delta: dict[str, Relation] = {
                pred: database.new_relation(program.arity_of(pred)) for pred in members
            }
            scc_new: dict[str, Relation] = {
                pred: database.new_relation(program.arity_of(pred)) for pred in members
            }
            # Phase 1: seed from changed predicates outside this SCC.
            member_positions: list[tuple] = []
            for rule in rules:
                for pos, item in enumerate(rule.body):
                    if not (isinstance(item, Literal) and item.positive):
                        continue
                    if item.predicate in members:
                        member_positions.append((rule, pos))
                        continue
                    delta_rel = changed.get(item.predicate)
                    if delta_rel is None or not len(delta_rel):
                        continue
                    fire(eng.make_plan(rule, pos), delta_rel, delta)
            for pred in members:
                for row in delta[pred].rows():
                    scc_new[pred].add(row)
            # Phase 2: standard semi-naive rounds within the SCC.
            delta_joins = [eng.make_plan(rule, pos) for rule, pos in member_positions]
            while any(len(d) for d in delta.values()):
                stats.iterations += 1
                if governor is not None:
                    governor.check("ingest", stats)
                new_delta: dict[str, Relation] = {
                    pred: database.new_relation(program.arity_of(pred))
                    for pred in members
                }
                for plan in delta_joins:
                    delta_rel = delta[plan.delta_predicate]
                    if not len(delta_rel):
                        continue
                    fire(plan, delta_rel, new_delta)
                for pred in members:
                    for row in new_delta[pred].rows():
                        scc_new[pred].add(row)
                delta = new_delta
            for pred in members:
                if len(scc_new[pred]):
                    changed[pred] = scc_new[pred]
        stats.wall_time_seconds = base_wall + (time.perf_counter() - started)
        return idb, stats

    # ------------------------------------------------------------------
    def inspect(self) -> dict:
        """A JSON-ready summary of the session's checkpoint store."""
        info: dict = {
            "workload": self.workload(),
            "strategy": self.strategy,
            "engine": self.engine,
            "storage": self.database.storage,
            "workers": self.workers,
            "checkpoint_every": self.checkpoint_every,
        }
        if self.store is None:
            info["store"] = None
            return info
        paths = self.store.paths()
        corrupt = sorted(
            p.name for p in self.store.directory.glob("*.corrupt*")
        )
        info["store"] = {
            "directory": str(self.store.directory),
            "checkpoints": len(paths),
            "corrupt": corrupt,
        }
        # Read-only diagnostic: never quarantine a checkpoint just
        # because it belongs to a different workload than ours.  The
        # envelope summary carries ``latest_round`` and ``age_seconds``
        # together (shared with the daemon's /stats endpoint).
        info["latest"] = self.store.latest_summary(expect_workload=self.workload())
        info["journal"] = self.journal_info()
        return info
