"""Durable evaluation sessions: run, crash, resume, ingest.

A :class:`Session` binds one workload (program + database + engine
options) to one checkpoint directory and exposes the durable life
cycle:

* :meth:`Session.run` — evaluate with periodic checkpoints.  Saves go
  through :func:`~repro.persist.store.save_with_retry`; a store that
  stays broken after the retry budget **degrades** the session to plain
  in-memory evaluation (recorded as a
  :class:`~repro.robustness.budget.FallbackStep` and a
  ``budget.fallback`` trace event) instead of failing the run.
* :meth:`Session.resume` — pick up the newest valid checkpoint for
  this exact workload digest and restart the fixpoint from its saved
  frontier.  Corrupt or foreign checkpoints are quarantined during the
  walk; with no usable checkpoint the session falls back to a fresh
  run.
* :meth:`Session.ingest` — add new EDB facts and re-derive
  **incrementally**: the new facts seed delta relations
  (Bancilhon–Ramakrishnan differentiation — each rule fires once per
  changed body position with the delta there and full relations
  elsewhere), then normal semi-naive rounds propagate inside each SCC,
  in dependency order.  Every derivation that uses at least one new
  fact is covered, so the result is row-identical to recomputation.
  When an ingested predicate occurs **negated** in the program the
  update is non-monotonic (new facts can retract conclusions), so
  ingest detects this and falls back to a full recompute — wrong
  answers are never an option.
* :meth:`Session.inspect` — a JSON-ready summary of the store.

Statistics stay cumulative across the whole life cycle (resume and
ingest merge the prior snapshot's counters before adding new work), so
budget accounting and reports see the true total cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..datalog.atoms import Atom, Literal
from ..datalog.database import Database, Relation, Row
from ..datalog.evaluation import (
    EvaluationResult,
    EvaluationSnapshot,
    EvaluationStats,
    _make_engine,
    _sccs,
    evaluate,
)
from ..datalog.program import Program
from ..observability.trace import Tracer, get_tracer
from ..robustness.budget import Budget, CancellationToken, FallbackStep, Governor
from .checkpoint import Checkpoint, workload_digest
from .store import (
    CheckpointStore,
    CheckpointStoreUnavailable,
    FlakyStore,
    RetryPolicy,
    save_with_retry,
)

__all__ = ["Session", "SessionResult"]

#: Facts accepted by :meth:`Session.ingest`: ground atoms or (predicate, row).
FactLike = "Atom | tuple[str, Sequence[object]]"


@dataclass
class SessionResult:
    """The outcome of one session operation.

    ``mode`` records the path taken: ``"fresh"`` (full evaluation),
    ``"resumed"`` (restarted from a checkpoint), ``"incremental"``
    (delta-seeded ingest) or ``"recompute"`` (ingest fell back to full
    re-evaluation).  ``fallback_chain`` lists every degradation taken,
    in order.
    """

    result: EvaluationResult
    mode: str
    checkpoints_written: int = 0
    resumed_seq: int | None = None
    fallback_chain: list[FallbackStep] = field(default_factory=list)

    @property
    def stats(self) -> EvaluationStats:
        return self.result.stats


class Session:
    """One durable evaluation workload bound to a checkpoint store."""

    def __init__(
        self,
        program: Program,
        database: Database,
        *,
        store: "CheckpointStore | FlakyStore | None" = None,
        checkpoint_every: int = 1,
        constraints: Sequence[object] = (),
        strategy: str = "seminaive",
        engine: str = "slots",
        plan_order: str = "cost",
        storage: str | None = None,
        workers: int | None = None,
        budget: "Budget | Governor | None" = None,
        cancellation: CancellationToken | None = None,
        tracer: Tracer | None = None,
        retry: RetryPolicy | None = None,
        throttle: float = 0.0,
    ):
        self.program = program
        # The session evaluates (and ingests) in one storage backend for
        # its whole life cycle; ``storage=None`` keeps the database's
        # own.  Conversion happens once here, not per run — the workload
        # digest is computed over decoded rows, so it is unaffected.
        self.database = (
            database if storage is None else database.to_storage(storage)
        )
        self.store = store
        self.checkpoint_every = checkpoint_every
        self.constraints = tuple(constraints)
        self.strategy = strategy
        self.engine = engine
        self.plan_order = plan_order
        # ``workers=N`` shards full runs and resumes across N forked
        # processes (see docs/parallel.md); incremental ingest stays
        # sequential — its delta-seeded firings are far below the
        # sharding break-even point.
        self.workers = workers
        self.budget = budget
        self.cancellation = cancellation
        self._tracer = tracer
        self.retry = retry if retry is not None else RetryPolicy()
        self.throttle = throttle
        self._last: EvaluationResult | None = None

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def workload(self) -> str:
        """The digest binding checkpoints to this exact workload."""
        return workload_digest(self.program, self.database, self.constraints)

    # ------------------------------------------------------------------
    def _governor(self) -> Governor | None:
        return Governor.of(self.budget, self.cancellation)

    def _make_sink(
        self,
        governor: Governor | None,
        fallback_chain: list[FallbackStep],
        counter: list[int],
    ):
        """A checkpoint sink that saves-with-retry and degrades on failure."""
        if self.store is None:
            return None
        store = self.store
        workload = self.workload()
        state = {"degraded": False}

        def sink(snapshot: EvaluationSnapshot) -> None:
            if state["degraded"]:
                return
            checkpoint = Checkpoint(
                seq=store.next_seq(), workload=workload, snapshot=snapshot
            )
            try:
                save_with_retry(
                    store, checkpoint, policy=self.retry, governor=governor
                )
            except CheckpointStoreUnavailable as exc:
                state["degraded"] = True
                step = FallbackStep(
                    stage="session.checkpoint",
                    fell_back_to="in-memory",
                    reason=str(exc),
                )
                fallback_chain.append(step)
                tracer = self.tracer
                if tracer.enabled:
                    tracer.event(
                        "budget.fallback",
                        stage=step.stage,
                        fell_back_to=step.fell_back_to,
                        reason=step.reason,
                    )
                return
            counter[0] += 1
            if self.throttle:
                # Deliberate pacing between checkpoints; the crash tests
                # use it to make "SIGKILL mid-fixpoint" land reliably
                # between two saves.
                time.sleep(self.throttle)

        return sink

    # ------------------------------------------------------------------
    def run(self, *, resume: bool = False) -> SessionResult:
        """Evaluate the workload, checkpointing as configured.

        With ``resume=True`` the newest valid checkpoint of this
        workload (if any) supplies the starting frontier; without one
        the run is simply fresh.
        """
        governor = self._governor()
        fallback_chain: list[FallbackStep] = []
        counter = [0]
        resume_from: EvaluationSnapshot | None = None
        resumed_seq: int | None = None
        if resume and self.store is not None:
            latest = self.store.latest(expect_workload=self.workload())
            if latest is not None and latest.snapshot.strategy == self.strategy:
                resume_from = latest.snapshot
                resumed_seq = latest.seq
        sink = self._make_sink(governor, fallback_chain, counter)
        result = evaluate(
            self.program,
            self.database,
            strategy=self.strategy,
            engine=self.engine,
            plan_order=self.plan_order,
            workers=self.workers,
            budget=governor,
            tracer=self._tracer,
            checkpoint_every=self.checkpoint_every,
            checkpoint_sink=sink,
            resume_from=resume_from,
        )
        self._last = result
        # Degradation-ladder rungs the fleet took (worker recovery
        # exhaustion) join the session's own fallback steps, so callers
        # see one chain for the whole run.
        fallback_chain.extend(getattr(result, "fallbacks", ()))
        return SessionResult(
            result=result,
            mode="resumed" if resume_from is not None else "fresh",
            checkpoints_written=counter[0],
            resumed_seq=resumed_seq,
            fallback_chain=fallback_chain,
        )

    def resume(self) -> SessionResult:
        """:meth:`run` with ``resume=True``."""
        return self.run(resume=True)

    def warm_start(self) -> SessionResult | None:
        """Restore the latest *complete* fixpoint with zero evaluation.

        The serving daemon's restart path: when the store holds a
        complete checkpoint for this exact workload digest, the saved
        IDB is rebuilt into an :class:`~repro.datalog.evaluation
        .EvaluationResult` directly — no rules fire, no rounds run —
        and the session is primed for incremental :meth:`ingest`.
        Returns ``None`` when no complete checkpoint exists (the caller
        decides whether to fall back to :meth:`run`).
        """
        if self.store is None:
            return None
        latest = self.store.latest(expect_workload=self.workload())
        if latest is None or not latest.complete:
            return None
        outcome = self._complete_from(
            (latest.snapshot.idb, latest.snapshot.stats), "warm", []
        )
        outcome.resumed_seq = latest.seq
        return outcome

    # ------------------------------------------------------------------
    def _normalize_facts(self, facts: Iterable[object]) -> list[tuple[str, Row]]:
        normalized: list[tuple[str, Row]] = []
        for fact in facts:
            if isinstance(fact, Atom):
                if not fact.is_ground():
                    raise ValueError(f"ingested fact {fact} is not ground")
                normalized.append(
                    (fact.predicate, tuple(arg.value for arg in fact.args))  # type: ignore[union-attr]
                )
            else:
                predicate, row = fact  # type: ignore[misc]
                normalized.append((str(predicate), tuple(row)))
        return normalized

    def _prior_fixpoint(self) -> "tuple[Mapping[str, frozenset], EvaluationStats] | None":
        """The last complete fixpoint: in-memory first, else the store."""
        if self._last is not None:
            return (
                {pred: rel.rows() for pred, rel in self._last.idb.items()},
                self._last.stats,
            )
        if self.store is not None:
            latest = self.store.latest(expect_workload=self.workload())
            if latest is not None and latest.complete:
                return latest.snapshot.idb, latest.snapshot.stats
        return None

    def ingest(self, facts: Iterable[object]) -> SessionResult:
        """Add EDB facts and bring the fixpoint up to date incrementally.

        Facts are ground :class:`~repro.datalog.atoms.Atom` objects or
        ``(predicate, row)`` pairs.  Requires a prior *complete*
        fixpoint (from this session or its store); without one — or
        when an ingested predicate occurs negated in the program
        (non-monotonic update) — the session falls back to a full
        recompute, recorded in the result's ``fallback_chain``.
        """
        # The prior fixpoint must be anchored to the *pre-ingest* digest.
        prior = self._prior_fixpoint()
        new_rows: dict[str, list[Row]] = {}
        idb_preds = self.program.idb_predicates
        for predicate, row in self._normalize_facts(facts):
            if predicate in idb_preds:
                raise ValueError(
                    f"cannot ingest {predicate}: it is an IDB predicate "
                    "(derived, not stored)"
                )
            if self.database.add_row(predicate, row):
                new_rows.setdefault(predicate, []).append(row)

        fallback_chain: list[FallbackStep] = []
        if not new_rows and prior is not None:
            # Nothing actually new: the prior fixpoint still stands.
            return self._complete_from(prior, "incremental", fallback_chain)

        negated = {
            lit.predicate
            for rule in self.program.rules
            for lit in rule.negative_literals
        }
        reason = None
        if prior is None:
            reason = "no prior complete fixpoint to increment from"
        elif negated & set(new_rows):
            overlap = ", ".join(sorted(negated & set(new_rows)))
            reason = f"ingested predicate(s) {overlap} occur negated (non-monotonic)"
        if reason is not None:
            step = FallbackStep(
                stage="session.ingest", fell_back_to="recompute", reason=reason
            )
            fallback_chain.append(step)
            tracer = self.tracer
            if tracer.enabled:
                tracer.event(
                    "budget.fallback",
                    stage=step.stage,
                    fell_back_to=step.fell_back_to,
                    reason=step.reason,
                )
            fresh = self.run()
            fresh.mode = "recompute"
            fresh.fallback_chain = fallback_chain + fresh.fallback_chain
            return fresh

        assert prior is not None
        prior_idb, prior_stats = prior
        governor = self._governor()
        idb, stats = self._incremental_fixpoint(
            new_rows, prior_idb, prior_stats, governor
        )
        result = EvaluationResult(
            idb=idb, stats=stats, program=self.program, database=self.database
        )
        self._last = result
        return self._checkpoint_complete(result, "incremental", fallback_chain, governor)

    def _complete_from(
        self,
        prior: "tuple[Mapping[str, frozenset], EvaluationStats]",
        mode: str,
        fallback_chain: list[FallbackStep],
    ) -> SessionResult:
        prior_idb, prior_stats = prior
        idb = {
            pred: self.database.new_relation(self.program.arity_of(pred))
            for pred in self.program.idb_predicates
        }
        for pred, rows in prior_idb.items():
            if pred in idb:
                for row in rows:
                    idb[pred].add(row)
        result = EvaluationResult(
            idb=idb,
            stats=prior_stats.copy(),
            program=self.program,
            database=self.database,
        )
        self._last = result
        return SessionResult(result=result, mode=mode, fallback_chain=fallback_chain)

    def _checkpoint_complete(
        self,
        result: EvaluationResult,
        mode: str,
        fallback_chain: list[FallbackStep],
        governor: Governor | None,
    ) -> SessionResult:
        """Persist a ``complete=True`` snapshot of ``result`` (post-ingest)."""
        counter = [0]
        sink = self._make_sink(governor, fallback_chain, counter)
        if sink is not None:
            sink(
                EvaluationSnapshot(
                    strategy=self.strategy,
                    completed_sccs=len(_sccs(self.program.dependency_graph())),
                    scc_index=None,
                    iteration=result.stats.iterations,
                    idb={pred: rel.rows() for pred, rel in result.idb.items()},
                    delta=None,
                    stats=result.stats.copy(),
                    complete=True,
                )
            )
        return SessionResult(
            result=result,
            mode=mode,
            checkpoints_written=counter[0],
            fallback_chain=fallback_chain,
        )

    # ------------------------------------------------------------------
    def _incremental_fixpoint(
        self,
        new_rows: Mapping[str, Sequence[Row]],
        prior_idb: Mapping[str, frozenset],
        prior_stats: EvaluationStats,
        governor: Governor | None,
    ) -> tuple[dict[str, Relation], EvaluationStats]:
        """Delta-seeded re-derivation over the updated database.

        ``changed`` carries, per predicate, the rows that are new since
        the prior fixpoint — initially the ingested EDB rows, extended
        with each SCC's newly derived facts as the dependency order is
        walked.  For every rule and every positive body position whose
        predicate changed *outside* the rule's own SCC, the rule fires
        once with the changed rows as the delta there (and current full
        relations elsewhere); within the SCC the standard semi-naive
        rounds take over.  Any derivation using at least one new fact
        has some body position holding a new fact, so it is reached by
        one of these firings — which is the differentiation-correctness
        argument (Bancilhon–Ramakrishnan) behind row-identity with
        recomputation.
        """
        program, database = self.program, self.database
        tracer = self.tracer
        started = time.perf_counter()
        stats = prior_stats.copy()
        base_wall = stats.wall_time_seconds
        idb: dict[str, Relation] = {
            pred: database.new_relation(program.arity_of(pred))
            for pred in program.idb_predicates
        }
        for pred, rows in prior_idb.items():
            if pred in idb:
                for row in rows:
                    idb[pred].add(row)
        idb_preds = program.idb_predicates
        eng = _make_engine(self.engine, program, database, idb, self.plan_order, tracer)

        def relation_of(predicate: str, arity: int) -> Relation:
            if predicate in idb_preds:
                return idb[predicate]
            return database.relation(predicate, arity)

        changed: dict[str, Relation] = {}
        for pred, rows in new_rows.items():
            rel = database.new_relation(database.relation(pred).arity)
            for row in rows:
                rel.add(row)
            changed[pred] = rel

        def fire(plan, delta_relation: Relation, sink: dict[str, Relation]) -> None:
            rows_before = stats.rows_scanned
            results = eng.run(plan, relation_of, delta_relation, stats, governor)
            stats.rule_firings += eng.result_count(results)
            key = plan.rule_key
            stats.rows_scanned_by_rule[key] = (
                stats.rows_scanned_by_rule.get(key, 0) + stats.rows_scanned - rows_before
            )
            eng.derive(plan, results, idb[plan.rule.head.predicate], sink, None, stats)
            if governor is not None:
                governor.check("ingest", stats)

        graph = program.dependency_graph()
        for component in _sccs(graph):
            members = set(component)
            rules = [r for r in program.rules if r.head.predicate in members]
            delta: dict[str, Relation] = {
                pred: database.new_relation(program.arity_of(pred)) for pred in members
            }
            scc_new: dict[str, Relation] = {
                pred: database.new_relation(program.arity_of(pred)) for pred in members
            }
            # Phase 1: seed from changed predicates outside this SCC.
            member_positions: list[tuple] = []
            for rule in rules:
                for pos, item in enumerate(rule.body):
                    if not (isinstance(item, Literal) and item.positive):
                        continue
                    if item.predicate in members:
                        member_positions.append((rule, pos))
                        continue
                    delta_rel = changed.get(item.predicate)
                    if delta_rel is None or not len(delta_rel):
                        continue
                    fire(eng.make_plan(rule, pos), delta_rel, delta)
            for pred in members:
                for row in delta[pred].rows():
                    scc_new[pred].add(row)
            # Phase 2: standard semi-naive rounds within the SCC.
            delta_joins = [eng.make_plan(rule, pos) for rule, pos in member_positions]
            while any(len(d) for d in delta.values()):
                stats.iterations += 1
                if governor is not None:
                    governor.check("ingest", stats)
                new_delta: dict[str, Relation] = {
                    pred: database.new_relation(program.arity_of(pred))
                    for pred in members
                }
                for plan in delta_joins:
                    delta_rel = delta[plan.delta_predicate]
                    if not len(delta_rel):
                        continue
                    fire(plan, delta_rel, new_delta)
                for pred in members:
                    for row in new_delta[pred].rows():
                        scc_new[pred].add(row)
                delta = new_delta
            for pred in members:
                if len(scc_new[pred]):
                    changed[pred] = scc_new[pred]
        stats.wall_time_seconds = base_wall + (time.perf_counter() - started)
        return idb, stats

    # ------------------------------------------------------------------
    def inspect(self) -> dict:
        """A JSON-ready summary of the session's checkpoint store."""
        info: dict = {
            "workload": self.workload(),
            "strategy": self.strategy,
            "engine": self.engine,
            "storage": self.database.storage,
            "workers": self.workers,
            "checkpoint_every": self.checkpoint_every,
        }
        if self.store is None:
            info["store"] = None
            return info
        paths = self.store.paths()
        corrupt = sorted(
            p.name for p in self.store.directory.glob("*.corrupt")
        )
        info["store"] = {
            "directory": str(self.store.directory),
            "checkpoints": len(paths),
            "corrupt": corrupt,
        }
        # Read-only diagnostic: never quarantine a checkpoint just
        # because it belongs to a different workload than ours.  The
        # envelope summary carries ``latest_round`` and ``age_seconds``
        # together (shared with the daemon's /stats endpoint).
        info["latest"] = self.store.latest_summary(expect_workload=self.workload())
        return info
