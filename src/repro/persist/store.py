"""Checkpoint stores: atomic durable writes, quarantine, faults, retries.

:class:`CheckpointStore` owns one checkpoint directory.  Saves are
atomic in the crash-consistency sense — write to a temp file in the
same directory, flush, ``fsync``, then ``os.replace`` onto the final
content-addressed name — so a process killed at *any* instant leaves
either the previous set of valid checkpoints or the previous set plus
one new valid checkpoint (plus, at worst, an ignorable ``*.tmp``).
Loads verify the embedded checksum and the expected workload digest;
anything that fails is **quarantined** — renamed to ``*.corrupt`` with
a ``checkpoint.quarantine`` trace event — and never used.

:class:`FlakyStore` wraps a store with the deterministic
:class:`~repro.robustness.faults.FaultInjector` of the chaos harness:
each ``save``/``load`` consults the injector at the trace sites
``checkpoint.save`` / ``checkpoint.load`` and converts an armed
:class:`~repro.robustness.errors.InjectedFault` into a realistic
``OSError`` — a torn write (truncated bytes actually land on disk),
``ENOSPC``, or a transient I/O error — cycling deterministically
through the armed flavors.

:func:`save_with_retry` is the recovery policy: transient ``OSError``
saves retry under capped exponential backoff with seeded jitter
(:class:`RetryPolicy`), sleeping never past a
:class:`~repro.robustness.budget.Governor` deadline and re-checking the
governor before each attempt so a budget trip still aborts promptly.
An exhausted retry budget raises :class:`CheckpointStoreUnavailable`,
which the session layer degrades on (checkpointing off, evaluation
continues in memory) rather than failing the run.
"""

from __future__ import annotations

import errno
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from ..observability.trace import Tracer, get_tracer
from ..robustness.budget import Governor
from ..robustness.errors import InjectedFault
from ..robustness.faults import FaultInjector
from .checkpoint import Checkpoint, CheckpointCorrupt, CheckpointError, CheckpointMismatch

__all__ = [
    "CheckpointStore",
    "FlakyStore",
    "RetryPolicy",
    "CheckpointStoreUnavailable",
    "save_with_retry",
    "FAULT_FLAVORS",
]

#: The OSError flavors :class:`FlakyStore` can inject, in cycling order.
FAULT_FLAVORS = ("transient", "torn", "enospc")


class CheckpointStoreUnavailable(CheckpointError):
    """Every retry of a checkpoint save failed; the store is given up on."""


class CheckpointStore:
    """Atomic, quarantining checkpoint persistence in one directory."""

    def __init__(self, directory: str | os.PathLike, *, tracer: Tracer | None = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._tracer = tracer

    @property
    def tracer(self) -> Tracer:
        # Resolved per call: the store must see a tracer installed
        # globally (e.g. by the chaos() context manager) after
        # construction.
        return self._tracer if self._tracer is not None else get_tracer()

    # ------------------------------------------------------------------
    def paths(self) -> list[Path]:
        """Valid-looking checkpoint files, oldest first (by sequence)."""
        return sorted(
            p
            for p in self.directory.glob("ckpt-*.json")
            if not p.name.endswith(".corrupt")
        )

    def next_seq(self) -> int:
        """One past the highest sequence number present (corrupt included)."""
        highest = 0
        for path in self.directory.glob("ckpt-*"):
            parts = path.name.split("-")
            if len(parts) >= 2 and parts[1].isdigit():
                highest = max(highest, int(parts[1]))
        return highest + 1

    # ------------------------------------------------------------------
    def save(self, checkpoint: Checkpoint) -> Path:
        """Atomically persist ``checkpoint``; returns the final path."""
        text, checksum = checkpoint.encode()
        final = self.directory / f"ckpt-{checkpoint.seq:08d}-{checksum[:12]}.json"
        self._write_atomic(final, text)
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "checkpoint.save",
                path=final.name,
                seq=checkpoint.seq,
                complete=checkpoint.complete,
                facts=sum(len(rows) for rows in checkpoint.snapshot.idb.values()),
                bytes=len(text),
            )
        return final

    def _write_atomic(self, final: Path, text: str) -> None:
        tmp = final.with_name(final.name + ".tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, text.encode())
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, final)

    # ------------------------------------------------------------------
    def load(
        self,
        path: str | os.PathLike,
        *,
        expect_workload: str | None = None,
        quarantine_mismatch: bool = True,
    ) -> Checkpoint:
        """Load and verify one checkpoint file.

        Corruption (unparsable, malformed, checksum mismatch) always
        quarantines the file and raises — a corrupt file is garbage no
        matter who asks.  When ``expect_workload`` is given, a
        workload-digest mismatch also raises; it quarantines only with
        ``quarantine_mismatch`` (the default, right for resume-type
        reads where a foreign checkpoint must never be used again —
        read-only callers like ``inspect`` pass ``False``, since a
        mismatch against *their* workload may be another workload's
        perfectly valid checkpoint).  A quarantined checkpoint is never
        returned.
        """
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise CheckpointCorrupt(f"cannot read checkpoint {path.name}: {exc}") from exc
        try:
            checkpoint = Checkpoint.decode(text)
        except CheckpointCorrupt as exc:
            self.quarantine(path, str(exc))
            raise
        if expect_workload is not None and checkpoint.workload != expect_workload:
            reason = (
                f"workload digest {checkpoint.workload[:12]}… does not match "
                f"expected {expect_workload[:12]}…"
            )
            if quarantine_mismatch:
                self.quarantine(path, reason)
            raise CheckpointMismatch(f"{path.name}: {reason}")
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "checkpoint.load",
                path=path.name,
                seq=checkpoint.seq,
                complete=checkpoint.complete,
            )
        return checkpoint

    def latest(
        self,
        *,
        expect_workload: str | None = None,
        quarantine_mismatch: bool = True,
    ) -> Checkpoint | None:
        """The newest loadable checkpoint (``None`` if the store is empty).

        Walks newest to oldest; files that fail verification are
        quarantined in passing (mismatches only per
        ``quarantine_mismatch``) and the walk continues, so one torn
        final write never blocks recovery from the checkpoint before it.
        """
        found = self.latest_with_path(
            expect_workload=expect_workload,
            quarantine_mismatch=quarantine_mismatch,
        )
        return None if found is None else found[0]

    def latest_with_path(
        self,
        *,
        expect_workload: str | None = None,
        quarantine_mismatch: bool = True,
    ) -> tuple[Checkpoint, Path] | None:
        """:meth:`latest` plus the file it was loaded from."""
        for path in reversed(self.paths()):
            try:
                return (
                    self.load(
                        path,
                        expect_workload=expect_workload,
                        quarantine_mismatch=quarantine_mismatch,
                    ),
                    path,
                )
            except CheckpointError:
                continue
        return None

    def latest_summary(
        self,
        *,
        expect_workload: str | None = None,
        now: float | None = None,
    ) -> dict | None:
        """The newest checkpoint's envelope summary plus its on-disk age.

        Read-only diagnostic (never quarantines a workload mismatch):
        the :meth:`Checkpoint.summary
        <repro.persist.checkpoint.Checkpoint.summary>` dict extended
        with ``age_seconds`` — the mtime delta between the checkpoint
        file and ``now`` (wall clock by default) — so ``repro session
        inspect`` and the serving daemon's ``/stats`` report checkpoint
        age and round number together from one code path.
        """
        found = self.latest_with_path(
            expect_workload=expect_workload, quarantine_mismatch=False
        )
        if found is None:
            return None
        checkpoint, path = found
        summary = checkpoint.summary()
        try:
            mtime = path.stat().st_mtime
        except OSError:
            summary["age_seconds"] = None
        else:
            reference = time.time() if now is None else now
            summary["age_seconds"] = max(0.0, reference - mtime)
        return summary

    # ------------------------------------------------------------------
    def quarantine(self, path: Path, reason: str) -> Path:
        """Rename a bad checkpoint to ``*.corrupt`` so it is never reused.

        Quarantined copies are forensic evidence, so the suffix is made
        unique (``.corrupt``, ``.corrupt.1``, …) — a later quarantine
        of a recreated file with the same name must never overwrite an
        earlier one.
        """
        target = path.with_name(path.name + ".corrupt")
        bump = 0
        while target.exists():
            bump += 1
            target = path.with_name(f"{path.name}.corrupt.{bump}")
        try:
            os.replace(path, target)
        except OSError:
            target = path  # unrenameable: leave in place, still never loaded
        tracer = self.tracer
        if tracer.enabled:
            tracer.event("checkpoint.quarantine", path=path.name, reason=reason)
        return target


class FlakyStore:
    """A :class:`CheckpointStore` whose I/O fails on command.

    The :class:`~repro.robustness.faults.FaultInjector` decides *when*
    (``arm("checkpoint.save", at=2)``, ``arm_random(...)``) exactly as
    it does for engine trace sites; this wrapper decides *how*, cycling
    through ``flavors`` per fired occurrence:

    * ``"transient"`` — ``OSError(EIO)``, nothing written;
    * ``"torn"`` — the first half of the encoded bytes land on the
      final path (a non-atomic write interrupted mid-stream), then
      ``OSError(EIO)`` — exercising checksum quarantine on later loads;
    * ``"enospc"`` — ``OSError(ENOSPC)``, nothing written.
    """

    def __init__(
        self,
        store: CheckpointStore,
        injector: FaultInjector,
        *,
        flavors: Sequence[str] = ("transient",),
    ):
        for flavor in flavors:
            if flavor not in FAULT_FLAVORS:
                raise ValueError(
                    f"unknown fault flavor {flavor!r} (valid: {', '.join(FAULT_FLAVORS)})"
                )
        self.store = store
        self.injector = injector
        self.flavors = tuple(flavors)
        self._fired = 0

    @property
    def directory(self) -> Path:
        return self.store.directory

    @property
    def tracer(self) -> Tracer:
        return self.store.tracer

    def _fault(self, site: str, checkpoint: Checkpoint | None) -> None:
        try:
            self.injector.observe(site, {})
        except InjectedFault as exc:
            flavor = self.flavors[self._fired % len(self.flavors)]
            self._fired += 1
            if flavor == "enospc":
                raise OSError(errno.ENOSPC, "no space left on device (injected)") from exc
            if flavor == "torn" and checkpoint is not None:
                text, checksum = checkpoint.encode()
                final = self.directory / f"ckpt-{checkpoint.seq:08d}-{checksum[:12]}.json"
                final.write_bytes(text.encode()[: len(text) // 2])
            raise OSError(errno.EIO, f"injected {flavor} I/O error at {site}") from exc

    def save(self, checkpoint: Checkpoint) -> Path:
        self._fault("checkpoint.save", checkpoint)
        return self.store.save(checkpoint)

    def load(
        self,
        path,
        *,
        expect_workload: str | None = None,
        quarantine_mismatch: bool = True,
    ) -> Checkpoint:
        self._fault("checkpoint.load", None)
        return self.store.load(
            path,
            expect_workload=expect_workload,
            quarantine_mismatch=quarantine_mismatch,
        )

    def latest(
        self,
        *,
        expect_workload: str | None = None,
        quarantine_mismatch: bool = True,
    ) -> Checkpoint | None:
        # Fault accounting happens per underlying file read via load();
        # a transient fault on one file must not abort the whole walk.
        for path in reversed(self.store.paths()):
            try:
                return self.load(
                    path,
                    expect_workload=expect_workload,
                    quarantine_mismatch=quarantine_mismatch,
                )
            except (CheckpointError, OSError):
                continue
        return None

    def latest_summary(
        self,
        *,
        expect_workload: str | None = None,
        now: float | None = None,
    ) -> dict | None:
        # Read-only diagnostic: served by the underlying store directly
        # (fault sites cover the save/load paths that matter).
        return self.store.latest_summary(expect_workload=expect_workload, now=now)

    def paths(self) -> list[Path]:
        return self.store.paths()

    def next_seq(self) -> int:
        return self.store.next_seq()

    def quarantine(self, path: Path, reason: str) -> Path:
        return self.store.quarantine(path, reason)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    Attempt ``k`` (0-based) sleeps ``min(base_delay * 2**k, max_delay)``
    scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` from a generator seeded with ``seed``
    — deterministic for tests, decorrelated in aggregate.
    """

    attempts: int = 4
    base_delay: float = 0.02
    max_delay: float = 0.5
    jitter: float = 0.25
    seed: int = 0

    def delays(self) -> Iterator[float]:
        """The back-off delays between attempts (``attempts - 1`` of them)."""
        rng = random.Random(self.seed)
        for attempt in range(max(0, self.attempts - 1)):
            base = min(self.base_delay * (2**attempt), self.max_delay)
            yield base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


def save_with_retry(
    store: CheckpointStore | FlakyStore,
    checkpoint: Checkpoint,
    *,
    policy: RetryPolicy | None = None,
    governor: Governor | None = None,
    sleep=time.sleep,
) -> Path:
    """Save ``checkpoint``, retrying transient ``OSError`` failures.

    Before every attempt the governor (if any) is consulted, so a
    deadline that expires mid-backoff aborts the evaluation with the
    usual :class:`~repro.robustness.errors.BudgetExceededError` instead
    of burning the remaining budget on sleeps; each sleep is clamped to
    the governor's remaining time.  Raises
    :class:`CheckpointStoreUnavailable` once the attempt budget is
    exhausted — the caller's cue to degrade to in-memory evaluation.
    """
    policy = policy if policy is not None else RetryPolicy()
    delays = policy.delays()
    last_error: OSError | None = None
    for attempt in range(1, max(1, policy.attempts) + 1):
        if governor is not None:
            governor.check("checkpoint")
        try:
            return store.save(checkpoint)
        except OSError as exc:
            last_error = exc
            delay = next(delays, None)
            if delay is None:
                break
            remaining = governor.remaining() if governor is not None else None
            if remaining is not None:
                delay = max(0.0, min(delay, remaining))
            tracer = store.tracer
            if tracer.enabled:
                tracer.event(
                    "checkpoint.retry",
                    seq=checkpoint.seq,
                    attempt=attempt,
                    delay=round(delay, 6),
                    error=str(exc),
                )
            sleep(delay)
    raise CheckpointStoreUnavailable(
        f"checkpoint save failed after {policy.attempts} attempts: {last_error}"
    ) from last_error
