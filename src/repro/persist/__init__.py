"""Durable evaluation sessions: checkpoint/restore, resume, ingest.

The persistence layer makes fixpoints survive process death and absorb
new facts without cold recomputation (see ``docs/robustness.md``,
"Durability & recovery"):

* :mod:`repro.persist.checkpoint` — the versioned, content-addressed
  on-disk format (:class:`Checkpoint`), the workload and fixpoint
  digests, and the corruption/mismatch error taxonomy;
* :mod:`repro.persist.store` — :class:`CheckpointStore` (atomic
  write-temp-fsync-rename saves, checksum-verified loads, quarantine of
  anything suspect), the chaos-harness :class:`FlakyStore`, and
  :func:`save_with_retry` under a :class:`RetryPolicy`;
* :mod:`repro.persist.session` — :class:`Session`, the durable
  run/resume/ingest/inspect life cycle over both engines.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointCorrupt,
    CheckpointError,
    CheckpointMismatch,
    fixpoint_digest,
    workload_digest,
)
from .session import Session, SessionResult
from .store import (
    CheckpointStore,
    CheckpointStoreUnavailable,
    FlakyStore,
    RetryPolicy,
    save_with_retry,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointCorrupt",
    "CheckpointMismatch",
    "CheckpointStore",
    "CheckpointStoreUnavailable",
    "FlakyStore",
    "RetryPolicy",
    "Session",
    "SessionResult",
    "fixpoint_digest",
    "save_with_retry",
    "workload_digest",
]
