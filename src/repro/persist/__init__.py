"""Durable evaluation sessions: checkpoint/restore, resume, ingest.

The persistence layer makes fixpoints survive process death and absorb
new facts without cold recomputation (see ``docs/robustness.md``,
"Durability & recovery"):

* :mod:`repro.persist.checkpoint` — the versioned, content-addressed
  on-disk format (:class:`Checkpoint`), the workload and fixpoint
  digests, and the corruption/mismatch error taxonomy;
* :mod:`repro.persist.store` — :class:`CheckpointStore` (atomic
  write-temp-fsync-rename saves, checksum-verified loads, quarantine of
  anything suspect), the chaos-harness :class:`FlakyStore`, and
  :func:`save_with_retry` under a :class:`RetryPolicy`;
* :mod:`repro.persist.journal` — :class:`IngestJournal`, the
  append-only CRC-framed write-ahead log of acknowledged ingests
  (fsync-before-ack, torn-tail truncation, segment rotation and
  compaction), the chaos-harness :class:`FlakyJournal`, and
  :func:`commit_with_retry`;
* :mod:`repro.persist.session` — :class:`Session`, the durable
  run/resume/ingest/recover/inspect life cycle over both engines.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointCorrupt,
    CheckpointError,
    CheckpointMismatch,
    fixpoint_digest,
    workload_digest,
)
from .journal import (
    JOURNAL_VERSION,
    FlakyJournal,
    IngestJournal,
    JournalCorrupt,
    JournalError,
    JournalMismatch,
    JournalRecord,
    JournalUnavailable,
    commit_with_retry,
)
from .session import Session, SessionResult
from .store import (
    CheckpointStore,
    CheckpointStoreUnavailable,
    FlakyStore,
    RetryPolicy,
    save_with_retry,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointCorrupt",
    "CheckpointMismatch",
    "CheckpointStore",
    "CheckpointStoreUnavailable",
    "FlakyJournal",
    "FlakyStore",
    "IngestJournal",
    "JOURNAL_VERSION",
    "JournalCorrupt",
    "JournalError",
    "JournalMismatch",
    "JournalRecord",
    "JournalUnavailable",
    "RetryPolicy",
    "Session",
    "SessionResult",
    "commit_with_retry",
    "fixpoint_digest",
    "save_with_retry",
    "workload_digest",
]
