"""The on-disk checkpoint format: versioned, content-addressed JSON.

A checkpoint is one :class:`~repro.datalog.evaluation.EvaluationSnapshot`
wrapped with the metadata that makes it safe to trust across process
boundaries:

* a **format version** (:data:`CHECKPOINT_VERSION`), so a future format
  change can be detected instead of mis-parsed;
* a **workload digest** — SHA-256 over the program's rules and query,
  the integrity constraints and every EDB row — binding the checkpoint
  to the exact inputs it was computed from.  Resuming a checkpoint
  against a *different* workload would silently produce answers for
  neither, so a mismatched digest is treated exactly like corruption;
* a **content checksum** — SHA-256 over the canonical JSON encoding of
  the payload, embedded next to it and baked into the filename
  (``ckpt-<seq>-<checksum12>.json``).  A torn write, a truncated file
  or a bit flip fails verification on load and the file is quarantined
  (renamed to ``*.corrupt``), never silently used.

Rows must contain JSON scalars only (ints, strings, floats, bools,
``None``) — which is what the parser produces — so the relation/row
round trip is lossless and ``repr``-stable, keeping
:func:`fixpoint_digest` byte-identical across a save/load cycle.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..datalog.database import Row
from ..datalog.evaluation import EvaluationSnapshot, EvaluationStats
from ..digest import fixpoint_digest, workload_digest
from ..robustness.errors import ReproError

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointCorrupt",
    "CheckpointMismatch",
    "workload_digest",
    "fixpoint_digest",
]

#: Format version written into (and required of) every checkpoint file.
CHECKPOINT_VERSION = 1


class CheckpointError(ReproError):
    """Base class of every persistence-layer error."""


class CheckpointCorrupt(CheckpointError):
    """A checkpoint failed structural or checksum verification."""


class CheckpointMismatch(CheckpointError):
    """A (valid) checkpoint belongs to a different workload digest."""


# workload_digest / fixpoint_digest are re-exported from
# :mod:`repro.digest` — the single shared definition used by persist,
# bench and serve (so the three digest computations can't drift).


def _rows_payload(rows: "Iterable[Row]") -> list[list]:
    return [list(row) for row in sorted(rows, key=repr)]


def _rows_restore(payload: object) -> frozenset:
    if not isinstance(payload, list):
        raise CheckpointCorrupt(f"rows payload is {type(payload).__name__}, not a list")
    return frozenset(tuple(row) for row in payload)


@dataclass(frozen=True)
class Checkpoint:
    """One durable evaluation snapshot plus its binding metadata."""

    seq: int
    workload: str
    snapshot: EvaluationSnapshot
    version: int = CHECKPOINT_VERSION

    @property
    def complete(self) -> bool:
        return self.snapshot.complete

    @property
    def latest_round(self) -> int:
        """The semi-naive round the snapshot was taken at.

        Exposed on the envelope so summary consumers (``repro session
        inspect``, the daemon's ``/stats`` endpoint) never re-parse the
        snapshot payload to learn how far the fixpoint had progressed.
        """
        return self.snapshot.iteration

    def summary(self) -> dict:
        """A JSON-ready envelope summary (no row payloads).

        The shared shape behind ``repro session inspect`` and the
        serving daemon's ``/stats``: sequence number, strategy,
        completeness, ``latest_round``, SCC progress, fact count and
        cumulative stats.
        """
        return {
            "seq": self.seq,
            "strategy": self.snapshot.strategy,
            "complete": self.complete,
            "latest_round": self.latest_round,
            "iteration": self.snapshot.iteration,
            "completed_sccs": self.snapshot.completed_sccs,
            "facts": sum(len(rows) for rows in self.snapshot.idb.values()),
            "stats": self.snapshot.stats.as_dict(),
        }

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """The canonical JSON-ready payload (checksum not included)."""
        snap = self.snapshot
        return {
            "version": self.version,
            "seq": self.seq,
            "workload": self.workload,
            "snapshot": {
                "strategy": snap.strategy,
                "completed_sccs": snap.completed_sccs,
                "scc_index": snap.scc_index,
                "iteration": snap.iteration,
                "complete": snap.complete,
                "idb": {pred: _rows_payload(rows) for pred, rows in sorted(snap.idb.items())},
                "delta": None
                if snap.delta is None
                else {pred: _rows_payload(rows) for pred, rows in sorted(snap.delta.items())},
                # The columnar interner's value table in code order (None
                # under rows storage): rows above are always decoded, so
                # this is extra metadata, not a second row encoding.
                "interner": None if snap.interner is None else list(snap.interner),
                # The extensional database on complete snapshots: the
                # write-ahead journal compacts once this checkpoint
                # lands, so the checkpoint becomes the only durable
                # copy of the ingested facts it covers.
                "edb": None
                if snap.edb is None
                else {pred: _rows_payload(rows) for pred, rows in sorted(snap.edb.items())},
                "stats": snap.stats.as_dict(),
            },
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Checkpoint":
        """Rebuild from a payload, raising :class:`CheckpointCorrupt` on bad shapes."""
        try:
            version = int(payload["version"])
            if version != CHECKPOINT_VERSION:
                raise CheckpointCorrupt(
                    f"unsupported checkpoint version {version} "
                    f"(this build reads version {CHECKPOINT_VERSION})"
                )
            snap = payload["snapshot"]
            snapshot = EvaluationSnapshot(
                strategy=str(snap["strategy"]),
                completed_sccs=int(snap["completed_sccs"]),
                scc_index=None if snap["scc_index"] is None else int(snap["scc_index"]),
                iteration=int(snap["iteration"]),
                idb={str(p): _rows_restore(rows) for p, rows in snap["idb"].items()},
                delta=None
                if snap["delta"] is None
                else {str(p): _rows_restore(rows) for p, rows in snap["delta"].items()},
                stats=EvaluationStats.from_dict(snap["stats"]),
                complete=bool(snap.get("complete", False)),
                # .get: checkpoints written before the columnar backend
                # carry no interner and load as storage-agnostic.
                interner=None
                if snap.get("interner") is None
                else tuple(snap["interner"]),
                # .get: checkpoints written before the ingest journal
                # carry no EDB and load as derived-state-only.
                edb=None
                if snap.get("edb") is None
                else {str(p): _rows_restore(rows) for p, rows in snap["edb"].items()},
            )
            return cls(
                seq=int(payload["seq"]),
                workload=str(payload["workload"]),
                snapshot=snapshot,
                version=version,
            )
        except CheckpointCorrupt:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CheckpointCorrupt(f"malformed checkpoint payload: {exc}") from exc

    # ------------------------------------------------------------------
    def encode(self) -> tuple[str, str]:
        """``(file text, checksum)`` — canonical JSON with embedded checksum."""
        payload = self.to_payload()
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        checksum = hashlib.sha256(canonical.encode()).hexdigest()
        text = json.dumps({"checksum": checksum, "payload": payload}, sort_keys=True)
        return text, checksum

    @classmethod
    def decode(cls, text: str) -> "Checkpoint":
        """Parse and verify a checkpoint file's content.

        Raises :class:`CheckpointCorrupt` when the JSON is unparsable,
        the envelope is malformed, or the embedded checksum does not
        match the canonical re-encoding of the payload.
        """
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointCorrupt(f"checkpoint is not valid JSON: {exc}") from exc
        if not isinstance(envelope, dict) or "checksum" not in envelope or "payload" not in envelope:
            raise CheckpointCorrupt("checkpoint envelope lacks checksum/payload")
        payload = envelope["payload"]
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        checksum = hashlib.sha256(canonical.encode()).hexdigest()
        if checksum != envelope["checksum"]:
            raise CheckpointCorrupt(
                f"checksum mismatch: file says {str(envelope['checksum'])[:12]}…, "
                f"content hashes to {checksum[:12]}…"
            )
        return cls.from_payload(payload)

    def filename(self) -> str:
        """The content-addressed filename: ``ckpt-<seq>-<checksum12>.json``."""
        _, checksum = self.encode()
        return f"ckpt-{self.seq:08d}-{checksum[:12]}.json"
