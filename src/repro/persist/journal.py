"""The write-ahead ingest journal: fsync-before-ack durability for deltas.

Checkpoints (PR 5) make *fixpoints* durable, but an acknowledged
:meth:`Session.ingest <repro.persist.session.Session.ingest>` used to
become durable only when the post-ingest checkpoint landed — a process
killed between the ack and that checkpoint, or any ingest after the
checkpoint store degraded to in-memory, silently lost acknowledged
writes.  :class:`IngestJournal` closes that window with the classic
write-ahead contract:

* **append-only, CRC-framed records** — each ingest is one normalized
  :class:`JournalRecord` (sequence number, the *pre-ingest* workload
  digest, the deduplicated EDB rows) encoded as a single framed line
  ``J1 <crc32> <len> <canonical json>``;
* **fsync before ack** — :meth:`IngestJournal.commit` writes the frame
  and ``fsync``\\ s the segment before the caller acknowledges anything;
  a record is *acknowledged* exactly when the fsync returned;
* **torn-tail truncation on open** — scanning a segment stops at the
  first frame that fails CRC/shape verification and truncates the file
  there, so a crash mid-append costs at most the unacknowledged tail,
  never a parse error;
* **segment rotation and compaction** — records land in numbered
  ``journal-<n>.log`` segments; once a *covering* complete checkpoint
  lands (its workload digest reflects every row up to sequence ``s``),
  :meth:`IngestJournal.compact` deletes the segments that ``s`` fully
  covers.

Recovery is *latest complete checkpoint + idempotent replay of the
journal suffix*: each record carries the workload digest of the EDB it
was appended against, so :meth:`Session.recover
<repro.persist.session.Session.recover>` chains records onto the
initial EDB, finds the newest complete checkpoint along the chain and
re-derives only the uncovered suffix.  Replaying a record whose rows
are already present is a no-op by construction (EDB rows are sets).

:class:`FlakyJournal` mirrors :class:`~repro.persist.store.FlakyStore`
for the chaos harness: the deterministic
:class:`~repro.robustness.faults.FaultInjector` decides *when* to fail
at the ``journal.append`` / ``journal.fsync`` / ``journal.replay``
sites, and the wrapper decides *how* — ``transient`` (EIO, nothing
written), ``torn`` (half the frame's bytes actually land, then EIO) or
``enospc``.  :func:`commit_with_retry` is the recovery policy, sharing
:class:`~repro.persist.store.RetryPolicy` with checkpoint saves.

This journal is also the durable delta-log substrate that DRed-style
retractions (ROADMAP item 1) will replay: a deletion record is just a
future ``kind`` on the same frame format.
"""

from __future__ import annotations

import errno
import json
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from ..observability.trace import Tracer, get_tracer
from ..robustness.budget import Governor
from ..robustness.errors import InjectedFault
from ..robustness.faults import FaultInjector
from .checkpoint import CheckpointError

__all__ = [
    "JOURNAL_VERSION",
    "JournalRecord",
    "JournalError",
    "JournalCorrupt",
    "JournalMismatch",
    "JournalUnavailable",
    "IngestJournal",
    "FlakyJournal",
    "commit_with_retry",
    "JOURNAL_FAULT_FLAVORS",
]

#: Format tag written at the head of every frame (bump on layout change).
JOURNAL_VERSION = 1

_MAGIC = b"J1"

#: The OSError flavors :class:`FlakyJournal` can inject, in cycling order.
JOURNAL_FAULT_FLAVORS = ("transient", "torn", "enospc")


class JournalError(CheckpointError):
    """Base class of every journal-layer error."""


class JournalCorrupt(JournalError):
    """A journal frame failed structural or CRC verification."""


class JournalMismatch(JournalError):
    """A record does not chain onto the session's workload digest."""


class JournalUnavailable(JournalError):
    """Every retry of a journal commit failed; the ingest is NOT acked."""


@dataclass(frozen=True)
class JournalRecord:
    """One normalized, acknowledged-once-fsynced ingest.

    ``workload`` is the digest of the session's workload *before* this
    record's rows were applied — the chain link that lets recovery
    position the record against the initial EDB and any checkpoint.
    ``rows`` are the deduplicated ``(predicate, row)`` pairs that were
    genuinely new at append time, in sorted-predicate order.
    """

    seq: int
    workload: str
    rows: tuple[tuple[str, tuple], ...]

    def to_payload(self) -> dict:
        return {
            "version": JOURNAL_VERSION,
            "seq": self.seq,
            "workload": self.workload,
            "rows": [[predicate, list(row)] for predicate, row in self.rows],
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "JournalRecord":
        try:
            version = int(payload["version"])
            if version != JOURNAL_VERSION:
                raise JournalCorrupt(
                    f"unsupported journal record version {version} "
                    f"(this build reads version {JOURNAL_VERSION})"
                )
            rows = tuple(
                (str(predicate), tuple(row)) for predicate, row in payload["rows"]
            )
            return cls(
                seq=int(payload["seq"]),
                workload=str(payload["workload"]),
                rows=rows,
            )
        except JournalCorrupt:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalCorrupt(f"malformed journal record: {exc}") from exc

    def encode(self) -> bytes:
        """The CRC-framed single-line encoding of this record."""
        payload = json.dumps(
            self.to_payload(), sort_keys=True, separators=(",", ":")
        ).encode()
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        return b"%s %08x %d %s\n" % (_MAGIC, crc, len(payload), payload)

    def rows_by_predicate(self) -> dict[str, list[tuple]]:
        grouped: dict[str, list[tuple]] = {}
        for predicate, row in self.rows:
            grouped.setdefault(predicate, []).append(row)
        return grouped


def _parse_frame(data: bytes, offset: int) -> "tuple[JournalRecord, int] | None":
    """Parse one frame at ``offset``; ``None`` on a torn/corrupt tail."""
    end = data.find(b"\n", offset)
    if end < 0:
        return None
    line = data[offset:end]
    parts = line.split(b" ", 3)
    if len(parts) != 4 or parts[0] != _MAGIC:
        return None
    try:
        crc = int(parts[1], 16)
        length = int(parts[2])
    except ValueError:
        return None
    payload = parts[3]
    if len(payload) != length or (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        return None
    try:
        record = JournalRecord.from_payload(json.loads(payload))
    except (json.JSONDecodeError, JournalCorrupt):
        return None
    return record, end + 1


class IngestJournal:
    """An append-only, fsync-before-ack journal in one directory."""

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        tracer: Tracer | None = None,
        segment_records: int = 512,
    ):
        if segment_records < 1:
            raise ValueError(f"segment_records must be >= 1, got {segment_records}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_records = segment_records
        self._tracer = tracer
        self._segments: "dict[Path, list[JournalRecord]] | None" = None
        self._active: Path | None = None
        self._fd: int | None = None
        self._good_offset = 0
        self._pending: "tuple[JournalRecord, int] | None" = None
        self._last_seq = 0
        self._covered = 0
        self._next_segment = 1

    @property
    def tracer(self) -> Tracer:
        # Resolved per call, like the checkpoint store: the journal must
        # see a tracer installed globally (e.g. by chaos()) after
        # construction.
        return self._tracer if self._tracer is not None else get_tracer()

    # -- scanning ------------------------------------------------------
    def _segment_paths(self) -> list[Path]:
        return sorted(self.directory.glob("journal-*.log"))

    def open(self) -> "IngestJournal":
        """Scan segments, truncating any torn tail; idempotent."""
        if self._segments is not None:
            return self
        segments: dict[Path, list[JournalRecord]] = {}
        last_seq = 0
        next_segment = 1
        active: Path | None = None
        good_offset = 0
        tracer = self.tracer
        paths = self._segment_paths()
        for path in paths:
            number = _segment_number(path)
            if number is not None:
                next_segment = max(next_segment, number + 1)
            data = path.read_bytes()
            offset = 0
            records: list[JournalRecord] = []
            while offset < len(data):
                parsed = _parse_frame(data, offset)
                if parsed is None:
                    # Torn tail: a crash mid-append (or a spilled torn
                    # fault) left a partial frame.  Everything before it
                    # was fsynced whole; everything from here on was
                    # never acknowledged.
                    os.truncate(path, offset)
                    if tracer.enabled:
                        tracer.event(
                            "journal.truncate",
                            segment=path.name,
                            at=offset,
                            dropped_bytes=len(data) - offset,
                        )
                    break
                record, offset = parsed
                records.append(record)
                last_seq = max(last_seq, record.seq)
            segments[path] = records
            active = path
            good_offset = offset
        self._segments = segments
        self._last_seq = last_seq
        self._next_segment = next_segment
        self._active = active
        self._good_offset = good_offset if active is not None else 0
        return self

    # -- append / sync / commit ----------------------------------------
    def next_seq(self) -> int:
        """One past the highest record sequence number on disk."""
        self.open()
        return self._last_seq + 1

    @property
    def last_seq(self) -> int:
        self.open()
        return self._last_seq

    def _ensure_fd(self) -> int:
        if self._active is None:
            self._active = self.directory / f"journal-{self._next_segment:08d}.log"
            self._next_segment += 1
            assert self._segments is not None
            self._segments[self._active] = []
            self._good_offset = 0
        if self._fd is None:
            self._fd = os.open(self._active, os.O_RDWR | os.O_CREAT, 0o644)
        return self._fd

    def rotate(self) -> Path:
        """Close the active segment and start a new one."""
        self.open()
        self._close_fd()
        previous = self._active
        self._active = None
        self._pending = None
        self._ensure_fd()
        assert self._active is not None
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "journal.rotate",
                segment=self._active.name,
                previous=None if previous is None else previous.name,
            )
        return self._active

    def append(self, record: JournalRecord) -> int:
        """Write (but do not yet fsync) one frame; returns its size.

        The frame always lands at the last *acknowledged* offset, so a
        failed or unsynced earlier attempt is simply overwritten — the
        retry loop in :func:`commit_with_retry` needs no special
        truncation step.
        """
        self.open()
        assert self._segments is not None
        if (
            self._active is not None
            and len(self._segments[self._active]) >= self.segment_records
        ):
            self.rotate()
        fd = self._ensure_fd()
        frame = record.encode()
        os.lseek(fd, self._good_offset, os.SEEK_SET)
        os.write(fd, frame)
        os.ftruncate(fd, self._good_offset + len(frame))
        self._pending = (record, len(frame))
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "journal.append",
                seq=record.seq,
                bytes=len(frame),
                rows=len(record.rows),
                segment=self._active.name,  # type: ignore[union-attr]
            )
        return len(frame)

    def sync(self) -> None:
        """``fsync`` the pending frame — the acknowledgment point."""
        self.open()
        if self._pending is None:
            return
        assert self._fd is not None and self._active is not None
        os.fsync(self._fd)
        record, size = self._pending
        self._good_offset += size
        self._last_seq = max(self._last_seq, record.seq)
        assert self._segments is not None
        self._segments[self._active].append(record)
        self._pending = None
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "journal.fsync",
                seq=record.seq,
                bytes=size,
                segment=self._active.name,
            )

    def commit(self, record: JournalRecord) -> None:
        """Append + fsync: the record is acknowledged when this returns."""
        self.append(record)
        self.sync()

    def spill(self, data: bytes) -> None:
        """Write raw bytes at the acknowledged offset without acking.

        Used by :class:`FlakyJournal`'s ``torn`` flavor to model a
        non-atomic write interrupted mid-frame: the bytes land on disk,
        the next scan truncates them away, the next append overwrites
        them.
        """
        self.open()
        fd = self._ensure_fd()
        os.lseek(fd, self._good_offset, os.SEEK_SET)
        os.write(fd, data)
        os.ftruncate(fd, self._good_offset + len(data))

    # -- reading -------------------------------------------------------
    def records(self) -> list[JournalRecord]:
        """Every live (acknowledged, uncompacted) record, by sequence."""
        self.open()
        assert self._segments is not None
        out = [record for records in self._segments.values() for record in records]
        out.sort(key=lambda record: record.seq)
        return out

    def replay(self, after_seq: int = 0) -> list[JournalRecord]:
        """The records with ``seq > after_seq``, oldest first.

        Emits one ``journal.replay`` trace event per call — the chaos
        site for recovery-path faults.
        """
        suffix = [r for r in self.records() if r.seq > after_seq]
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "journal.replay",
                records=len(suffix),
                after_seq=after_seq,
                last_seq=self._last_seq,
            )
        return suffix

    def lag(self, covered_seq: int | None = None) -> int:
        """How many acknowledged records a covering checkpoint has NOT
        absorbed yet (the daemon's ``journal_lag`` health field)."""
        covered = self._covered if covered_seq is None else covered_seq
        return sum(1 for record in self.records() if record.seq > covered)

    # -- compaction ----------------------------------------------------
    def compact(self, covered_seq: int) -> int:
        """Drop segments fully covered by a complete checkpoint.

        ``covered_seq`` is the highest record sequence whose rows the
        newest complete checkpoint reflects.  A segment is deleted only
        when *every* record in it is covered; a partially covered
        segment stays (replay is idempotent, so re-seeing covered
        records is harmless).  Returns the number of segments removed.
        """
        self.open()
        self._covered = max(self._covered, covered_seq)
        assert self._segments is not None
        removed = 0
        for path, records in list(self._segments.items()):
            if not records or max(r.seq for r in records) > self._covered:
                continue
            if path == self._active:
                if self._pending is not None:
                    continue  # never drop an in-flight frame
                self._close_fd()
                self._active = None
                self._good_offset = 0
            del self._segments[path]
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        if removed:
            tracer = self.tracer
            if tracer.enabled:
                tracer.event(
                    "journal.compact",
                    covered_seq=self._covered,
                    segments_removed=removed,
                    records_live=len(self.records()),
                )
        return removed

    # -- diagnostics ---------------------------------------------------
    def info(self) -> dict:
        """A JSON-ready summary for ``session inspect`` and ``/stats``."""
        self.open()
        records = self.records()
        return {
            "directory": str(self.directory),
            "segments": len(self._segment_paths()),
            "records": len(records),
            "last_seq": self._last_seq,
            "covered_seq": self._covered,
            "lag": sum(1 for r in records if r.seq > self._covered),
        }

    def _close_fd(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def close(self) -> None:
        self._close_fd()

    def __enter__(self) -> "IngestJournal":
        return self.open()

    def __exit__(self, *exc: object) -> None:
        self.close()


def _segment_number(path: Path) -> int | None:
    stem = path.name.removeprefix("journal-").removesuffix(".log")
    return int(stem) if stem.isdigit() else None


class FlakyJournal:
    """An :class:`IngestJournal` whose I/O fails on command.

    Mirrors :class:`~repro.persist.store.FlakyStore`: the
    :class:`~repro.robustness.faults.FaultInjector` decides *when*
    (``arm("journal.fsync", at=1)``, ``arm_random(...)``), this wrapper
    decides *how*, cycling through ``flavors`` per fired occurrence:

    * ``"transient"`` — ``OSError(EIO)``, nothing written;
    * ``"torn"`` — the first half of the frame's bytes land at the
      acknowledged offset (a write interrupted mid-frame), then
      ``OSError(EIO)`` — exercising torn-tail truncation on reopen;
    * ``"enospc"`` — ``OSError(ENOSPC)``, nothing written.
    """

    def __init__(
        self,
        journal: IngestJournal,
        injector: FaultInjector,
        *,
        flavors: Sequence[str] = ("transient",),
    ):
        for flavor in flavors:
            if flavor not in JOURNAL_FAULT_FLAVORS:
                raise ValueError(
                    f"unknown fault flavor {flavor!r} "
                    f"(valid: {', '.join(JOURNAL_FAULT_FLAVORS)})"
                )
        self.journal = journal
        self.injector = injector
        self.flavors = tuple(flavors)
        self._fired = 0

    @property
    def directory(self) -> Path:
        return self.journal.directory

    @property
    def tracer(self) -> Tracer:
        return self.journal.tracer

    def _fault(self, site: str, record: JournalRecord | None) -> None:
        try:
            self.injector.observe(site, {})
        except InjectedFault as exc:
            flavor = self.flavors[self._fired % len(self.flavors)]
            self._fired += 1
            if flavor == "enospc":
                raise OSError(
                    errno.ENOSPC, f"no space left on device (injected at {site})"
                ) from exc
            if flavor == "torn" and record is not None:
                frame = record.encode()
                self.journal.spill(frame[: len(frame) // 2])
            raise OSError(errno.EIO, f"injected {flavor} I/O error at {site}") from exc

    # -- faulted operations --------------------------------------------
    def append(self, record: JournalRecord) -> int:
        self._fault("journal.append", record)
        return self.journal.append(record)

    def sync(self) -> None:
        self._fault("journal.fsync", None)
        self.journal.sync()

    def commit(self, record: JournalRecord) -> None:
        self.append(record)
        self.sync()

    def replay(self, after_seq: int = 0) -> list[JournalRecord]:
        self._fault("journal.replay", None)
        return self.journal.replay(after_seq)

    # -- clean passthroughs --------------------------------------------
    def open(self) -> "FlakyJournal":
        self.journal.open()
        return self

    def next_seq(self) -> int:
        return self.journal.next_seq()

    @property
    def last_seq(self) -> int:
        return self.journal.last_seq

    def records(self) -> list[JournalRecord]:
        return self.journal.records()

    def lag(self, covered_seq: int | None = None) -> int:
        return self.journal.lag(covered_seq)

    def compact(self, covered_seq: int) -> int:
        return self.journal.compact(covered_seq)

    def info(self) -> dict:
        return self.journal.info()

    def close(self) -> None:
        self.journal.close()


def commit_with_retry(
    journal: "IngestJournal | FlakyJournal",
    record: JournalRecord,
    *,
    policy=None,
    governor: Governor | None = None,
    sleep=time.sleep,
) -> None:
    """Commit ``record``, retrying transient ``OSError`` failures.

    The exact analogue of :func:`~repro.persist.store.save_with_retry`
    under the same :class:`~repro.persist.store.RetryPolicy`: the
    governor is consulted before every attempt, each backoff sleep is
    clamped to its remaining deadline, and an exhausted attempt budget
    raises :class:`JournalUnavailable` — the ingest is then NOT
    acknowledged and the caller's state is untouched (journal-first
    ordering means nothing was mutated yet).

    Re-attempts are safe because :meth:`IngestJournal.append` always
    writes at the last acknowledged offset: a half-written or unsynced
    frame from a failed attempt is overwritten, never duplicated.
    """
    from .store import RetryPolicy

    policy = policy if policy is not None else RetryPolicy()
    delays = policy.delays()
    last_error: OSError | None = None
    for attempt in range(1, max(1, policy.attempts) + 1):
        if governor is not None:
            governor.check("journal")
        try:
            journal.commit(record)
            return
        except OSError as exc:
            last_error = exc
            delay = next(delays, None)
            if delay is None:
                break
            remaining = governor.remaining() if governor is not None else None
            if remaining is not None:
                delay = max(0.0, min(delay, remaining))
            tracer = journal.tracer
            if tracer.enabled:
                tracer.event(
                    "journal.retry",
                    seq=record.seq,
                    attempt=attempt,
                    delay=round(delay, 6),
                    error=str(exc),
                )
            sleep(delay)
    raise JournalUnavailable(
        f"journal commit failed after {policy.attempts} attempts: {last_error}"
    ) from last_error
